#![warn(missing_docs)]

//! Structure-aware fault-injection fuzzing for every ISOBAR decode
//! surface.
//!
//! The untrusted-input surface of this workspace — batch containers,
//! the streaming framing, the checkpoint store, and every codec and
//! float-codec `decompress` path — promises to be *panic-free* and
//! *allocation-bounded* on arbitrary bytes, returning typed errors
//! instead. This crate checks that promise the only way it can be
//! checked: by generating valid artifacts and breaking them, tens of
//! thousands of times, deterministically.
//!
//! * [`rng`] — a self-contained xorshift64* generator, so a seed in a
//!   CI failure message replays the exact byte-for-byte mutation
//!   sequence anywhere. The harness has no other entropy source.
//! * [`mutate`] — the fault model: bit flips, byte stomps,
//!   truncations, random extensions, length-field inflation,
//!   duplicated slices, zeroed ranges, and torn tails.
//! * [`alloc_track`] — a counting global allocator enforcing that a
//!   decode call's live-heap growth stays within a fixed budget plus a
//!   small multiple of the input size.
//! * [`layers`] — one [`layers::Layer`] per decode surface, each with
//!   its own pool of valid artifacts and pass/fail rules.
//! * [`crash`] — crash-injection for the store's commit protocols: an
//!   in-memory filesystem that kills the writer at every operation
//!   boundary (with torn in-flight writes) and proves a reader always
//!   sees the old store or the new one, never a hybrid — for both the
//!   single-file shadow commit and the version-3 two-phase manifest
//!   commit across shards.
//! * [`serve_crash`] — the same record-and-replay kill sweep over the
//!   serve daemon's store engine, proving the "acked means durable"
//!   contract: every put whose write-ahead-journal fsync returned
//!   before the kill reads back bit-exact after startup replay.
//! * [`stress`] — a concurrent storm over one sharded store: N
//!   producer threads writing while N reader threads replay verified
//!   random reads, with every byte re-checked after the final commit.
//!
//! The `isobar-fuzz-harness` binary runs every layer (default 10 000
//! iterations each) and exits non-zero on the first violation; the
//! `fuzz_smoke` integration test runs a reduced count in `cargo test`.

pub mod alloc_track;
pub mod crash;
pub mod layers;
pub mod mutate;
pub mod rng;
pub mod serve_crash;
pub mod stress;

pub use layers::{
    all_layers, Layer, LayerOutcome, ALLOC_SCALE, DEFAULT_SEED, FIXED_ALLOC_BUDGET,
    FPZIP_ALLOC_SCALE,
};
