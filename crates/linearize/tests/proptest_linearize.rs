//! Property tests for the linearization crate: every reordering must be
//! exactly invertible, since ISOBAR's merger reassembles the original
//! byte stream from the reordered pieces.

use isobar_linearize::{
    apply_permutation, gather_columns, hilbert_order, invert_permutation, random_permutation,
    scatter_columns, Linearization,
};
use proptest::prelude::*;

/// (element width, element count, data) with consistent shape.
fn shaped_data() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (1usize..12).prop_flat_map(|width| {
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(move |elems| {
            let n = elems.len();
            let mut data = Vec::with_capacity(n * width);
            for (i, b) in elems.into_iter().enumerate() {
                for k in 0..width {
                    data.push(b.wrapping_add((i * k) as u8));
                }
            }
            (width, data)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gather_scatter_round_trips_any_column_subset(
        (width, data) in shaped_data(),
        mask in any::<u16>(),
        lin_idx in 0usize..2,
    ) {
        let lin = Linearization::ALL[lin_idx];
        let cols: Vec<usize> = (0..width).filter(|c| mask & (1 << c) != 0).collect();
        let rest: Vec<usize> = (0..width).filter(|c| !cols.contains(c)).collect();

        let a = gather_columns(&data, width, &cols, lin);
        let b = gather_columns(&data, width, &rest, lin);
        prop_assert_eq!(a.len() + b.len(), data.len());

        let mut rebuilt = vec![0u8; data.len()];
        scatter_columns(&a, width, &cols, lin, &mut rebuilt);
        scatter_columns(&b, width, &rest, lin, &mut rebuilt);
        prop_assert_eq!(rebuilt, data);
    }

    #[test]
    fn gather_row_and_column_hold_same_multiset(
        (width, data) in shaped_data(),
        mask in any::<u16>(),
    ) {
        let cols: Vec<usize> = (0..width).filter(|c| mask & (1 << c) != 0).collect();
        let mut row = gather_columns(&data, width, &cols, Linearization::Row);
        let mut col = gather_columns(&data, width, &cols, Linearization::Column);
        row.sort_unstable();
        col.sort_unstable();
        prop_assert_eq!(row, col);
    }

    #[test]
    fn permutations_invert((width, data) in shaped_data(), seed in any::<u64>()) {
        let n = data.len() / width;
        let perm = random_permutation(n, seed);
        let inv = invert_permutation(&perm);
        let forward = apply_permutation(&data, width, &perm);
        prop_assert_eq!(apply_permutation(&forward, width, &inv), data);
    }

    #[test]
    fn hilbert_order_inverts(count in 0usize..2000) {
        let order = hilbert_order(count);
        let inv = invert_permutation(&order);
        for (i, &j) in order.iter().enumerate() {
            prop_assert_eq!(inv[j], i);
        }
    }

    #[test]
    fn byte_column_stats_are_permutation_invariant(
        (width, data) in shaped_data(),
        seed in any::<u64>(),
    ) {
        // The analyzer's frequency histograms must not change under
        // element permutation — the invariant behind §III.G.
        let n = data.len() / width;
        let perm = random_permutation(n, seed);
        let shuffled = apply_permutation(&data, width, &perm);
        for c in 0..width {
            let mut orig: Vec<u8> = data.iter().skip(c).step_by(width).copied().collect();
            let mut shuf: Vec<u8> = shuffled.iter().skip(c).step_by(width).copied().collect();
            orig.sort_unstable();
            shuf.sort_unstable();
            prop_assert_eq!(orig, shuf, "column {}", c);
        }
    }
}
