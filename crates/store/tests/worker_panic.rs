//! Worker-panic injection against the sharded writer.
//!
//! The sharded writer runs a codec thread and an I/O thread per shard.
//! A panic inside either worker must surface as a typed
//! [`StoreError`] from `close()` — never a propagated panic, a hang,
//! or a torn commit — and dropping a writer whose workers died must be
//! silent. This file injects the panic through the [`StoreFs`] seam: a
//! filesystem whose file handles pass the segment header through
//! (written on the caller's thread during `create_in`) and then panic
//! on the first record append, which lands inside the shard's I/O
//! thread. The codec thread then either finishes cleanly (its send
//! beat the panic) or reports the closed channel; `close()` must
//! answer `Corrupt` either way.

use isobar::IsobarOptions;
use isobar_store::{
    RealFile, RealFs, ShardedOptions, ShardedStoreWriter, StoreError, StoreFile, StoreFs,
};
use std::path::{Path, PathBuf};

/// A real file that panics on every write after the first (the segment
/// header), i.e. on the first record append in the I/O thread.
struct PanickingFile {
    inner: RealFile,
    writes: usize,
}

impl StoreFile for PanickingFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.writes += 1;
        if self.writes > 1 {
            panic!("injected I/O-thread panic");
        }
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> std::io::Result<()> {
        self.inner.sync_data()
    }
}

/// [`RealFs`] except that every created file is a [`PanickingFile`].
#[derive(Clone, Copy)]
struct PanickingFs;

impl StoreFs for PanickingFs {
    type File = PanickingFile;

    fn create(&self, path: &Path) -> std::io::Result<PanickingFile> {
        Ok(PanickingFile {
            inner: RealFs.create(path)?,
            writes: 0,
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        RealFs.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        RealFs.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        RealFs.sync_dir(dir)
    }

    fn read_file(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        RealFs.read_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        RealFs.create_dir_all(path)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        RealFs.list_dir(dir)
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("isobar-worker-panic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn panicking_writer(dir: &Path) -> ShardedStoreWriter<PanickingFs> {
    ShardedStoreWriter::create_in(
        PanickingFs,
        dir,
        IsobarOptions::default(),
        ShardedOptions {
            shards: 2,
            queue_depth: 2,
        },
    )
    .expect("create succeeds; the panic is armed for record appends")
}

#[test]
fn close_reports_worker_panic_as_typed_error() {
    let dir = scratch_dir("close");
    let writer = panicking_writer(&dir);

    // The put itself only enqueues; the panic fires asynchronously in
    // the shard's I/O thread. Whether this put (or a later one) sees
    // the dead shard is a race — both answers are legal here.
    let _ = writer.put(0, "field", vec![7u8; 4096], 8);

    let err = writer.close().expect_err("panicked worker must fail close");
    match err {
        StoreError::Corrupt(message) => {
            assert!(
                message.contains("panicked") || message.contains("terminated"),
                "unexpected corrupt message: {message}"
            );
        }
        other => panic!("expected StoreError::Corrupt, got {other:?}"),
    }

    // No torn commit: the failed generation must not have produced a
    // manifest, and the .wip segments were swept.
    assert!(
        !dir.join("MANIFEST").exists(),
        "a panicked worker must never commit a manifest"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".wip"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "wip segments left behind: {leftovers:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_after_worker_panic_is_silent() {
    let dir = scratch_dir("drop");
    let writer = panicking_writer(&dir);
    let _ = writer.put(0, "field", vec![7u8; 4096], 8);
    // Give the I/O thread a moment to actually hit the injected panic
    // so drop joins an already-dead thread at least some of the time.
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Must join the dead workers and sweep files without propagating
    // the worker's panic into this thread.
    drop(writer);
    assert!(!dir.join("MANIFEST").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
