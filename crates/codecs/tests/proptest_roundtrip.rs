//! Property-based round-trip tests for every codec layer.
//!
//! The cardinal invariant of a lossless codec is
//! `decode(encode(x)) == x` for *all* inputs. Each layer of the two
//! solvers is tested independently and then end-to-end, over byte
//! vectors drawn from several distributions (uniform random bytes are a
//! poor proxy for scientific data, so low-entropy and run-heavy inputs
//! get their own strategies).

use isobar_codecs::bwt::{bwt_forward, bwt_inverse, Bzip2Like};
use isobar_codecs::codec::{Codec, CompressionLevel};
use isobar_codecs::deflate::{adler32, Deflate};
use isobar_codecs::huffman::{HuffmanDecoder, HuffmanEncoder};
use isobar_codecs::lz77::{detokenize, Matcher};
use isobar_codecs::mtf::{mtf_decode, mtf_encode};
use isobar_codecs::rle::{rle1_decode, rle1_encode, zrle_decode, zrle_encode};
use proptest::prelude::*;

/// Byte vectors with a mix of shapes: uniform, low-entropy (few distinct
/// values), and run-heavy.
fn byte_inputs() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096),
        proptest::collection::vec(prop_oneof![Just(0u8), Just(1), Just(255)], 0..4096),
        proptest::collection::vec((any::<u8>(), 1usize..64), 0..128).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz77_round_trips(data in byte_inputs(), level in 0usize..3) {
        let level = CompressionLevel::ALL[level];
        let mut scratch = isobar_codecs::lz77::MatcherScratch::default();
        let tokens = Matcher::new(&data, level, &mut scratch).tokenize();
        prop_assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn deflate_round_trips(data in byte_inputs(), level in 0usize..3) {
        let codec = Deflate::new(CompressionLevel::ALL[level]);
        let packed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bzip2like_round_trips(data in byte_inputs(), level in 0usize..3) {
        let codec = Bzip2Like::new(CompressionLevel::ALL[level]);
        let packed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn bwt_round_trips(data in byte_inputs()) {
        let transformed = bwt_forward(&data);
        prop_assert_eq!(bwt_inverse(&transformed).unwrap(), data);
    }

    #[test]
    fn bwt_is_a_permutation_plus_sentinel(data in byte_inputs()) {
        let transformed = bwt_forward(&data);
        let mut bytes: Vec<u8> = transformed
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| (s - 1) as u8)
            .collect();
        let mut original = data.clone();
        bytes.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(bytes, original);
    }

    #[test]
    fn rle1_round_trips(data in byte_inputs()) {
        prop_assert_eq!(rle1_decode(&rle1_encode(&data)), data);
    }

    #[test]
    fn rle1_never_expands_much(data in byte_inputs()) {
        // Worst case: a count byte per 4 input bytes.
        let encoded = rle1_encode(&data);
        prop_assert!(encoded.len() <= data.len() + data.len() / 4 + 1);
    }

    #[test]
    fn mtf_round_trips(ranks in proptest::collection::vec(0u16..257, 0..2048)) {
        let encoded = mtf_encode(&ranks, 257);
        prop_assert_eq!(mtf_decode(&encoded, 257), ranks);
    }

    #[test]
    fn zrle_round_trips(ranks in proptest::collection::vec(0u16..257, 0..2048)) {
        let encoded = zrle_encode(&ranks);
        prop_assert_eq!(zrle_decode(&encoded), ranks);
    }

    #[test]
    fn huffman_round_trips_any_histogram(
        freqs in proptest::collection::vec(0u64..1000, 2..64),
        message in proptest::collection::vec(any::<u16>(), 0..512),
    ) {
        // Keep only symbols with nonzero frequency in the message.
        let present: Vec<usize> =
            freqs.iter().enumerate().filter(|(_, &f)| f > 0).map(|(s, _)| s).collect();
        prop_assume!(!present.is_empty());
        let message: Vec<usize> =
            message.iter().map(|&m| present[m as usize % present.len()]).collect();

        let enc = HuffmanEncoder::from_freqs(&freqs, 15);
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut w = isobar_codecs::bitio::MsbBitWriter::new();
        for &sym in &message {
            enc.write_msb(&mut w, sym);
        }
        let bytes = w.finish();
        let mut r = isobar_codecs::bitio::MsbBitReader::new(&bytes);
        for &sym in &message {
            prop_assert_eq!(dec.decode_msb(&mut r).unwrap() as usize, sym);
        }
    }

    #[test]
    fn adler32_differs_on_single_bit_flips(data in proptest::collection::vec(any::<u8>(), 1..256), idx in any::<proptest::sample::Index>(), bit in 0u8..8) {
        let i = idx.index(data.len());
        let mut flipped = data.clone();
        flipped[i] ^= 1 << bit;
        // Adler-32 is weak but must catch any single-bit flip.
        prop_assert_ne!(adler32(&data), adler32(&flipped));
    }

    #[test]
    fn deflate_compressed_size_is_bounded(data in byte_inputs()) {
        // Stored-block fallback bounds expansion: 5 bytes per 65535-byte
        // block + zlib framing.
        let packed = Deflate::default().compress(&data);
        prop_assert!(packed.len() <= data.len() + 5 * (data.len() / 65535 + 1) + 6 + 4);
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Random bytes must produce Ok or Err, never a panic.
        let _ = Deflate::default().decompress(&data);
        let _ = Bzip2Like::default().decompress(&data);
        let _ = isobar_codecs::pfor::pfor_decode(&data);
    }

    #[test]
    fn pfor_round_trips(values in proptest::collection::vec(any::<u64>(), 0..1024), delta in any::<bool>()) {
        use isobar_codecs::pfor::{pfor_decode, pfor_encode};
        let packed = pfor_encode(&values, delta);
        prop_assert_eq!(pfor_decode(&packed).unwrap(), values);
    }

    #[test]
    fn pfor_round_trips_smooth_series(
        start in any::<u64>(),
        steps in proptest::collection::vec(-1000i64..1000, 0..1024),
        delta in any::<bool>(),
    ) {
        use isobar_codecs::pfor::{pfor_decode, pfor_encode};
        let mut acc = start;
        let values: Vec<u64> = steps
            .iter()
            .map(|&s| {
                acc = acc.wrapping_add(s as u64);
                acc
            })
            .collect();
        let packed = pfor_encode(&values, delta);
        prop_assert_eq!(pfor_decode(&packed).unwrap(), values);
    }

    #[test]
    fn shuffle_round_trips(data in byte_inputs(), width in 1usize..16) {
        use isobar_codecs::shuffle::{shuffle, unshuffle};
        let n = data.len() / width;
        let data = &data[..n * width];
        prop_assert_eq!(unshuffle(&shuffle(data, width), width), data);
    }

    #[test]
    fn shuffled_codec_round_trips(data in byte_inputs(), width in 1usize..16) {
        use isobar_codecs::shuffle::ShuffledCodec;
        let n = data.len() / width;
        let data = &data[..n * width];
        let codec = ShuffledCodec::new(Deflate::default(), width);
        let packed = codec.compress(data);
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }
}
