//! Integration tests for the checkpoint store: a simulated multi-step,
//! multi-variable run written in-situ and restored variable by
//! variable.

use isobar::{EupaSelector, IsobarOptions, Preference};
use isobar_datasets::catalog;
use isobar_store::{StoreError, StoreReader, StoreWriter};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("isobar-store-test-{}-{name}", std::process::id()));
    dir
}

fn options() -> IsobarOptions {
    IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: 20_000,
        eupa: EupaSelector {
            sample_elements: 1024,
            sample_blocks: 2,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn checkpoint_run_round_trips_every_variable() {
    let path = tmp("run");
    let variables = ["zion", "zeon", "phi"];
    let steps = 4u32;
    let spec = catalog::spec("gts_chkp_zion").unwrap();

    let mut originals = Vec::new();
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        for step in 0..steps {
            for (v, name) in variables.iter().enumerate() {
                let ds = spec.generate(25_000, (step as u64) << 8 | v as u64);
                let entry = writer.put(step, name, &ds.bytes, 8).unwrap();
                assert_eq!(entry.raw_len as usize, ds.bytes.len());
                assert!(entry.container_len < entry.raw_len, "compression happened");
                originals.push((step, *name, ds.bytes));
            }
        }
        assert_eq!(writer.entries().len(), (steps as usize) * variables.len());
        writer.close().unwrap();
    }

    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.steps(), vec![0, 1, 2, 3]);
    assert_eq!(reader.variables(), variables.to_vec());
    assert!(reader.overall_ratio() > 1.0);

    // Random access in arbitrary order.
    for (step, name, bytes) in originals.iter().rev() {
        assert_eq!(&reader.get(*step, name).unwrap(), bytes, "{name}@{step}");
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn mixed_widths_per_variable() {
    let path = tmp("widths");
    let doubles = catalog::spec("flash_velx").unwrap().generate(20_000, 1);
    let floats = catalog::spec("s3d_temp").unwrap().generate(20_000, 2);
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        writer.put(0, "velx", &doubles.bytes, 8).unwrap();
        writer.put(0, "temp", &floats.bytes, 4).unwrap();
        writer.close().unwrap();
    }
    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.entry(0, "velx").unwrap().width, 8);
    assert_eq!(reader.entry(0, "temp").unwrap().width, 4);
    assert_eq!(reader.get(0, "velx").unwrap(), doubles.bytes);
    assert_eq!(reader.get(0, "temp").unwrap(), floats.bytes);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_variables_are_rejected() {
    let path = tmp("dup");
    let mut writer = StoreWriter::create(&path, options()).unwrap();
    writer.put(0, "x", &[0u8; 80], 8).unwrap();
    assert!(matches!(
        writer.put(0, "x", &[0u8; 80], 8),
        Err(StoreError::Duplicate { .. })
    ));
    // Same name at a different step is fine.
    writer.put(1, "x", &[0u8; 80], 8).unwrap();
    writer.close().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_variables_are_not_found() {
    let path = tmp("missing");
    let mut writer = StoreWriter::create(&path, options()).unwrap();
    writer.put(0, "present", &[0u8; 80], 8).unwrap();
    writer.close().unwrap();
    let reader = StoreReader::open(&path).unwrap();
    assert!(matches!(
        reader.get(0, "absent"),
        Err(StoreError::NotFound { .. })
    ));
    assert!(matches!(
        reader.get(9, "present"),
        Err(StoreError::NotFound { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unclosed_store_is_rejected() {
    let path = tmp("unclosed");
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        writer.put(0, "x", &[1u8; 800], 8).unwrap();
        // Dropped without close(): the commit rename never ran, so
        // nothing exists at the final path and the reader refuses.
    }
    assert!(matches!(StoreReader::open(&path), Err(StoreError::Io(_))));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dropped_writer_leaves_no_partial_file() {
    // Regression: an abandoned StoreWriter used to leave its partial
    // file on disk, where a later reader (or a backup sweep) could
    // mistake it for a checkpoint. Drop must remove the `.wip` journal
    // and must never have created the final path at all.
    let path = tmp("abandoned");
    let wip = isobar_store::wip_path(&path);
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        writer.put(0, "x", &[1u8; 800], 8).unwrap();
        assert!(wip.exists(), "records journal to the .wip shadow file");
        assert!(!path.exists(), "final path must not exist before commit");
    }
    assert!(!wip.exists(), "drop must remove the uncommitted journal");
    assert!(!path.exists(), "drop must not promote a partial store");
}

#[test]
fn close_commits_atomically_and_cleans_journal() {
    let path = tmp("committed");
    let wip = isobar_store::wip_path(&path);
    let mut writer = StoreWriter::create(&path, options()).unwrap();
    writer.put(0, "x", &[7u8; 800], 8).unwrap();
    writer.close().unwrap();
    assert!(path.exists(), "close must publish the final path");
    assert!(!wip.exists(), "close must consume the .wip journal");
    let reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.get(0, "x").unwrap(), vec![7u8; 800]);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_store_is_rejected() {
    let path = tmp("trunc");
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        writer.put(0, "x", &[1u8; 8000], 8).unwrap();
        writer.close().unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0usize, 4, bytes.len() / 2, bytes.len() - 1] {
        let cut_path = tmp(&format!("trunc-{cut}"));
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        assert!(StoreReader::open(&cut_path).is_err(), "cut {cut}");
        let _ = std::fs::remove_file(&cut_path);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_store_round_trips() {
    let path = tmp("empty");
    StoreWriter::create(&path, options())
        .unwrap()
        .close()
        .unwrap();
    let reader = StoreReader::open(&path).unwrap();
    assert!(reader.entries().is_empty());
    assert!(reader.steps().is_empty());
    assert_eq!(reader.overall_ratio(), 1.0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_telemetry_accounts_for_every_byte() {
    use isobar::telemetry::{Counter, ENABLED};

    let path = tmp("telemetry");
    let ds = catalog::spec("gts_chkp_zion").unwrap().generate(25_000, 7);
    let mut writer = StoreWriter::create(&path, options()).unwrap();
    writer.put(0, "zion", &ds.bytes, 8).unwrap();
    writer.put(1, "zion", &ds.bytes, 8).unwrap();
    let mid = writer.telemetry();
    let container_bytes: u64 = writer.entries().iter().map(|e| e.container_len).sum();
    let snap = writer.close_with_telemetry().unwrap();

    if !ENABLED {
        assert!(mid.is_empty() && snap.is_empty());
        let _ = std::fs::remove_file(&path);
        return;
    }

    assert_eq!(snap.counter(Counter::StorePuts), 2);
    assert_eq!(
        snap.counter(Counter::StoreRawBytes),
        2 * ds.bytes.len() as u64
    );
    assert_eq!(snap.counter(Counter::StoreContainerBytes), container_bytes);
    // Index bytes only land at close time.
    assert_eq!(mid.counter(Counter::StoreIndexBytes), 0);
    assert!(snap.counter(Counter::StoreIndexBytes) > 0);
    // The underlying pipeline telemetry rides along.
    assert_eq!(snap.counter(Counter::EupaRuns), 2);
    assert!(snap.counter(Counter::AnalyzerBytes) >= 2 * ds.bytes.len() as u64);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reader_is_shareable_across_threads() {
    let path = tmp("threads");
    let ds = catalog::spec("gts_phi_l").unwrap().generate(20_000, 3);
    {
        let mut writer = StoreWriter::create(&path, options()).unwrap();
        for step in 0..4u32 {
            writer.put(step, "phi", &ds.bytes, 8).unwrap();
        }
        writer.close().unwrap();
    }
    let reader = std::sync::Arc::new(StoreReader::open(&path).unwrap());
    let handles: Vec<_> = (0..4u32)
        .map(|step| {
            let reader = reader.clone();
            let want = ds.bytes.clone();
            std::thread::spawn(move || {
                assert_eq!(reader.get(step, "phi").unwrap(), want);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let _ = std::fs::remove_file(&path);
}
