//! §IV related work — PFOR / PFOR-DELTA versus the general solvers.
//!
//! Reproduces the paper's characterization of PFOR (Zukowski et al.,
//! ICDE 2006): "approximately 4 times faster than zlib and bzlib2 for
//! most data sets, though its compression ratios hardly beat those
//! obtained with zlib and bzlib2 (in some cases, the ratio is even 3
//! times worse)". PFOR runs on the u64 view of each dataset.

use isobar_bench::*;
use isobar_codecs::pfor::{pfor_compress_bytes, pfor_decompress_bytes};
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

const DATASETS: [&str; 6] = [
    "xgc_igid",
    "gts_chkp_zion",
    "flash_velx",
    "msg_sppm",
    "num_plasma",
    "obs_temp",
];

fn main() {
    banner("Related work (§IV): PFOR and PFOR-DELTA vs zlib/bzlib2");
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "", "zlib", "", "bzlib2", "", "PFOR", "", "PFOR-Δ", ""
    );
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "Dataset", "CR", "TPc", "CR", "TPc", "CR", "TPc", "CR", "TPc"
    );
    for name in DATASETS {
        let spec = catalog::spec(name).expect("catalog entry");
        if spec.element.width() != 8 {
            continue; // PFOR here is u64-oriented
        }
        let ds = generate(&spec);
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);

        let mut cells = Vec::new();
        for delta in [false, true] {
            let (packed, secs) = time(|| pfor_compress_bytes(&ds.bytes, delta));
            let (unpacked, _dsecs) = time(|| pfor_decompress_bytes(&packed).expect("pfor"));
            assert_eq!(unpacked, ds.bytes);
            cells.push((
                ds.bytes.len() as f64 / packed.len() as f64,
                mbps(ds.bytes.len(), secs),
            ));
        }
        println!(
            "{:<15} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2}",
            name,
            zlib.ratio,
            zlib.comp_mbps,
            bzip2.ratio,
            bzip2.comp_mbps,
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
        );
    }
    println!();
    println!("paper shape: PFOR several times faster than both general solvers;");
    println!("its ratio only wins on narrow-range integers (xgc_igid), and loses");
    println!("badly on repetitive data (msg_sppm, num_plasma).");
}
