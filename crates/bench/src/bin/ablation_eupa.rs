//! Ablation — EUPA sampling budget.
//!
//! The selector decides {solver} × {linearization} from random sample
//! blocks. This sweep varies the sampling budget and reports (a) the
//! EUPA overhead as a fraction of total compression time and (b)
//! whether the decision matches the "oracle" — the combination that an
//! exhaustive full-dataset measurement would pick.

use isobar::{CodecId, EupaSelector, IsobarOptions, Linearization, Preference};
use isobar_bench::*;
use isobar_codecs::codec_for;
use isobar_datasets::catalog;

const DATASETS: [&str; 3] = ["gts_chkp_zion", "flash_gamc", "s3d_vmag"];
const BUDGETS: [(usize, usize); 4] = [(1024, 1), (4096, 2), (16384, 4), (65536, 8)];

/// Exhaustively measure every combination on the full dataset and
/// return the best ratio combination.
fn oracle(data: &[u8], width: usize) -> (CodecId, Linearization, f64) {
    let mut best = (CodecId::Deflate, Linearization::Row, f64::MIN);
    for codec_id in [CodecId::Deflate, CodecId::Bzip2Like] {
        for lin in Linearization::ALL {
            let run = run_isobar_with(
                data,
                width,
                IsobarOptions {
                    codec_override: Some(codec_id),
                    linearization_override: Some(lin),
                    ..Default::default()
                },
            );
            if run.ratio > best.2 {
                best = (codec_id, lin, run.ratio);
            }
        }
    }
    best
}

fn main() {
    banner("Ablation: EUPA sampling budget (ratio preference)");
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let (oracle_codec, oracle_lin, oracle_ratio) = oracle(&ds.bytes, ds.width());
        println!(
            "{name}: oracle = {} + {} (CR {:.4})",
            codec_for(oracle_codec, Default::default()).name(),
            oracle_lin,
            oracle_ratio
        );
        println!(
            "  {:>8} {:>7} {:>9} {:>9} {:>11} {:>10}",
            "elems", "blocks", "decision", "CR", "CR vs best", "overhead"
        );
        for (sample_elements, sample_blocks) in BUDGETS {
            let run = run_isobar_with(
                &ds.bytes,
                ds.width(),
                IsobarOptions {
                    preference: Preference::Ratio,
                    eupa: EupaSelector {
                        sample_elements,
                        sample_blocks,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            let decision = format!("{}+{}", run.report.codec.name(), run.report.linearization);
            println!(
                "  {:>8} {:>7} {:>9} {:>9.4} {:>10.2}% {:>9.1}%",
                sample_elements,
                sample_blocks,
                decision,
                run.ratio,
                (run.ratio / oracle_ratio - 1.0) * 100.0,
                run.report.eupa_secs / run.report.total_secs * 100.0,
            );
        }
        println!();
    }
    println!("expected shape: small budgets already find the oracle (or land within");
    println!("a fraction of a percent of its ratio) at single-digit % overhead.");
}
