//! On-disk layout constants and the index entry record.
//!
//! Version history:
//!
//! - v1: 16-byte trailer, index entries without checksums.
//! - v2: every index entry carries the XXH64 of its container bytes,
//!   and the trailer carries the XXH64 of the encoded index region.
//!   Version-1 stores are still read; their entries surface
//!   `checksum == 0` and are exempt from verification ("legacy,
//!   unverifiable").
//! - v3 (current sharded layout): a store is a **directory** — a
//!   `MANIFEST` file (magic `ISSM`) naming N segment files (magic
//!   `ISSG`), each appended by an independent writer. The manifest
//!   embeds the whole index (entries carry a segment ordinal) and is
//!   swapped in atomically, making it the single commit point. See
//!   [`crate::manifest`] and `docs/FORMAT.md`. Single-file v1/v2
//!   stores are still fully readable.

use crate::error::StoreError;
use isobar_codecs::xxhash::xxh64;

/// Store file magic: "ISST".
pub const MAGIC: [u8; 4] = *b"ISST";
/// Trailer magic: "ISSX".
pub const TRAILER_MAGIC: [u8; 4] = *b"ISSX";
/// Store format version written by the single-file [`crate::StoreWriter`].
pub const VERSION: u8 = 2;
/// The checksum-less store version this build still reads.
pub const LEGACY_VERSION: u8 = 1;
/// The sharded (directory) store version written by
/// [`crate::ShardedStoreWriter`].
pub const V3_VERSION: u8 = 3;
/// Segment file magic: "ISSG".
pub const SEGMENT_MAGIC: [u8; 4] = *b"ISSG";
/// Segment trailer magic: "ISGX".
pub const SEGMENT_TRAILER_MAGIC: [u8; 4] = *b"ISGX";
/// Segment header size: magic (4) + version (1) + shard ordinal (2) +
/// reserved (1).
pub const SEGMENT_HEADER_LEN: usize = 8;
/// Segment trailer size: data length (8) + record count (4) + trailer
/// XXH64 (8) + magic (4).
pub const SEGMENT_TRAILER_LEN: usize = 24;
/// Manifest file magic: "ISSM".
pub const MANIFEST_MAGIC: [u8; 4] = *b"ISSM";
/// Manifest trailer magic: "ISMX".
pub const MANIFEST_TRAILER_MAGIC: [u8; 4] = *b"ISMX";
/// Manifest header size: magic (4) + version (1) + reserved (3).
pub const MANIFEST_HEADER_LEN: usize = 8;
/// Manifest trailer size: manifest XXH64 (8) + magic (4).
pub const MANIFEST_TRAILER_LEN: usize = 12;
/// File name of the manifest inside a version-3 store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Segment file name for one generation and shard:
/// `g<generation:016x>-s<shard:03>.seg`. Generations never collide, so
/// a rewrite's fresh segments coexist with the committed ones until
/// the manifest swap.
pub fn segment_file_name(generation: u64, shard: u16) -> String {
    format!("g{generation:016x}-s{shard:03}.seg")
}

/// Whether `name` looks like a segment file — used by fsck to spot
/// orphan segments no manifest references.
pub fn is_segment_file_name(name: &str) -> bool {
    name.starts_with('g') && name.ends_with(".seg")
}

/// Serialize the record header that precedes each embedded container:
/// `name_len u16 | name | step u32 | width u8 | container_len u64`.
/// Shared by the single-file writer and the segment writers so the
/// record grammar cannot fork.
pub fn encode_record_header(name: &str, step: u32, width: u8, container_len: u64) -> Vec<u8> {
    let name = name.as_bytes();
    let mut out = Vec::with_capacity(2 + name.len() + 4 + 1 + 8);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&step.to_le_bytes());
    out.push(width);
    out.extend_from_slice(&container_len.to_le_bytes());
    out
}
/// Seed for every XXH64 checksum in the store format.
pub const CHECKSUM_SEED: u64 = 0;
/// Version-2 trailer size: index offset (8) + entry count (4) +
/// index XXH64 (8) + magic (4).
pub const TRAILER_LEN: usize = 24;
/// Version-1 trailer size: index offset (8) + entry count (4) +
/// magic (4).
pub const TRAILER_V1_LEN: usize = 16;
/// Smallest possible serialized version-1 [`IndexEntry`]: name length
/// prefix (2), empty name, step (4), width (1), offset (8),
/// container_len (8), raw_len (8). A valid lower bound for both
/// versions (version 2 adds 8 checksum bytes), used to bound a claimed
/// entry count against the index region's actual size before
/// allocating for it.
pub const MIN_ENTRY_LEN: usize = 2 + 4 + 1 + 8 + 8 + 8;

/// Trailer size for a given store version.
pub fn trailer_len(version: u8) -> usize {
    if version >= 2 {
        TRAILER_LEN
    } else {
        TRAILER_V1_LEN
    }
}

/// XXH64 over a container's bytes — the per-entry integrity checksum
/// embedded in version-2 indexes.
pub fn entry_checksum(container: &[u8]) -> u64 {
    xxh64(container, CHECKSUM_SEED)
}

/// One index entry: where to find one variable of one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Variable name.
    pub name: String,
    /// Simulation time step.
    pub step: u32,
    /// Element width the variable was written with.
    pub width: u8,
    /// File offset of the record's ISOBAR container.
    pub offset: u64,
    /// Length of the ISOBAR container in bytes.
    pub container_len: u64,
    /// Uncompressed variable size in bytes.
    pub raw_len: u64,
    /// XXH64 of the container bytes (version 2). Zero when the entry
    /// was read from a version-1 index, which carries no checksums.
    pub checksum: u64,
}

impl IndexEntry {
    /// Serialize into `out` in the current ([`VERSION`]) layout.
    pub fn write(&self, out: &mut Vec<u8>) {
        self.write_common(out);
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    /// Serialize in the [`LEGACY_VERSION`] (checksum-less) layout.
    /// Only meaningful for back-compat fixtures.
    pub fn write_legacy(&self, out: &mut Vec<u8>) {
        self.write_common(out);
    }

    fn write_common(&self, out: &mut Vec<u8>) {
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.push(self.width);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.container_len.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
    }

    /// Parse one current-version entry from the front of `data`;
    /// returns the entry and bytes consumed.
    pub fn read(data: &[u8]) -> Result<(IndexEntry, usize), StoreError> {
        Self::read_versioned(data, VERSION)
    }

    /// Parse one entry in the layout of `version`. Version-1 entries
    /// carry no checksum; the field comes back 0.
    pub fn read_versioned(data: &[u8], version: u8) -> Result<(IndexEntry, usize), StoreError> {
        if data.len() < 2 {
            return Err(StoreError::Corrupt("index entry truncated"));
        }
        let name_len = u16::from_le_bytes(data[..2].try_into().expect("2 bytes")) as usize;
        let checksum_len = if version >= 2 { 8 } else { 0 };
        let fixed_after_name = 4 + 1 + 8 + 8 + 8 + checksum_len;
        let total = 2 + name_len + fixed_after_name;
        if data.len() < total {
            return Err(StoreError::Corrupt("index entry truncated"));
        }
        let name = std::str::from_utf8(&data[2..2 + name_len])
            .map_err(|_| StoreError::Corrupt("index entry name is not UTF-8"))?
            .to_string();
        let rest = &data[2 + name_len..];
        let checksum = if version >= 2 {
            u64::from_le_bytes(rest[29..37].try_into().expect("8 bytes"))
        } else {
            0
        };
        Ok((
            IndexEntry {
                name,
                step: u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")),
                width: rest[4],
                offset: u64::from_le_bytes(rest[5..13].try_into().expect("8 bytes")),
                container_len: u64::from_le_bytes(rest[13..21].try_into().expect("8 bytes")),
                raw_len: u64::from_le_bytes(rest[21..29].try_into().expect("8 bytes")),
                checksum,
            },
            total,
        ))
    }

    /// Compression ratio achieved for this variable.
    pub fn ratio(&self) -> f64 {
        if self.container_len == 0 {
            1.0
        } else {
            self.raw_len as f64 / self.container_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> IndexEntry {
        IndexEntry {
            name: "potential_nl".into(),
            step: 300_000,
            width: 8,
            offset: 123_456_789,
            container_len: 42_000,
            raw_len: 64_000,
            checksum: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn entry_round_trips() {
        let mut buf = Vec::new();
        demo().write(&mut buf);
        buf.extend_from_slice(&[0xAA; 3]); // trailing data untouched
        let (entry, consumed) = IndexEntry::read(&buf).unwrap();
        assert_eq!(entry, demo());
        assert_eq!(consumed, buf.len() - 3);
    }

    #[test]
    fn legacy_entry_round_trips_without_checksum() {
        let mut buf = Vec::new();
        demo().write_legacy(&mut buf);
        let (entry, consumed) = IndexEntry::read_versioned(&buf, LEGACY_VERSION).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(entry.checksum, 0, "v1 entries surface checksum 0");
        assert_eq!(
            entry,
            IndexEntry {
                checksum: 0,
                ..demo()
            }
        );
    }

    #[test]
    fn truncated_entries_are_rejected() {
        let mut buf = Vec::new();
        demo().write(&mut buf);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(IndexEntry::read(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn non_utf8_names_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        buf.extend_from_slice(&[0u8; 37]);
        assert!(matches!(
            IndexEntry::read(&buf),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn ratio_is_raw_over_container() {
        assert!((demo().ratio() - 64_000.0 / 42_000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_name_round_trips() {
        let entry = IndexEntry {
            name: String::new(),
            ..demo()
        };
        let mut buf = Vec::new();
        entry.write(&mut buf);
        assert_eq!(IndexEntry::read(&buf).unwrap().0, entry);
    }

    #[test]
    fn entry_checksum_is_xxh64_of_container_bytes() {
        let container = b"ISBR-shaped bytes";
        assert_eq!(entry_checksum(container), xxh64(container, CHECKSUM_SEED));
        assert_ne!(entry_checksum(container), entry_checksum(b"other bytes"));
    }
}
