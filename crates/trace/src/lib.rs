#![warn(missing_docs)]

//! Temporal tracing for the ISOBAR pipeline: per-thread span/event ring
//! buffers with Chrome trace-event export.
//!
//! The telemetry crate answers *how much* — aggregate counters and
//! per-stage wall-time totals. This crate answers *when*: which chunk
//! was in which stage on which thread at what nanosecond, so one run's
//! timeline can be inspected in Perfetto / `chrome://tracing` and
//! stalls, worker interleaving, and EUPA sampling decisions become
//! visible instead of averaged away.
//!
//! # Recording model
//!
//! * Every thread owns a fixed-capacity ring buffer of [`TraceEvent`]s
//!   (overwrite-oldest). Recording is a couple of plain writes into
//!   thread-local memory — no locks, no atomics beyond one relaxed
//!   load of the global on/off flag, no allocation after the ring's
//!   one-time creation.
//! * [`span`] returns a guard that records one begin/end span when
//!   dropped; [`instant`] / [`instant_args`] record point events.
//! * When a thread exits, its ring drains into a global registry; the
//!   collector ([`drain`]) gathers the registry plus the calling
//!   thread's ring into a [`Trace`].
//! * Tracing is *inactive* until [`set_active`]`(true)` — an idle call
//!   site costs one relaxed atomic load and a branch.
//!
//! # The off switch
//!
//! Building without the `enabled` feature (the workspace's trace-off
//! configuration, `cargo build --no-default-features`) turns every
//! recording function into an empty `#[inline]` body and [`SpanGuard`]
//! into a zero-sized type with no `Drop` impl: all call sites compile
//! away, mirroring `isobar_telemetry::ENABLED`.
//!
//! # Example
//!
//! ```
//! use isobar_trace as trace;
//!
//! trace::reset();
//! trace::set_active(true);
//! {
//!     let _span = trace::span(trace::TraceTag::Analyze, 0);
//!     // ... stage work ...
//! }
//! trace::set_active(false);
//! let collected = trace::drain();
//! let json = collected.to_chrome_json();
//! if trace::ENABLED {
//!     assert!(json.contains("\"ph\": \"B\""));
//! }
//! ```

use std::fmt::Write as _;

/// Compile-time flag: `true` when this build records trace events.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Chunk index used for events that do not belong to a chunk (EUPA,
/// container metadata, store operations).
pub const NO_CHUNK: u32 = u32::MAX;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_THREAD_CAPACITY: usize = 16 * 1024;

/// What a span or instant event describes.
///
/// The discriminant is stable; [`TraceTag::name`] is the Chrome trace
/// `name` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceTag {
    /// EUPA selection round (one per dataset/stream).
    EupaSelect,
    /// One EUPA trial compression (instant; args carry CR and MB/s).
    EupaTrial,
    /// The combination EUPA finally selected (instant).
    EupaSelected,
    /// Byte-column frequency analysis of one chunk.
    Analyze,
    /// Splitting one chunk into C and I streams.
    Partition,
    /// Solver compression of one chunk's compressible stream.
    SolverCompress,
    /// Serializing one chunk's record into the container body.
    ChunkMerge,
    /// Whole per-chunk compress pipeline (analyze→partition→solve).
    ChunkCompress,
    /// Solver decompression of one chunk.
    SolverDecompress,
    /// Scattering C + I back into element order for one chunk.
    Reassemble,
    /// Whole per-chunk decode pipeline.
    ChunkDecode,
    /// Container header + body serialization.
    ContainerWrite,
    /// Container metadata parsing.
    ContainerRead,
    /// Streaming writer: one chunk framed and flushed.
    StreamChunkWrite,
    /// Streaming reader: one chunk frame parsed and decoded.
    StreamChunkRead,
    /// Checkpoint store: one variable compressed and appended.
    StorePut,
    /// Checkpoint store: one variable read and decompressed.
    StoreGet,
    /// Sharded store: codec-thread compression of one variable (the
    /// chunk field carries the shard ordinal).
    StoreShardCompress,
    /// Sharded store: I/O-thread append of one record to its segment
    /// (the chunk field carries the shard ordinal).
    StoreShardAppend,
    /// Sharded store: the two-phase manifest commit at close.
    StoreManifestCommit,
    /// Sharded store: one compaction pass rewriting live entries.
    StoreCompact,
    /// Serve daemon: one request decoded, dispatched, and answered.
    ServeRequest,
    /// Serve daemon: one store generation committed (threshold roll
    /// or shutdown drain).
    ServeCommit,
    /// Serve daemon: gap between `accept(2)` returning and the handler
    /// thread picking the connection up (attributed to the
    /// connection's first request).
    ServeAccept,
    /// Serve daemon: reading and decoding one 19-byte request header.
    ServeHeaderParse,
    /// Serve daemon: byte-budget admission decision for one PUT.
    ServeAdmission,
    /// Serve daemon: reading one PUT payload off the socket.
    ServePayloadRead,
    /// Serve daemon: blocking on the store mutex.
    ServeLockWait,
    /// Serve daemon: read-your-writes overlay lookup or insert.
    ServeOverlay,
    /// Serve daemon: sharded-store put for one variable.
    ServeStorePut,
    /// Serve daemon: sharded-store (or overlay-miss) get.
    ServeStoreGet,
    /// Serve daemon: encoding and writing one response frame.
    ServeWriteResponse,
    /// Serve daemon: appending one put to the write-ahead journal and
    /// fsyncing it (the durability cost paid before an `Ok` ack).
    ServeWalFsync,
    /// Serve daemon: replaying leftover write-ahead journal records
    /// into the overlay on startup.
    ServeWalReplay,
}

impl TraceTag {
    /// Number of tags.
    pub const COUNT: usize = 34;

    /// Stable snake_case name, used as the Chrome trace event name.
    pub fn name(self) -> &'static str {
        match self {
            TraceTag::EupaSelect => "eupa_select",
            TraceTag::EupaTrial => "eupa_trial",
            TraceTag::EupaSelected => "eupa_selected",
            TraceTag::Analyze => "analyze",
            TraceTag::Partition => "partition",
            TraceTag::SolverCompress => "solver_compress",
            TraceTag::ChunkMerge => "chunk_merge",
            TraceTag::ChunkCompress => "chunk_compress",
            TraceTag::SolverDecompress => "solver_decompress",
            TraceTag::Reassemble => "reassemble",
            TraceTag::ChunkDecode => "chunk_decode",
            TraceTag::ContainerWrite => "container_write",
            TraceTag::ContainerRead => "container_read",
            TraceTag::StreamChunkWrite => "stream_chunk_write",
            TraceTag::StreamChunkRead => "stream_chunk_read",
            TraceTag::StorePut => "store_put",
            TraceTag::StoreGet => "store_get",
            TraceTag::StoreShardCompress => "store_shard_compress",
            TraceTag::StoreShardAppend => "store_shard_append",
            TraceTag::StoreManifestCommit => "store_manifest_commit",
            TraceTag::StoreCompact => "store_compact",
            TraceTag::ServeRequest => "serve_request",
            TraceTag::ServeCommit => "serve_commit",
            TraceTag::ServeAccept => "serve_accept",
            TraceTag::ServeHeaderParse => "serve_header_parse",
            TraceTag::ServeAdmission => "serve_admission",
            TraceTag::ServePayloadRead => "serve_payload_read",
            TraceTag::ServeLockWait => "serve_lock_wait",
            TraceTag::ServeOverlay => "serve_overlay",
            TraceTag::ServeStorePut => "serve_store_put",
            TraceTag::ServeStoreGet => "serve_store_get",
            TraceTag::ServeWriteResponse => "serve_write_response",
            TraceTag::ServeWalFsync => "serve_wal_fsync",
            TraceTag::ServeWalReplay => "serve_wal_replay",
        }
    }
}

/// One recorded event: a begin/end span or an instant, stamped with a
/// monotonic nanosecond clock shared by every thread in the process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// What the event describes.
    pub tag: TraceTag,
    /// Chunk index, or [`NO_CHUNK`].
    pub chunk: u32,
    /// Span start (or the instant's timestamp), nanoseconds since the
    /// process trace epoch.
    pub begin_nanos: u64,
    /// Span end; equals `begin_nanos` for instants.
    pub end_nanos: u64,
    /// True for instant events.
    pub instant: bool,
    /// Optional numeric payload (EUPA trials: compression ratio and
    /// throughput in MB/s).
    pub args: Option<(f64, f64)>,
}

/// Everything one thread recorded, in ring order (oldest first).
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Small dense thread id assigned at first record.
    pub tid: u32,
    /// Events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

/// A drained collection of per-thread event buffers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// One entry per thread that recorded anything.
    pub threads: Vec<ThreadTrace>,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{ThreadTrace, TraceEvent};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    pub(crate) static ACTIVE: AtomicBool = AtomicBool::new(false);
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);
    static CAPACITY: AtomicUsize = AtomicUsize::new(super::DEFAULT_THREAD_CAPACITY);
    static DRAINED: Mutex<Vec<ThreadTrace>> = Mutex::new(Vec::new());
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    #[inline]
    pub(crate) fn now_nanos() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Fixed-capacity overwrite-oldest event ring owned by one thread.
    struct Ring {
        tid: u32,
        slots: Vec<TraceEvent>,
        cap: usize,
        /// Overwrite cursor, meaningful once `slots.len() == cap`.
        next: usize,
        dropped: u64,
    }

    impl Ring {
        fn new() -> Ring {
            let cap = CAPACITY.load(Ordering::Relaxed).max(1);
            Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                // The ring's single allocation: reserved up front so
                // pushes on the hot path never reallocate.
                slots: Vec::with_capacity(cap),
                cap,
                next: 0,
                dropped: 0,
            }
        }

        #[inline]
        fn push(&mut self, ev: TraceEvent) {
            if self.slots.len() < self.cap {
                self.slots.push(ev);
            } else {
                // Full: overwrite the oldest event.
                self.slots[self.next] = ev;
                self.next = (self.next + 1) % self.cap;
                self.dropped += 1;
            }
        }

        fn into_thread_trace(self) -> ThreadTrace {
            let mut ring = std::mem::ManuallyDrop::new(self);
            let slots = std::mem::take(&mut ring.slots);
            let events = if ring.dropped == 0 {
                slots
            } else {
                // Rotate so events come out oldest-first.
                let mut events = Vec::with_capacity(slots.len());
                events.extend_from_slice(&slots[ring.next..]);
                events.extend_from_slice(&slots[..ring.next]);
                events
            };
            ThreadTrace {
                tid: ring.tid,
                events,
                dropped: ring.dropped,
            }
        }
    }

    impl Drop for Ring {
        fn drop(&mut self) {
            // Thread exit: hand the recorded events to the collector.
            // `into_thread_trace` wraps in ManuallyDrop, so this only
            // runs for rings dropped in place (TLS teardown).
            let ring = Ring {
                tid: self.tid,
                slots: std::mem::take(&mut self.slots),
                cap: self.cap,
                next: self.next,
                dropped: self.dropped,
            };
            flush_ring(ring);
        }
    }

    fn flush_ring(ring: Ring) {
        let trace = ring.into_thread_trace();
        if !trace.events.is_empty() {
            if let Ok(mut drained) = DRAINED.lock() {
                drained.push(trace);
            }
        }
    }

    thread_local! {
        static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
    }

    #[inline]
    pub(crate) fn record(ev: TraceEvent) {
        let _ = RING.try_with(|cell| {
            if let Ok(mut ring) = cell.try_borrow_mut() {
                ring.get_or_insert_with(Ring::new).push(ev);
            }
        });
    }

    pub(crate) fn flush_thread() {
        let _ = RING.try_with(|cell| {
            if let Ok(mut ring) = cell.try_borrow_mut() {
                if let Some(ring) = ring.take() {
                    flush_ring(ring);
                }
            }
        });
    }

    pub(crate) fn take_drained() -> Vec<ThreadTrace> {
        DRAINED
            .lock()
            .map(|mut d| std::mem::take(&mut *d))
            .unwrap_or_default()
    }

    pub(crate) fn set_capacity(cap: usize) {
        CAPACITY.store(cap.max(1), Ordering::Relaxed);
    }
}

/// Turn recording on or off process-wide. Off is the default; an
/// inactive call site costs one relaxed atomic load.
#[inline]
pub fn set_active(active: bool) {
    #[cfg(feature = "enabled")]
    {
        imp::ACTIVE.store(active, std::sync::atomic::Ordering::Relaxed);
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = active;
    }
}

/// Whether recording is currently active (always `false` in the
/// trace-off build).
#[inline]
pub fn is_active() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::ACTIVE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Set the per-thread ring capacity (events). Applies to rings created
/// after the call; existing rings keep their size. Mainly for tests.
pub fn set_thread_capacity(capacity: usize) {
    #[cfg(feature = "enabled")]
    {
        imp::set_capacity(capacity);
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = capacity;
    }
}

/// Begin a span of `tag` for `chunk` (use [`NO_CHUNK`] when the work
/// is not chunk-scoped). The span records when the guard drops.
///
/// When tracing is inactive (or compiled out) the guard is inert.
#[inline]
pub fn span(tag: TraceTag, chunk: u32) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        if !is_active() {
            return SpanGuard {
                armed: false,
                tag,
                chunk,
                begin_nanos: 0,
            };
        }
        SpanGuard {
            armed: true,
            tag,
            chunk,
            begin_nanos: imp::now_nanos(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (tag, chunk);
        SpanGuard {}
    }
}

/// Record an instant event.
#[inline]
pub fn instant(tag: TraceTag, chunk: u32) {
    #[cfg(feature = "enabled")]
    {
        if is_active() {
            let now = imp::now_nanos();
            imp::record(TraceEvent {
                tag,
                chunk,
                begin_nanos: now,
                end_nanos: now,
                instant: true,
                args: None,
            });
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (tag, chunk);
    }
}

/// Record an instant event carrying two numeric arguments (EUPA trials
/// record the measured compression ratio and throughput in MB/s).
#[inline]
pub fn instant_args(tag: TraceTag, chunk: u32, a: f64, b: f64) {
    #[cfg(feature = "enabled")]
    {
        if is_active() {
            let now = imp::now_nanos();
            imp::record(TraceEvent {
                tag,
                chunk,
                begin_nanos: now,
                end_nanos: now,
                instant: true,
                args: Some((a, b)),
            });
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (tag, chunk, a, b);
    }
}

/// Move the calling thread's ring into the global registry.
///
/// Worker threads must call this as the last thing they do: the TLS
/// destructor also flushes, but `std::thread::scope` can return as
/// soon as a worker's closure finishes — *before* its TLS destructors
/// run — so a collector relying only on the destructor would race the
/// exiting thread. The destructor remains as a best-effort fallback
/// for threads that forget.
pub fn flush_thread() {
    #[cfg(feature = "enabled")]
    {
        imp::flush_thread();
    }
}

/// Collect everything recorded so far: the calling thread's ring plus
/// every ring flushed by exited (or explicitly flushed) threads.
///
/// Rings of *other still-live* threads are not reachable; in the
/// ISOBAR pipelines every worker calls [`flush_thread`] before its
/// scoped closure returns, so by the time the spawning thread collects,
/// all worker events are in the registry. Draining resets the recorded
/// state.
pub fn drain() -> Trace {
    #[cfg(feature = "enabled")]
    {
        imp::flush_thread();
        let mut threads = imp::take_drained();
        threads.sort_by_key(|t| t.tid);
        Trace { threads }
    }
    #[cfg(not(feature = "enabled"))]
    {
        Trace::default()
    }
}

/// Discard everything recorded so far (the calling thread's ring and
/// the global registry). Does not change the active flag.
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        imp::flush_thread();
        let _ = imp::take_drained();
    }
}

/// Records one begin/end span on drop. Inert when tracing was
/// inactive at creation or compiled out.
#[must_use = "a span guard that is immediately dropped records a zero-length span"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    armed: bool,
    #[cfg(feature = "enabled")]
    tag: TraceTag,
    #[cfg(feature = "enabled")]
    chunk: u32,
    #[cfg(feature = "enabled")]
    begin_nanos: u64,
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            imp::record(TraceEvent {
                tag: self.tag,
                chunk: self.chunk,
                begin_nanos: self.begin_nanos,
                end_nanos: imp::now_nanos(),
                instant: false,
                args: None,
            });
        }
    }
}

impl Trace {
    /// Total events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events lost to ring overwrites.
    pub fn dropped_count(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Serialize to the Chrome trace-event JSON array format, loadable
    /// in Perfetto and `chrome://tracing`.
    ///
    /// Spans become balanced `B`/`E` pairs, instants become `i` events
    /// with `"s": "t"` (thread scope). Per thread, events are emitted
    /// in non-decreasing timestamp order with proper nesting (ties
    /// break as end-before-begin, outer-begin-before-inner-begin), so
    /// any stack-based consumer sees a well-formed timeline.
    pub fn to_chrome_json(&self) -> String {
        // Ordering ranks for same-timestamp events: close inner spans
        // before opening new ones, open outer (longer) spans first.
        const RANK_END: u8 = 0;
        const RANK_BEGIN: u8 = 1;
        const RANK_INSTANT: u8 = 2;

        let mut out = String::with_capacity(128 + self.event_count() * 96);
        out.push_str("[\n");
        let mut first = true;
        for thread in &self.threads {
            // (ts, rank, duration key, event, is_begin)
            let mut points: Vec<(u64, u8, u64, &TraceEvent, bool)> =
                Vec::with_capacity(thread.events.len() * 2);
            for ev in &thread.events {
                if ev.instant {
                    points.push((ev.begin_nanos, RANK_INSTANT, 0, ev, false));
                } else {
                    let dur = ev.end_nanos.saturating_sub(ev.begin_nanos);
                    // Begins: longer span first (outer before inner).
                    points.push((ev.begin_nanos, RANK_BEGIN, u64::MAX - dur, ev, true));
                    // Ends: shorter span first (inner before outer).
                    points.push((ev.end_nanos, RANK_END, dur, ev, false));
                }
            }
            points.sort_by_key(|&(ts, rank, dur_key, _, _)| (ts, rank, dur_key));
            for (ts, rank, _, ev, is_begin) in points {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let ph = if rank == RANK_INSTANT {
                    "i"
                } else if is_begin {
                    "B"
                } else {
                    "E"
                };
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"cat\": \"isobar\", \"ph\": \"{ph}\", \
                     \"ts\": {}.{:03}, \"pid\": 1, \"tid\": {}",
                    ev.tag.name(),
                    ts / 1_000,
                    ts % 1_000,
                    thread.tid,
                );
                if rank == RANK_INSTANT {
                    out.push_str(", \"s\": \"t\"");
                }
                // Args only on the opening edge (and instants) so E
                // events stay minimal, as the format recommends.
                if is_begin || rank == RANK_INSTANT {
                    out.push_str(", \"args\": {");
                    let mut sep = "";
                    if ev.chunk != NO_CHUNK {
                        let _ = write!(out, "\"chunk\": {}", ev.chunk);
                        sep = ", ";
                    }
                    if let Some((a, b)) = ev.args {
                        // JSON has no Infinity/NaN literal; degenerate
                        // measurements (zero-time trials) clamp to 0.
                        let a = if a.is_finite() { a } else { 0.0 };
                        let b = if b.is_finite() { b } else { 0.0 };
                        let _ = write!(out, "{sep}\"ratio\": {a:.4}, \"throughput_mbps\": {b:.2}");
                    }
                    out.push('}');
                }
                out.push('}');
            }
        }
        out.push_str("\n]\n");
        out
    }
}

/// Why a Chrome trace export failed [`validate_chrome_phases`].
///
/// Every variant carries the zero-based line number of the offending
/// event line so a failing export can be located in the raw JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValidationError {
    /// An event line whose `"ph"` field is missing or not one
    /// character.
    MalformedPhase {
        /// Zero-based line number in the JSON text.
        line: usize,
    },
    /// An event line whose `"ts"` field is missing or not a number.
    MalformedTimestamp {
        /// Zero-based line number in the JSON text.
        line: usize,
    },
    /// A phase character this exporter never emits (only `B`, `E`,
    /// and `i` are valid).
    UnknownPhase {
        /// Zero-based line number in the JSON text.
        line: usize,
        /// The unexpected phase character.
        ph: char,
    },
    /// An `E` event with no open `B` to close.
    UnbalancedEnd {
        /// Zero-based line number in the JSON text.
        line: usize,
    },
    /// `B` events still open when the input ended.
    UnclosedSpans {
        /// How many spans never saw their `E`.
        open: usize,
    },
    /// A timestamp earlier than its predecessor.
    NonMonotonicTimestamp {
        /// Zero-based line number in the JSON text.
        line: usize,
        /// The offending timestamp (microseconds).
        ts: f64,
        /// The preceding timestamp it fell behind (microseconds).
        prev: f64,
    },
}

impl std::fmt::Display for TraceValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceValidationError::MalformedPhase { line } => {
                write!(f, "line {line}: \"ph\" missing or not one character")
            }
            TraceValidationError::MalformedTimestamp { line } => {
                write!(f, "line {line}: \"ts\" missing or not a number")
            }
            TraceValidationError::UnknownPhase { line, ph } => {
                write!(f, "line {line}: unknown phase '{ph}' (expected B, E, or i)")
            }
            TraceValidationError::UnbalancedEnd { line } => {
                write!(f, "line {line}: E event with no open span")
            }
            TraceValidationError::UnclosedSpans { open } => {
                write!(f, "{open} span(s) never closed")
            }
            TraceValidationError::NonMonotonicTimestamp { line, ts, prev } => {
                write!(
                    f,
                    "line {line}: timestamp {ts} goes back in time (prev {prev})"
                )
            }
        }
    }
}

impl std::error::Error for TraceValidationError {}

/// Phase counts from a validated Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromePhaseSummary {
    /// Completed `B`/`E` pairs.
    pub spans: usize,
    /// `i` events.
    pub instants: usize,
}

/// Validate the phase structure of a [`Trace::to_chrome_json`] export:
/// every event line's `ph` must be `B`, `E`, or `i`, begins and ends
/// must balance *per thread*, and each thread's timestamps must be
/// non-decreasing.
///
/// This is a line-oriented check of *this crate's own* export (one
/// event per line as the exporter emits it), deliberately
/// dependency-free — CI smoke tests and debug assertions can call it
/// without a JSON parser. Events are grouped by their `"tid"` field
/// (missing tid ⇒ thread 0): the exporter orders events within a
/// thread but threads are emitted one after another with independent
/// clocks, so depth and monotonicity are tracked per tid — a
/// multi-thread serve dump validates exactly like a single-thread
/// pipeline export. Returns the phase counts on success and a typed
/// [`TraceValidationError`] (never a panic) on any malformed input.
pub fn validate_chrome_phases(json: &str) -> Result<ChromePhaseSummary, TraceValidationError> {
    struct TidState {
        tid: u64,
        depth: usize,
        last_ts: f64,
    }
    let mut summary = ChromePhaseSummary::default();
    // Per-thread stacks; a Vec scan beats a HashMap for the handful of
    // tids a real export carries.
    let mut tids: Vec<TidState> = Vec::new();
    for (line_no, line) in json.lines().enumerate() {
        if !line.contains("\"ph\"") {
            continue;
        }
        let ph = match line.split("\"ph\": \"").nth(1).map(|rest| {
            let mut chars = rest.chars();
            (chars.next(), chars.next())
        }) {
            Some((Some(ph), Some('"'))) => ph,
            _ => return Err(TraceValidationError::MalformedPhase { line: line_no }),
        };
        let ts: f64 = line
            .split("\"ts\": ")
            .nth(1)
            .and_then(|rest| {
                // The exporter emits a plain non-negative decimal.
                let end = rest
                    .find(|c: char| !c.is_ascii_digit() && c != '.')
                    .unwrap_or(rest.len());
                rest[..end].parse().ok()
            })
            .ok_or(TraceValidationError::MalformedTimestamp { line: line_no })?;
        let tid: u64 = line
            .split("\"tid\": ")
            .nth(1)
            .and_then(|rest| {
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse().ok()
            })
            .unwrap_or(0);
        let state = match tids.iter_mut().find(|s| s.tid == tid) {
            Some(state) => state,
            None => {
                tids.push(TidState {
                    tid,
                    depth: 0,
                    last_ts: f64::NEG_INFINITY,
                });
                tids.last_mut().expect("just pushed")
            }
        };
        if ts < state.last_ts {
            return Err(TraceValidationError::NonMonotonicTimestamp {
                line: line_no,
                ts,
                prev: state.last_ts,
            });
        }
        state.last_ts = ts;
        match ph {
            'B' => state.depth += 1,
            'E' => {
                if state.depth == 0 {
                    return Err(TraceValidationError::UnbalancedEnd { line: line_no });
                }
                state.depth -= 1;
                summary.spans += 1;
            }
            'i' => summary.instants += 1,
            other => {
                return Err(TraceValidationError::UnknownPhase {
                    line: line_no,
                    ph: other,
                })
            }
        }
    }
    let open: usize = tids.iter().map(|s| s.depth).sum();
    if open > 0 {
        return Err(TraceValidationError::UnclosedSpans { open });
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests in this module serialize on
    // a lock and fully reset around themselves.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn inactive_recording_is_empty() {
        let _guard = locked();
        reset();
        set_active(false);
        let _span = span(TraceTag::Analyze, 0);
        instant(TraceTag::EupaTrial, 1);
        drop(_span);
        assert_eq!(drain().event_count(), 0);
    }

    #[test]
    fn spans_and_instants_round_trip() {
        let _guard = locked();
        reset();
        set_active(true);
        {
            let _outer = span(TraceTag::ChunkCompress, 3);
            let _inner = span(TraceTag::Analyze, 3);
            instant_args(TraceTag::EupaTrial, 1, 1.5, 250.0);
        }
        set_active(false);
        let trace = drain();
        if !ENABLED {
            assert_eq!(trace.event_count(), 0);
            return;
        }
        assert_eq!(trace.threads.len(), 1);
        let events = &trace.threads[0].events;
        assert_eq!(events.len(), 3);
        // Ring order: instant first (recorded at its own time), then
        // inner span (ends first), then outer.
        assert!(events
            .iter()
            .any(|e| e.instant && e.args == Some((1.5, 250.0))));
        let outer = events
            .iter()
            .find(|e| e.tag == TraceTag::ChunkCompress)
            .unwrap();
        let inner = events.iter().find(|e| e.tag == TraceTag::Analyze).unwrap();
        assert!(outer.begin_nanos <= inner.begin_nanos);
        assert!(inner.end_nanos <= outer.end_nanos);
        assert_eq!(outer.chunk, 3);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let _guard = locked();
        reset();
        set_thread_capacity(4);
        set_active(true);
        for i in 0..10u32 {
            instant(TraceTag::StreamChunkWrite, i);
        }
        set_active(false);
        set_thread_capacity(DEFAULT_THREAD_CAPACITY);
        let trace = drain();
        if !ENABLED {
            return;
        }
        assert_eq!(trace.threads.len(), 1);
        let t = &trace.threads[0];
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        // Oldest-first after the rotation: chunks 6, 7, 8, 9.
        let chunks: Vec<u32> = t.events.iter().map(|e| e.chunk).collect();
        assert_eq!(chunks, vec![6, 7, 8, 9]);
    }

    #[test]
    fn worker_thread_rings_drain_at_exit() {
        let _guard = locked();
        reset();
        set_active(true);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    {
                        let _span = span(TraceTag::ChunkDecode, 0);
                    }
                    // Deterministic hand-off: scope can unblock before
                    // TLS destructors run, so workers flush explicitly.
                    flush_thread();
                });
            }
        });
        set_active(false);
        let trace = drain();
        if !ENABLED {
            return;
        }
        assert_eq!(trace.threads.len(), 3);
        let mut tids: Vec<u32> = trace.threads.iter().map(|t| t.tid).collect();
        tids.dedup();
        assert_eq!(tids.len(), 3, "thread ids are distinct");
    }

    #[test]
    fn chrome_json_is_balanced_and_monotonic() {
        let _guard = locked();
        reset();
        set_active(true);
        {
            let _outer = span(TraceTag::ChunkCompress, 0);
            {
                let _inner = span(TraceTag::Analyze, 0);
            }
            {
                let _inner = span(TraceTag::SolverCompress, 0);
            }
            instant(TraceTag::EupaSelected, NO_CHUNK);
        }
        set_active(false);
        let json = drain().to_chrome_json();
        if !ENABLED {
            assert_eq!(json.trim(), "[\n\n]");
            return;
        }
        // Balanced B/E, stack-valid nesting, non-decreasing ts.
        let summary = validate_chrome_phases(&json).expect("own export validates");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 1);
    }

    #[test]
    fn validator_reports_typed_errors_not_panics() {
        // Each fixture is a hand-corrupted export line; the validator
        // must answer with the matching typed error, never a panic.
        let ok = "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.000, \"tid\": 1},\n\
                  {\"name\": \"a\", \"ph\": \"E\", \"ts\": 2.000, \"tid\": 1}";
        assert_eq!(
            validate_chrome_phases(ok),
            Ok(ChromePhaseSummary {
                spans: 1,
                instants: 0
            })
        );

        // The historical panic path: a phase the exporter never emits.
        let bad_ph = "{\"name\": \"a\", \"ph\": \"X\", \"ts\": 1.000, \"tid\": 1}";
        assert_eq!(
            validate_chrome_phases(bad_ph),
            Err(TraceValidationError::UnknownPhase { line: 0, ph: 'X' })
        );

        // Multi-character / truncated ph field.
        let malformed = "{\"name\": \"a\", \"ph\": \"\", \"ts\": 1.000}";
        assert_eq!(
            validate_chrome_phases(malformed),
            Err(TraceValidationError::MalformedPhase { line: 0 })
        );

        // ph present but ts missing.
        let no_ts = "{\"name\": \"a\", \"ph\": \"B\"}";
        assert_eq!(
            validate_chrome_phases(no_ts),
            Err(TraceValidationError::MalformedTimestamp { line: 0 })
        );

        // E with nothing open.
        let stray_end = "{\"name\": \"a\", \"ph\": \"E\", \"ts\": 1.000}";
        assert_eq!(
            validate_chrome_phases(stray_end),
            Err(TraceValidationError::UnbalancedEnd { line: 0 })
        );

        // B never closed.
        let unclosed = "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.000}";
        assert_eq!(
            validate_chrome_phases(unclosed),
            Err(TraceValidationError::UnclosedSpans { open: 1 })
        );

        // Time runs backwards.
        let backwards = "{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5.000},\n\
                         {\"name\": \"b\", \"ph\": \"i\", \"ts\": 1.000}";
        assert_eq!(
            validate_chrome_phases(backwards),
            Err(TraceValidationError::NonMonotonicTimestamp {
                line: 1,
                ts: 1.0,
                prev: 5.0
            })
        );

        // Errors render as messages (the Display path is what CI logs).
        let err = validate_chrome_phases(bad_ph).unwrap_err();
        assert!(err.to_string().contains("unknown phase 'X'"));
    }

    #[test]
    fn validator_tracks_threads_independently() {
        // The exporter emits threads back to back, each with its own
        // clock: thread 2 restarting behind thread 1 is well-formed,
        // and a global monotonicity check would reject every
        // multi-thread dump.
        let multi = "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 10.000, \"tid\": 1},\n\
                     {\"name\": \"a\", \"ph\": \"E\", \"ts\": 20.000, \"tid\": 1},\n\
                     {\"name\": \"b\", \"ph\": \"B\", \"ts\": 1.000, \"tid\": 2},\n\
                     {\"name\": \"b\", \"ph\": \"E\", \"ts\": 2.000, \"tid\": 2}";
        assert_eq!(
            validate_chrome_phases(multi),
            Ok(ChromePhaseSummary {
                spans: 2,
                instants: 0
            })
        );

        // A B on one thread cannot satisfy an E on another.
        let cross = "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.000, \"tid\": 1},\n\
                     {\"name\": \"b\", \"ph\": \"E\", \"ts\": 2.000, \"tid\": 2}";
        assert_eq!(
            validate_chrome_phases(cross),
            Err(TraceValidationError::UnbalancedEnd { line: 1 })
        );

        // Unclosed spans are summed across threads.
        let open = "{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.000, \"tid\": 1},\n\
                    {\"name\": \"b\", \"ph\": \"B\", \"ts\": 1.000, \"tid\": 2}";
        assert_eq!(
            validate_chrome_phases(open),
            Err(TraceValidationError::UnclosedSpans { open: 2 })
        );
    }

    #[test]
    fn disabled_api_is_inert() {
        // Exercise the whole surface so the trace-off build's empty
        // bodies stay covered.
        let _guard = locked();
        reset();
        assert_eq!(is_active(), is_active());
        flush_thread();
        let t = Trace::default();
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.dropped_count(), 0);
        assert!(t.to_chrome_json().starts_with('['));
    }
}
