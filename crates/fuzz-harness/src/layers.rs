//! One fuzz layer per untrusted decode surface.
//!
//! Each [`Layer`] owns a pool of *valid* artifacts (built once,
//! deterministically) and a decode closure. The runner repeatedly
//! picks an artifact, corrupts a clone of it with 1–3 structure-aware
//! faults ([`crate::mutate`]), and feeds it to the decoder under three
//! invariants:
//!
//! 1. **No panics.** Every outcome must be `Ok` or a typed `Err`.
//! 2. **Bounded allocation.** Live-heap growth during the decode call
//!    must stay under [`FIXED_ALLOC_BUDGET`] plus [`ALLOC_SCALE`] times
//!    the input-plus-original size (enforced when the fuzz binary's
//!    counting allocator is installed — see [`crate::alloc_track`]).
//! 3. **Honest generators.** One iteration in ~64 skips mutation and
//!    asserts an exact round-trip, so a layer cannot pass by rejecting
//!    everything.
//!
//! Running any layer twice with the same seed replays the identical
//! mutation sequence, which is what makes a CI failure reproducible
//! locally from the one-line report.

use crate::alloc_track;
use crate::mutate::mutate;
use crate::rng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

use isobar::{CodecId, IsobarCompressor, IsobarOptions, IsobarReader, IsobarWriter};
use isobar_codecs::bwt::{bwt_forward, bwt_inverse};
use isobar_codecs::deflate::{deflate_raw, inflate_raw};
use isobar_codecs::pfor::{pfor_compress_bytes, pfor_decompress_bytes};
use isobar_codecs::rle::{rle1_decode, rle1_encode};
use isobar_codecs::{codec_for, CompressionLevel};
use isobar_float_codecs::{Dims, Fpc, FpzipLike};
use isobar_server::protocol::{encode_request, read_response, FrameError, Request};
use isobar_server::{serve, Client, Opcode, ServeOptions, Status};
use isobar_store::{StoreReader, StoreWriter};

/// Fixed allocation headroom a decode call may use regardless of input
/// size: covers prediction tables (FPC decodes with up to 16 MiB of
/// hash tables for its default table size), BWT working state for a
/// maximum-size block, and allocator slack.
pub const FIXED_ALLOC_BUDGET: usize = 64 << 20;

/// Default input-proportional allocation factor: a decode call may
/// additionally keep this many live bytes per byte of (corrupt input +
/// original payload). Generous against legitimate decompression
/// expansion, tiny against a length-field allocation bomb. Layers
/// whose format permits a larger legitimate expansion override it —
/// see [`FPZIP_ALLOC_SCALE`].
pub const ALLOC_SCALE: usize = 64;

/// Allocation factor for the fpzip layer. A saturated adaptive model
/// prices its most likely symbol at ~0.0014 bits, so a *valid* fpzip
/// stream can decode roughly 5 700 residuals (45 000 output bytes) per
/// payload byte; the truncation (overrun) check in the decoder caps a
/// lying header at that same rate, and this budget verifies the cap.
pub const FPZIP_ALLOC_SCALE: usize = 50_000;

/// Seed used by the fuzz binary and the smoke test when none is given.
pub const DEFAULT_SEED: u64 = 0x0150_BA2D_F00D_5EED;

/// A valid encoded artifact plus the payload it decodes back to.
pub struct Artifact {
    /// The encoded form handed to the mutator.
    pub bytes: Vec<u8>,
    /// The original payload, for round-trip checks and alloc budgets.
    pub original: Vec<u8>,
}

/// Outcome of running one layer to completion.
#[derive(Debug, Clone)]
pub struct LayerOutcome {
    /// Layer name.
    pub name: &'static str,
    /// Iterations executed.
    pub iterations: u64,
    /// Decodes that returned `Ok` (mutation survived or was pristine).
    pub accepted: u64,
    /// Decodes that returned a typed error.
    pub rejected: u64,
    /// Largest live-heap growth observed during a single decode call.
    pub max_alloc: usize,
}

/// Decode driver: `(artifact, corrupted bytes, pristine)` →
/// `Ok(true)` accepted, `Ok(false)` rejected with a typed error, or
/// `Err` describing a harness-level contract violation.
type DecodeFn = Box<dyn Fn(&Artifact, &[u8], bool) -> Result<bool, String>>;

/// One decode surface under fault injection.
pub struct Layer {
    name: &'static str,
    pool: Vec<Artifact>,
    alloc_scale: usize,
    decode: DecodeFn,
}

impl Layer {
    /// The layer's name (stable; usable with the binary's `--layer`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Run `iters` fault-injection iterations under `seed`.
    ///
    /// Returns `Err` with a reproducible one-line description on the
    /// first panic, allocation-bound violation, pristine round-trip
    /// failure, or harness error.
    pub fn run(&self, seed: u64, iters: u64) -> Result<LayerOutcome, String> {
        let mut rng = Rng::new(seed ^ fnv1a(self.name));
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut max_alloc = 0usize;
        for i in 0..iters {
            let artifact = &self.pool[rng.below(self.pool.len())];
            let pristine = rng.one_in(64);
            let mut bytes = artifact.bytes.clone();
            let mut kinds: Vec<&'static str> = Vec::new();
            if !pristine {
                for _ in 0..1 + rng.below(3) {
                    kinds.push(mutate(&mut rng, &mut bytes));
                }
            }
            let budget =
                FIXED_ALLOC_BUDGET + self.alloc_scale * (bytes.len() + artifact.original.len());
            let before = alloc_track::current();
            alloc_track::reset_peak();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                (self.decode)(artifact, &bytes, pristine)
            }));
            let delta = alloc_track::peak().saturating_sub(before);
            max_alloc = max_alloc.max(delta);
            let context = format!(
                "layer {} iteration {i} seed {seed:#018x} mutations [{}]",
                self.name,
                kinds.join(", ")
            );
            match outcome {
                Err(payload) => {
                    return Err(format!("PANIC ({}) in {context}", panic_message(&payload)))
                }
                Ok(Err(msg)) => return Err(format!("{msg} in {context}")),
                Ok(Ok(true)) => accepted += 1,
                Ok(Ok(false)) => rejected += 1,
            }
            if alloc_track::installed() && delta > budget {
                return Err(format!(
                    "allocation bound exceeded: {delta} live bytes while decoding {} \
                     input bytes (budget {budget}) in {context}",
                    bytes.len()
                ));
            }
        }
        Ok(LayerOutcome {
            name: self.name,
            iterations: iters,
            accepted,
            rejected,
            max_alloc,
        })
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// All fuzz layers, covering every format layer (batch container,
/// stream framing, checkpoint store) and every codec decode path
/// (deflate/zlib, bzip2-class BWT, PFOR, raw inflate, raw BWT block,
/// RLE1, FPC, fpzip-class — the range coder is exercised through the
/// fpzip layer, and Huffman/LZ77/MTF/ZRLE through the deflate and BWT
/// streams).
pub fn all_layers() -> Vec<Layer> {
    vec![
        container_layer(),
        stream_layer(),
        store_layer(),
        codec_layer("codec-deflate", CodecId::Deflate),
        codec_layer("codec-bzip2", CodecId::Bzip2Like),
        pfor_layer(),
        inflate_layer(),
        bwt_layer(),
        rle1_layer(),
        fpc_layer(),
        fpzip_layer(),
        serve_frame_layer(),
    ]
}

// ---------------------------------------------------------------------
// Deterministic payload generators.

fn smooth_f64(n: usize) -> Vec<u8> {
    (0..n)
        .flat_map(|i| (100.0 * (i as f64 * 0.01).sin()).to_le_bytes())
        .collect()
}

fn mixed_u64(n: usize, rng: &mut Rng) -> Vec<u8> {
    // Top half predictable, bottom half noise — the shape ISOBAR's
    // analyzer is built for, so containers exercise partitioned chunks.
    (0..n as u64)
        .flat_map(|i| (((i / 7) << 32) | (rng.next_u64() & 0xFFFF_FFFF)).to_le_bytes())
        .collect()
}

fn noise(len: usize, rng: &mut Rng) -> Vec<u8> {
    let mut out = vec![0u8; len];
    rng.fill(&mut out);
    out
}

fn text(len: usize) -> Vec<u8> {
    b"the quick brown fox jumps over the lazy dog; "
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect()
}

fn small_options() -> IsobarOptions {
    IsobarOptions {
        chunk_elements: 256,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Format layers.

fn container_layer() -> Layer {
    let mut rng = Rng::new(0xC0DE_C0DE);
    let mk = |data: Vec<u8>, width: usize, codec: Option<CodecId>| {
        let opts = IsobarOptions {
            codec_override: codec,
            ..small_options()
        };
        let bytes = IsobarCompressor::new(opts)
            .compress(&data, width)
            .expect("pool compress");
        Artifact {
            bytes,
            original: data,
        }
    };
    let pool = vec![
        mk(smooth_f64(1024), 8, None),
        mk(mixed_u64(1024, &mut rng), 8, Some(CodecId::Deflate)),
        mk(noise(4096, &mut rng), 4, Some(CodecId::Bzip2Like)),
        mk(text(6000), 8, None),
    ];
    Layer {
        name: "container",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(|artifact, bytes, pristine| {
            match IsobarCompressor::default().decompress(bytes) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine container round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine container rejected".into()),
                Err(_) => Ok(false),
            }
        }),
    }
}

fn stream_layer() -> Layer {
    let mut rng = Rng::new(0x57_BEA4);
    let mk = |data: Vec<u8>, width: usize| {
        let mut writer =
            IsobarWriter::new(Vec::new(), width, small_options()).expect("pool stream");
        std::io::Write::write_all(&mut writer, &data).expect("pool stream write");
        let bytes = writer.finish().expect("pool stream finish");
        Artifact {
            bytes,
            original: data,
        }
    };
    let pool = vec![
        mk(smooth_f64(1024), 8),
        mk(mixed_u64(768, &mut rng), 8),
        mk(noise(2048, &mut rng), 4),
    ];
    Layer {
        name: "stream",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(|artifact, bytes, pristine| {
            let result = IsobarReader::new(bytes).and_then(|r| r.read_to_vec());
            match result {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine stream round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine stream rejected".into()),
                Err(_) => Ok(false),
            }
        }),
    }
}

fn store_layer() -> Layer {
    let mut rng = Rng::new(0x5708E);
    let vars: Vec<(u32, &'static str, Vec<u8>)> = vec![
        (0, "density", smooth_f64(512)),
        (0, "potential", mixed_u64(512, &mut rng)),
        (1, "density", noise(2048, &mut rng)),
    ];
    let pool_path =
        std::env::temp_dir().join(format!("isobar-fuzz-pool-{}.isst", std::process::id()));
    let mut writer = StoreWriter::create(&pool_path, small_options()).expect("pool store create");
    for (step, name, data) in &vars {
        writer.put(*step, name, data, 8).expect("pool store put");
    }
    writer.close().expect("pool store close");
    let bytes = std::fs::read(&pool_path).expect("pool store read");
    let _ = std::fs::remove_file(&pool_path);
    let original: Vec<u8> = vars
        .iter()
        .flat_map(|(_, _, d)| d.iter().copied())
        .collect();
    let pool = vec![Artifact { bytes, original }];

    let decode_path =
        std::env::temp_dir().join(format!("isobar-fuzz-decode-{}.isst", std::process::id()));
    Layer {
        name: "store",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(move |_, bytes, pristine| {
            std::fs::write(&decode_path, bytes)
                .map_err(|e| format!("harness: temp store write failed: {e}"))?;
            match StoreReader::open(&decode_path) {
                Ok(reader) => {
                    let mut all_ok = true;
                    for (step, name, data) in &vars {
                        match reader.get(*step, name) {
                            Ok(out) => {
                                if pristine && out != *data {
                                    return Err(format!(
                                        "pristine store round-trip mismatch for {name}@{step}"
                                    ));
                                }
                            }
                            Err(_) if pristine => {
                                return Err(format!("pristine store rejected {name}@{step}"))
                            }
                            Err(_) => all_ok = false,
                        }
                    }
                    Ok(all_ok)
                }
                Err(_) if pristine => Err("pristine store failed to open".into()),
                Err(_) => Ok(false),
            }
        }),
    }
}

// ---------------------------------------------------------------------
// Codec layers.

fn codec_layer(name: &'static str, id: CodecId) -> Layer {
    let mut rng = Rng::new(fnv1a(name));
    let mut pool = Vec::new();
    for (level, data) in [
        (CompressionLevel::Fast, text(8000)),
        (CompressionLevel::Default, noise(4096, &mut rng)),
        (CompressionLevel::Best, smooth_f64(512)),
        (CompressionLevel::Default, vec![0u8; 4096]),
    ] {
        let codec = codec_for(id, level);
        pool.push(Artifact {
            bytes: codec.compress(&data),
            original: data,
        });
    }
    let codec = codec_for(id, CompressionLevel::Default);
    Layer {
        name,
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(
            move |artifact, bytes, pristine| match codec.decompress(bytes) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine codec round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine codec stream rejected".into()),
                Err(_) => Ok(false),
            },
        ),
    }
}

fn pfor_layer() -> Layer {
    let mut rng = Rng::new(0x9F0A);
    let monotone: Vec<u8> = (0..512u64)
        .flat_map(|i| (1000 + i * 3).to_le_bytes())
        .collect();
    let pool = vec![
        Artifact {
            bytes: pfor_compress_bytes(&monotone, true),
            original: monotone.clone(),
        },
        Artifact {
            bytes: pfor_compress_bytes(&monotone, false),
            original: monotone,
        },
        Artifact {
            bytes: pfor_compress_bytes(&noise(4096, &mut rng), false),
            original: noise(4096, &mut rng),
        },
    ];
    // The third artifact's original differs from its encoded payload
    // (two independent noise draws); repair it for honest round-trips.
    let mut pool = pool;
    pool[2].original = pfor_decompress_bytes(&pool[2].bytes).expect("pool pfor");
    Layer {
        name: "codec-pfor",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(
            |artifact, bytes, pristine| match pfor_decompress_bytes(bytes) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine PFOR round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine PFOR stream rejected".into()),
                Err(_) => Ok(false),
            },
        ),
    }
}

fn inflate_layer() -> Layer {
    let mut rng = Rng::new(0x1F1A7E);
    let mk = |data: Vec<u8>, level: CompressionLevel| Artifact {
        bytes: deflate_raw(&data, level),
        original: data,
    };
    let pool = vec![
        mk(text(8000), CompressionLevel::Default),
        mk(noise(4096, &mut rng), CompressionLevel::Fast),
        mk(vec![7u8; 5000], CompressionLevel::Best),
    ];
    Layer {
        name: "raw-inflate",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(|artifact, bytes, pristine| {
            match inflate_raw(bytes, artifact.original.len()) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine inflate round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine deflate stream rejected".into()),
                Err(_) => Ok(false),
            }
        }),
    }
}

fn bwt_layer() -> Layer {
    let mut rng = Rng::new(0xB3717);
    let mk = |data: Vec<u8>| {
        let bwt = bwt_forward(&data);
        let bytes: Vec<u8> = bwt.iter().flat_map(|s| s.to_le_bytes()).collect();
        Artifact {
            bytes,
            original: data,
        }
    };
    let pool = vec![
        mk(text(3000)),
        mk(noise(1024, &mut rng)),
        mk(vec![0u8; 800]),
    ];
    Layer {
        name: "raw-bwt",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(|artifact, bytes, pristine| {
            // Reinterpret the (mutated) bytes as the u16 last column; a
            // trailing odd byte is dropped, which is itself a fault.
            let symbols: Vec<u16> = bytes
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            match bwt_inverse(&symbols) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine BWT round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine BWT block rejected".into()),
                Err(_) => Ok(false),
            }
        }),
    }
}

fn rle1_layer() -> Layer {
    let mut rng = Rng::new(0x41E1);
    let mk = |data: Vec<u8>| Artifact {
        bytes: rle1_encode(&data),
        original: data,
    };
    let pool = vec![
        mk(vec![9u8; 10_000]),
        mk(noise(2048, &mut rng)),
        mk(text(4000)),
    ];
    Layer {
        name: "raw-rle1",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(|artifact, bytes, pristine| {
            // RLE1 decode is total: every byte string is a valid
            // encoding. The layer still checks panic-freedom, the
            // allocation bound (expansion is ≤ ~52× input), and exact
            // pristine round-trips.
            let out = rle1_decode(bytes);
            if pristine && out != artifact.original {
                return Err("pristine RLE1 round-trip mismatch".into());
            }
            Ok(true)
        }),
    }
}

// ---------------------------------------------------------------------
// Float-codec layers.

fn fpc_layer() -> Layer {
    let mut rng = Rng::new(0xF9C);
    let fpc = Fpc::default();
    let mk = |data: Vec<u8>| Artifact {
        bytes: fpc.compress(&data),
        original: data,
    };
    let pool = vec![
        mk(smooth_f64(1024)),
        mk(noise(4096, &mut rng)),
        mk(vec![0u8; 2048]),
    ];
    Layer {
        name: "float-fpc",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(
            move |artifact, bytes, pristine| match fpc.decompress(bytes) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine FPC round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine FPC stream rejected".into()),
                Err(_) => Ok(false),
            },
        ),
    }
}

// ---------------------------------------------------------------------
// Network layer.

/// Mutated request frames against a *live in-process daemon*: the
/// layer starts `isobar serve` on a loopback socket once, and every
/// iteration opens a connection, writes the (possibly corrupted)
/// frame, half-closes the write side (so a frame whose header claims
/// more bytes than were sent reads EOF instead of waiting out the
/// daemon's frame timeout), and reads the daemon's answer.
///
/// The layer's verdict mapping:
///
/// * `Ok` / `NotFound` — the mutation survived decoding (accepted).
/// * `BadRequest` / `Busy`, or the daemon closing the connection
///   without answering — a typed rejection.
/// * `ServerError` / `ShuttingDown`, a read timeout (the daemon
///   hung), or a malformed *response* frame — a contract violation
///   that fails the layer, exactly like a panic. The daemon runs in
///   this process, so an actual panic in its connection threads also
///   surfaces (the connection drops and, more loudly, the panic
///   prints), and its allocations count against this layer's budget —
///   a length-field bomb that tricked the daemon into a giant buffer
///   would trip the allocation bound even though the allocation
///   happens server-side.
fn serve_frame_layer() -> Layer {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // all_layers() may be called more than once per process (the fuzz
    // binary and tests); each daemon needs its own store directory.
    static INSTANCE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isobar-fuzz-serve-{}-{}",
        std::process::id(),
        INSTANCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = serve(
        &dir,
        "127.0.0.1:0",
        None,
        ServeOptions {
            shards: 1,
            // Small bounds so lying length fields are cheap to reject
            // and threshold commits actually happen under fuzz load.
            max_payload: 1 << 20,
            commit_threshold: 256 << 10,
            ..Default::default()
        },
    )
    .expect("pool serve daemon");
    let addr = server.local_addr();

    // Seed the store so get/stat/ls artifacts address live entries.
    let seed = smooth_f64(256);
    {
        let mut client = Client::connect(addr).expect("pool serve client");
        let resp = client
            .put("fuzz", 0, "density", 8, seed.clone())
            .expect("pool serve seed put");
        assert_eq!(resp.status, Status::Ok, "pool seed put must succeed");
    }

    let mk = |req: Request| Artifact {
        bytes: encode_request(&req),
        original: req.payload,
    };
    let query = |opcode: Opcode, tenant: &str, name: &str| {
        mk(Request {
            opcode,
            tenant: tenant.to_string(),
            name: name.to_string(),
            step: 0,
            width: 0,
            payload: Vec::new(),
        })
    };
    let mut rng = Rng::new(0x5EA7_F4A3);
    let pool = vec![
        mk(Request {
            opcode: Opcode::Put,
            tenant: "fuzz".to_string(),
            name: "density".to_string(),
            step: 1,
            width: 8,
            payload: smooth_f64(128),
        }),
        mk(Request {
            opcode: Opcode::Put,
            tenant: String::new(),
            name: "wide".to_string(),
            step: 0,
            width: 4,
            payload: noise(1024, &mut rng),
        }),
        query(Opcode::Get, "fuzz", "density"),
        query(Opcode::Stat, "fuzz", "density"),
        query(Opcode::Ls, "fuzz", ""),
    ];

    Layer {
        name: "serve-frame",
        pool,
        alloc_scale: ALLOC_SCALE,
        decode: Box::new(move |_, bytes, pristine| {
            // The closure owns the daemon; dropping the layer shuts it
            // down and joins its threads.
            let _daemon = &server;
            let mut stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("harness: serve connect failed: {e}"))?;
            stream
                .set_read_timeout(Some(std::time::Duration::from_secs(10)))
                .map_err(|e| format!("harness: serve socket setup failed: {e}"))?;
            let _ = stream.set_nodelay(true);
            if std::io::Write::write_all(&mut stream, bytes).is_err() {
                // The daemon rejected the header mid-frame and closed;
                // the reset killing our write is a typed rejection.
                if pristine {
                    return Err("pristine frame write was refused".into());
                }
                return Ok(false);
            }
            let _ = stream.shutdown(std::net::Shutdown::Write);
            match read_response(&mut stream, 2 << 20) {
                Ok(resp) => match resp.status {
                    Status::Ok | Status::NotFound => Ok(true),
                    Status::BadRequest | Status::Busy => {
                        if pristine {
                            return Err(format!(
                                "pristine frame answered {:?}: {}",
                                resp.status,
                                String::from_utf8_lossy(&resp.payload)
                            ));
                        }
                        Ok(false)
                    }
                    Status::ServerError | Status::ShuttingDown => Err(format!(
                        "daemon answered {:?} to a mutated frame: {}",
                        resp.status,
                        String::from_utf8_lossy(&resp.payload)
                    )),
                },
                Err(FrameError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    Err("daemon hung on a mutated frame (read timeout)".into())
                }
                Err(_) if pristine => Err("pristine frame got no valid response".into()),
                // Connection closed without an answer: the daemon
                // dropped an untrustworthy stream. Typed rejection.
                Err(_) => Ok(false),
            }
        }),
    }
}

fn fpzip_layer() -> Layer {
    let fpz = FpzipLike;
    let linear = smooth_f64(1024);
    let grid: Vec<u8> = (0..32 * 32)
        .flat_map(|i| {
            let (x, y) = (i % 32, i / 32);
            (((x as f64) * 0.2).sin() + ((y as f64) * 0.3).cos()).to_le_bytes()
        })
        .collect();
    let pool = vec![
        Artifact {
            bytes: fpz
                .compress_f64(&linear, Dims::linear(1024))
                .expect("pool fpzip"),
            original: linear,
        },
        Artifact {
            bytes: fpz
                .compress_f64(
                    &grid,
                    Dims {
                        nx: 32,
                        ny: 32,
                        nz: 1,
                    },
                )
                .expect("pool fpzip grid"),
            original: grid,
        },
    ];
    Layer {
        name: "float-fpzip",
        pool,
        alloc_scale: FPZIP_ALLOC_SCALE,
        decode: Box::new(
            move |artifact, bytes, pristine| match fpz.decompress(bytes) {
                Ok(out) => {
                    if pristine && out != artifact.original {
                        return Err("pristine fpzip round-trip mismatch".into());
                    }
                    Ok(true)
                }
                Err(_) if pristine => Err("pristine fpzip stream rejected".into()),
                Err(_) => Ok(false),
            },
        ),
    }
}
