//! The 24-dataset catalog (Tables I, III, IV of the paper).
//!
//! Each [`DatasetSpec`] pairs a synthetic generator recipe with the
//! paper-reported reference statistics, so the benchmark harness can
//! print measured-vs-paper columns side by side. Dataset sizes are
//! parameterized (`generate(n, seed)`) because the paper's element
//! counts (2.3M–153M) are impractical for per-commit testing; the
//! harness scales them down proportionally.

use crate::gen::{generate, GenKind};

/// Element type of a dataset, fixing the byte width ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementType {
    /// IEEE-754 double (ω = 8). Also used for xgc_iphase's "8 doubles"
    /// records, which ISOBAR processes as ω = 8 aggregates.
    F64,
    /// IEEE-754 single (ω = 4).
    F32,
    /// 64-bit integer (ω = 8).
    I64,
}

impl ElementType {
    /// Bytes per element (the paper's ω).
    pub fn width(self) -> usize {
        match self {
            ElementType::F64 | ElementType::I64 => 8,
            ElementType::F32 => 4,
        }
    }

    /// Type name as printed in Table III.
    pub fn name(self) -> &'static str {
        match self {
            ElementType::F64 => "double",
            ElementType::F32 => "single",
            ElementType::I64 => "64-bit integer",
        }
    }
}

/// One catalog entry: generator recipe + paper-reported reference data.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name as used throughout the paper (e.g. "gts_phi_l").
    pub name: &'static str,
    /// Producing application (Table I).
    pub application: &'static str,
    /// Element type.
    pub element: ElementType,
    /// Synthetic generator recipe.
    pub kind: GenKind,
    /// Paper: dataset size in MB (Table III).
    pub paper_mb: f64,
    /// Paper: element count in millions (Table III).
    pub paper_millions: f64,
    /// Paper: unique-value percentage (Table III, Eq. 4).
    pub paper_unique_pct: f64,
    /// Paper: Shannon entropy of the element distribution (Table III).
    pub paper_entropy: f64,
    /// Paper: randomness percentage (Table III, Eq. 6).
    pub paper_randomness_pct: f64,
    /// Paper: hard-to-compress byte percentage (Table IV).
    pub paper_htc_pct: f64,
    /// Paper: identified as improvable by the analyzer (Table IV).
    pub paper_improvable: bool,
}

impl DatasetSpec {
    /// Generate `n` elements of this dataset, deterministically from
    /// `seed` (the same seed always produces the same bytes).
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        Dataset {
            spec: self.clone(),
            bytes: generate(self.kind, n, seed ^ fnv(self.name)),
        }
    }

    /// Element count proportional to the paper's, scaled by `scale`
    /// (1.0 reproduces the paper sizes; benches default much lower).
    pub fn scaled_elements(&self, scale: f64) -> usize {
        ((self.paper_millions * 1e6 * scale) as usize).max(1024)
    }

    /// The paper's expected hard-byte count for this dataset's width.
    pub fn expected_hard_bytes(&self) -> usize {
        (self.paper_htc_pct / 100.0 * self.element.width() as f64).round() as usize
    }
}

/// A generated dataset: spec + element bytes (little-endian).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The catalog entry this was generated from.
    pub spec: DatasetSpec,
    /// Raw element bytes, `element_count() * width()` long.
    pub bytes: Vec<u8>,
}

impl Dataset {
    /// Bytes per element.
    pub fn width(&self) -> usize {
        self.spec.element.width()
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.bytes.len() / self.width()
    }
}

/// Deterministic 64-bit FNV-1a hash for per-dataset seed derivation.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

macro_rules! spec {
    ($name:literal, $app:literal, $elem:ident, $kind:expr,
     mb: $mb:literal, m: $m:literal, uniq: $u:literal, h: $h:literal,
     rand: $r:literal, htc: $htc:literal, improvable: $imp:literal) => {
        DatasetSpec {
            name: $name,
            application: $app,
            element: ElementType::$elem,
            kind: $kind,
            paper_mb: $mb,
            paper_millions: $m,
            paper_unique_pct: $u,
            paper_entropy: $h,
            paper_randomness_pct: $r,
            paper_htc_pct: $htc,
            paper_improvable: $imp,
        }
    };
}

/// All 24 datasets, in Table III order.
pub fn all() -> Vec<DatasetSpec> {
    use GenKind::*;
    vec![
        spec!("gts_phi_l", "GTS", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 42.0, m: 5.5, uniq: 99.9, h: 12.05, rand: 99.9, htc: 75.0, improvable: true),
        spec!("gts_phi_nl", "GTS", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 42.0, m: 5.5, uniq: 99.9, h: 12.05, rand: 99.9, htc: 75.0, improvable: true),
        spec!("gts_chkp_zeon", "GTS", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 18.0, m: 2.4, uniq: 99.9, h: 14.68, rand: 99.9, htc: 75.0, improvable: true),
        spec!("gts_chkp_zion", "GTS", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 18.0, m: 2.4, uniq: 99.9, h: 15.12, rand: 99.9, htc: 75.0, improvable: true),
        spec!("xgc_igid", "XGC", I64, IntIds { hard_bytes: 3, unique_fraction: 0.226 },
              mb: 146.0, m: 19.2, uniq: 22.6, h: 13.81, rand: 100.0, htc: 37.5, improvable: true),
        spec!("xgc_iphase", "XGC", F64, DoubleField { hard_bytes: 6, unique_fraction: 0.077 },
              mb: 1170.0, m: 153.4, uniq: 7.7, h: 12.32, rand: 76.4, htc: 75.0, improvable: true),
        spec!("s3d_temp", "S3D", F32, FloatField { hard_bytes: 1 },
              mb: 77.0, m: 20.2, uniq: 45.9, h: 12.21, rand: 95.4, htc: 25.0, improvable: true),
        spec!("s3d_vmag", "S3D", F32, FloatField { hard_bytes: 2 },
              mb: 77.0, m: 20.2, uniq: 49.9, h: 12.81, rand: 99.9, htc: 50.0, improvable: true),
        spec!("flash_velx", "FLASH", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 520.0, m: 68.1, uniq: 100.0, h: 24.34, rand: 100.0, htc: 75.0, improvable: true),
        spec!("flash_vely", "FLASH", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 520.0, m: 68.1, uniq: 100.0, h: 25.74, rand: 100.0, htc: 75.0, improvable: true),
        spec!("flash_gamc", "FLASH", F64, DoubleField { hard_bytes: 5, unique_fraction: 1.0 },
              mb: 520.0, m: 68.1, uniq: 100.0, h: 11.26, rand: 100.0, htc: 62.5, improvable: true),
        spec!("msg_bt", "MSG", F64, SkewedNoise { spike_prob: 0.02, unique_fraction: 0.929 },
              mb: 254.0, m: 33.3, uniq: 92.9, h: 23.67, rand: 94.7, htc: 0.0, improvable: false),
        spec!("msg_lu", "MSG", F64, DoubleField { hard_bytes: 6, unique_fraction: 0.992 },
              mb: 185.0, m: 24.2, uniq: 99.2, h: 24.47, rand: 99.7, htc: 75.0, improvable: true),
        spec!("msg_sp", "MSG", F64, DoubleField { hard_bytes: 5, unique_fraction: 0.989 },
              mb: 276.0, m: 36.2, uniq: 98.9, h: 25.03, rand: 99.7, htc: 62.5, improvable: true),
        spec!("msg_sppm", "MSG", F64, Repetitive { unique_fraction: 0.102, repeat_prob: 0.8 },
              mb: 266.0, m: 34.8, uniq: 10.2, h: 11.24, rand: 44.9, htc: 0.0, improvable: false),
        spec!("msg_sweep3d", "MSG", F64, DoubleField { hard_bytes: 4, unique_fraction: 0.898 },
              mb: 119.0, m: 15.7, uniq: 89.8, h: 23.41, rand: 97.9, htc: 50.0, improvable: true),
        spec!("num_brain", "NUM", F64, DoubleField { hard_bytes: 6, unique_fraction: 0.949 },
              mb: 135.0, m: 17.7, uniq: 94.9, h: 23.97, rand: 99.5, htc: 75.0, improvable: true),
        spec!("num_comet", "NUM", F64, DoubleField { hard_bytes: 3, unique_fraction: 0.889 },
              mb: 102.0, m: 13.4, uniq: 88.9, h: 22.04, rand: 93.1, htc: 37.5, improvable: true),
        spec!("num_control", "NUM", F64, DoubleField { hard_bytes: 6, unique_fraction: 0.985 },
              mb: 152.0, m: 19.9, uniq: 98.5, h: 24.14, rand: 99.6, htc: 75.0, improvable: true),
        spec!("num_plasma", "NUM", F64, Repetitive { unique_fraction: 0.003, repeat_prob: 0.85 },
              mb: 33.0, m: 4.4, uniq: 0.3, h: 13.65, rand: 61.9, htc: 0.0, improvable: false),
        spec!("obs_error", "OBS", F64, SkewedNoise { spike_prob: 0.03, unique_fraction: 0.18 },
              mb: 59.0, m: 7.7, uniq: 18.0, h: 17.80, rand: 77.8, htc: 0.0, improvable: false),
        spec!("obs_info", "OBS", F64, DoubleField { hard_bytes: 6, unique_fraction: 0.239 },
              mb: 18.0, m: 2.3, uniq: 23.9, h: 18.07, rand: 85.3, htc: 75.0, improvable: true),
        spec!("obs_spitzer", "OBS", F64, Repetitive { unique_fraction: 0.057, repeat_prob: 0.6 },
              mb: 189.0, m: 24.7, uniq: 5.7, h: 17.36, rand: 70.7, htc: 0.0, improvable: false),
        spec!("obs_temp", "OBS", F64, DoubleField { hard_bytes: 6, unique_fraction: 1.0 },
              mb: 38.0, m: 4.9, uniq: 100.0, h: 22.25, rand: 100.0, htc: 75.0, improvable: true),
    ]
}

/// Look up a dataset spec by name.
pub fn spec(name: &str) -> Option<DatasetSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// Names of the 19 datasets the paper identifies as improvable.
pub fn improvable_names() -> Vec<&'static str> {
    all()
        .into_iter()
        .filter(|s| s.paper_improvable)
        .map(|s| s.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_24_datasets_with_unique_names() {
        let specs = all();
        assert_eq!(specs.len(), 24);
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn nineteen_datasets_are_improvable() {
        // Table IV: 19 of 24 identified as improvable.
        assert_eq!(improvable_names().len(), 19);
    }

    #[test]
    fn htc_percentages_match_generator_recipes() {
        // The generator's hard-byte count must express the paper's HTC
        // byte percentage exactly.
        for s in all() {
            let hard = match s.kind {
                GenKind::DoubleField { hard_bytes, .. } => hard_bytes,
                GenKind::FloatField { hard_bytes } => hard_bytes,
                GenKind::IntIds { hard_bytes, .. } => hard_bytes,
                GenKind::Repetitive { .. } | GenKind::SkewedNoise { .. } => 0,
            };
            assert_eq!(
                hard,
                s.expected_hard_bytes(),
                "{}: {}% of width {}",
                s.name,
                s.paper_htc_pct,
                s.element.width()
            );
        }
    }

    #[test]
    fn generation_matches_requested_count_and_width() {
        for s in all() {
            let ds = s.generate(1000, 1);
            assert_eq!(ds.element_count(), 1000, "{}", s.name);
            assert_eq!(ds.bytes.len(), 1000 * s.element.width());
        }
    }

    #[test]
    fn seeds_differ_across_datasets() {
        // Same seed argument, different dataset → different bytes (the
        // name is folded into the seed).
        let a = spec("gts_phi_l").unwrap().generate(1000, 5);
        let b = spec("gts_phi_nl").unwrap().generate(1000, 5);
        assert_ne!(a.bytes, b.bytes);
    }

    #[test]
    fn scaled_elements_are_proportional() {
        let s = spec("flash_velx").unwrap();
        assert_eq!(s.scaled_elements(1.0), 68_100_000);
        assert_eq!(s.scaled_elements(0.01), 681_000);
        // Tiny scales are floored to a usable minimum.
        assert_eq!(s.scaled_elements(1e-9), 1024);
    }

    #[test]
    fn element_type_names_match_table_iii() {
        assert_eq!(ElementType::F64.name(), "double");
        assert_eq!(ElementType::F32.name(), "single");
        assert_eq!(ElementType::I64.name(), "64-bit integer");
        assert_eq!(ElementType::F64.width(), 8);
        assert_eq!(ElementType::F32.width(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec("msg_sppm").is_some());
        assert!(spec("no_such_dataset").is_none());
    }
}
