//! A small blocking client for the serve protocol, used by the CLI,
//! the soak harness, and the integration tests.

use crate::protocol::{encode_request, read_response, FrameError, Opcode, Request, Response};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a running daemon. Generic over the transport so
/// the chaos harness can splice a fault-injecting stream
/// ([`crate::ChaosStream`]) under an otherwise unchanged client.
pub struct Client<S: Read + Write = TcpStream> {
    stream: S,
    /// Bound on response payloads this client will buffer.
    max_payload: u64,
}

impl Client<TcpStream> {
    /// Connect with a 10-second I/O timeout and a 1 GiB response cap.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client::from_stream(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected transport (socket timeouts and
    /// options are the caller's business) with a 1 GiB response cap.
    pub fn from_stream(stream: S) -> Client<S> {
        Client {
            stream,
            max_payload: 1 << 30,
        }
    }

    /// The underlying transport, e.g. to inspect chaos statistics.
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Send one request frame and read its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        let frame = encode_request(req);
        self.stream.write_all(&frame).map_err(FrameError::Io)?;
        self.stream.flush().map_err(FrameError::Io)?;
        read_response(&mut self.stream, self.max_payload)
    }

    /// Store one variable.
    pub fn put(
        &mut self,
        tenant: &str,
        step: u32,
        name: &str,
        width: u8,
        payload: Vec<u8>,
    ) -> Result<Response, FrameError> {
        self.request(&Request {
            opcode: Opcode::Put,
            tenant: tenant.to_string(),
            name: name.to_string(),
            step,
            width,
            payload,
        })
    }

    /// Fetch one variable.
    pub fn get(&mut self, tenant: &str, step: u32, name: &str) -> Result<Response, FrameError> {
        self.request(&Request {
            opcode: Opcode::Get,
            tenant: tenant.to_string(),
            name: name.to_string(),
            step,
            width: 0,
            payload: Vec::new(),
        })
    }

    /// Describe one variable.
    pub fn stat(&mut self, tenant: &str, step: u32, name: &str) -> Result<Response, FrameError> {
        self.request(&Request {
            opcode: Opcode::Stat,
            tenant: tenant.to_string(),
            name: name.to_string(),
            step,
            width: 0,
            payload: Vec::new(),
        })
    }

    /// List the tenant's variables.
    pub fn ls(&mut self, tenant: &str) -> Result<Response, FrameError> {
        self.request(&Request {
            opcode: Opcode::Ls,
            tenant: tenant.to_string(),
            name: String::new(),
            step: 0,
            width: 0,
            payload: Vec::new(),
        })
    }
}
