#![warn(missing_docs)]

//! Shared support for the table/figure harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! ISOBAR paper. They share dataset scaling, timing, and measurement
//! helpers from this library so the numbers are computed the same way
//! everywhere:
//!
//! * **Scaling** — dataset sizes are proportional to the paper's
//!   (Table III) times `ISOBAR_SCALE` (default 0.02, i.e. a ~100 MB
//!   corpus instead of ~5 GB). Set the environment variable to trade
//!   runtime for fidelity; classifications are stable from about
//!   0.005 upward.
//! * **Timing** — single-threaded wall time, matching the paper's
//!   single-core Lens-node measurements. Compression throughput (TP_C)
//!   counts *original* bytes per second; decompression throughput
//!   (TP_D) counts *reconstructed* bytes per second.

use isobar::{CompressionReport, EupaSelector, IsobarCompressor, IsobarOptions, Preference};
use isobar_codecs::{Codec, CodecId};
use isobar_datasets::catalog::{Dataset, DatasetSpec};
use std::time::Instant;

pub mod soak;

/// Default corpus scale relative to the paper's dataset sizes.
pub const DEFAULT_SCALE: f64 = 0.02;

/// Deterministic seed used by every harness binary.
pub const SEED: u64 = 0x15_0BA2;

/// Scale factor from `ISOBAR_SCALE`, defaulting to [`DEFAULT_SCALE`].
pub fn scale() -> f64 {
    std::env::var("ISOBAR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Generate a dataset at the harness scale.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    spec.generate(spec.scaled_elements(scale()), SEED)
}

/// Wall-clock a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Throughput in MB/s (paper convention: 10^6 bytes).
///
/// Same clamp as `isobar::throughput_mbps`: the elapsed time has a
/// one-microsecond floor, so a sub-resolution measurement reports a
/// large-but-sane number instead of `f64::INFINITY` or absurd MB/s,
/// which would poison averages, speedup ratios, and JSON output
/// downstream.
pub fn mbps(bytes: usize, secs: f64) -> f64 {
    isobar::throughput_mbps(bytes, secs)
}

/// One standalone-codec measurement.
#[derive(Debug, Clone, Copy)]
pub struct CodecRun {
    /// Compression ratio (Eq. 1).
    pub ratio: f64,
    /// Compression throughput, MB/s.
    pub comp_mbps: f64,
    /// Decompression throughput, MB/s.
    pub decomp_mbps: f64,
}

/// Measure a standalone codec on a dataset (compress + verify + time
/// decompress).
pub fn run_codec(codec: &dyn Codec, data: &[u8]) -> CodecRun {
    let (packed, comp_secs) = time(|| codec.compress(data));
    let (unpacked, decomp_secs) = time(|| codec.decompress(&packed).expect("own stream"));
    assert_eq!(unpacked, data, "codec round-trip failure");
    CodecRun {
        ratio: data.len() as f64 / packed.len() as f64,
        comp_mbps: mbps(data.len(), comp_secs),
        decomp_mbps: mbps(data.len(), decomp_secs),
    }
}

/// One full ISOBAR pipeline measurement.
#[derive(Debug, Clone)]
pub struct IsobarRun {
    /// Compression ratio (Eq. 1).
    pub ratio: f64,
    /// Compression throughput, MB/s (whole pipeline: EUPA + analysis +
    /// partition + solver + merge).
    pub comp_mbps: f64,
    /// Decompression throughput, MB/s.
    pub decomp_mbps: f64,
    /// The detailed report (EUPA decision, per-chunk outcomes).
    pub report: CompressionReport,
}

/// Measure the full ISOBAR pipeline under a preference.
pub fn run_isobar(data: &[u8], width: usize, preference: Preference) -> IsobarRun {
    run_isobar_with(data, width, default_options(preference))
}

/// Harness-standard options for a preference.
pub fn default_options(preference: Preference) -> IsobarOptions {
    IsobarOptions {
        preference,
        eupa: EupaSelector::default(),
        ..Default::default()
    }
}

/// Measure the full ISOBAR pipeline with explicit options.
pub fn run_isobar_with(data: &[u8], width: usize, options: IsobarOptions) -> IsobarRun {
    let isobar = IsobarCompressor::new(options);
    let ((packed, report), comp_secs) = time(|| {
        isobar
            .compress_with_report(data, width)
            .expect("aligned input")
    });
    let (unpacked, decomp_secs) = time(|| isobar.decompress(&packed).expect("own container"));
    assert_eq!(unpacked, data, "ISOBAR round-trip failure");
    IsobarRun {
        ratio: report.ratio(),
        comp_mbps: mbps(data.len(), comp_secs),
        decomp_mbps: mbps(data.len(), decomp_secs),
        report,
    }
}

/// ΔCR percentage (Eq. 3).
pub fn delta_cr_pct(isobar_ratio: f64, standard_ratio: f64) -> f64 {
    (isobar_ratio / standard_ratio - 1.0) * 100.0
}

/// Speed-up (Eq. 2).
pub fn speedup(isobar_mbps: f64, standard_mbps: f64) -> f64 {
    isobar_mbps / standard_mbps
}

/// Names of the codecs as the paper prints them.
pub fn codec_name(id: CodecId) -> &'static str {
    id.name()
}

/// Print the standard harness banner (scale, corpus size).
pub fn banner(what: &str) {
    println!("== {what} ==");
    println!(
        "scale {} (set ISOBAR_SCALE to change); seed {SEED:#x}; single-threaded",
        scale()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use isobar_codecs::deflate::Deflate;

    #[test]
    fn mbps_handles_zero_time() {
        assert!(mbps(100, 0.0).is_finite());
        assert!(mbps(100, 0.0) > 0.0);
        assert!((mbps(2_000_000, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_cr_matches_equation_3() {
        assert!((delta_cr_pct(1.2, 1.0) - 20.0).abs() < 1e-9);
        assert!((delta_cr_pct(1.0, 1.25) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn run_codec_round_trips_and_reports() {
        let data = b"measure me measure me measure me".repeat(100);
        let run = run_codec(&Deflate::default(), &data);
        assert!(run.ratio > 1.0);
        assert!(run.comp_mbps > 0.0 && run.decomp_mbps > 0.0);
    }

    #[test]
    fn run_isobar_round_trips_and_reports() {
        let spec = isobar_datasets::catalog::spec("gts_phi_l").unwrap();
        let ds = spec.generate(50_000, SEED);
        let run = run_isobar(&ds.bytes, ds.width(), Preference::Speed);
        assert!(run.ratio > 1.0);
        assert!(run.report.improvable());
    }

    #[test]
    fn scale_env_parsing_defaults() {
        // Do not mutate the environment (tests run in parallel); just
        // check the default path.
        if std::env::var("ISOBAR_SCALE").is_err() {
            assert_eq!(scale(), DEFAULT_SCALE);
        }
    }
}
