//! Hand-rolled argument parsing (no external dependencies).

use isobar::{CodecId, CompressionLevel, KernelSelection, Linearization, Preference};
use std::path::PathBuf;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  isobar compress   --width N [options] IN OUT   compress an element array
  isobar decompress IN OUT                       restore the original bytes
  isobar analyze    --width N IN                 byte-column report only
  isobar info       IN                           describe a container
  isobar fsck       IN                           verify integrity without
                                                 decompressing (exit 3 on damage)
  isobar salvage    IN OUT                       recover every intact chunk or
                                                 record from a damaged file
  isobar store put  DIR IN --name V --step N --width W
                                                 append one variable to a
                                                 sharded checkpoint store
  isobar store get  DIR OUT --name V --step N    read one variable back
  isobar store ls   DIR                          list a store's contents
  isobar store compact DIR                       drop superseded entries and
                                                 sweep unreferenced segments
  isobar store migrate IN DIR                    copy a v1/v2 single-file
                                                 store into a v3 directory
  isobar serve      DIR [serve options]          run the checkpoint daemon in
                                                 front of a sharded store
                                                 (SIGINT/SIGTERM drain and
                                                 commit cleanly)

compress options:
  --width N            element width in bytes (1..=64, required)
  --prefer speed|ratio end-user preference (default: ratio)
  --ratio-floor F      fastest combination with sample CR >= F
  --codec zlib|bzlib2  skip EUPA, force this solver
  --linearize row|column  skip EUPA, force this linearization
  --level fast|default|best  solver effort (default: default)
  --tau F              analyzer tolerance factor (default: 1.42)
  --chunk N            chunk size in elements (default: 375000)
  --parallel           compress chunks on all cores
  --kernels=scalar|auto
                       pin the SIMD kernel dispatch (default: auto —
                       the best tier the CPU supports; also settable
                       via the ISOBAR_KERNELS environment variable)
  --stream             constant-memory streaming mode (one chunk in
                       flight; output uses the streamable framing)
  --stats[=table|json|prometheus]
                       print per-stage telemetry after the run
                       (default format: table)
  --trace FILE         write a Chrome trace-event JSON timeline of the
                       run (load in Perfetto / chrome://tracing)
  --quiet              suppress the summary report

decompress options:
  --stream             required for containers written with --stream
  --skip-corrupt       zero-fill damaged chunks instead of failing;
                       damage shows up under --stats
  --no-verify          skip embedded checksum verification (decode
                       speed over damage detection)
  --kernels=scalar|auto
                       pin the SIMD kernel dispatch (default: auto)
  --stats[=table|json|prometheus]
                       print per-stage telemetry after the run
  --trace FILE         write a Chrome trace-event JSON timeline

store options:
  --name V             variable name (put/get, required)
  --step N             time step (put/get, required)
  --width N            element width in bytes (put, required)
  --shards N           segment pipelines to write with (put/compact/
                       migrate; default 4)
  --queue-depth N      in-flight variables per shard before put blocks
                       (put; default 2)
  --no-verify          skip checksum verification on reads (get/ls)

serve options:
  --addr HOST:PORT     request listener address (default 127.0.0.1:7227;
                       port 0 picks an ephemeral port)
  --metrics HOST:PORT  also serve Prometheus text exposition on
                       http://HOST:PORT/metrics
  --shards N           segment pipelines per generation (default 4)
  --queue-depth N      in-flight variables per shard (default 2)
  --max-payload N      largest accepted put payload in bytes
                       (default 67108864 = 64 MiB)
  --max-inflight N     uncommitted-byte budget before puts get Busy
                       (default 268435456 = 256 MiB)
  --commit-every N     pending bytes that trigger a generation commit
                       (default 67108864 = 64 MiB)
  --max-connections N  concurrent connections before Busy (default 256)
  --slow-ms N          log requests at or past N milliseconds to
                       slow.jsonl and count them (default: off)
  --flight-recorder DIR
                       keep trace rings warm and write Chrome trace
                       dumps under DIR on SIGUSR1, panic, and slow
                       requests; slow.jsonl lands here too
  --debug-endpoint     also serve a /debug/stats JSON snapshot on the
                       --metrics listener
  --no-wal             skip the write-ahead journal: puts are acked
                       before they are durable, and a crash between
                       commits loses them (the pre-journal contract)
  --idle-timeout N     drop connections idle between requests for N
                       seconds; 0 keeps them forever (default 300)
  --frame-deadline N   abort requests whose frame stops making
                       progress for N seconds total (default 30)

fsck and salvage work on batch containers, streamed containers, and
checkpoint stores alike (dispatched on the file's magic; a directory
is treated as a v3 sharded store). fsck exits 0 for a clean or legacy
file and 3 when it finds damage.";

/// How `--stats` output should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable aligned table.
    Table,
    /// The snapshot's canonical JSON form.
    Json,
    /// Prometheus text exposition (scrapeable via a textfile collector).
    Prometheus,
}

impl StatsFormat {
    fn parse_flag(arg: &str) -> Option<Result<StatsFormat, String>> {
        match arg {
            "--stats" | "--stats=table" => Some(Ok(StatsFormat::Table)),
            "--stats=json" => Some(Ok(StatsFormat::Json)),
            "--stats=prometheus" => Some(Ok(StatsFormat::Prometheus)),
            _ => arg.strip_prefix("--stats=").map(|other| {
                Err(format!(
                    "--stats must be table|json|prometheus, got '{other}'"
                ))
            }),
        }
    }
}

/// Parse a `--kernels=scalar|auto` flag, if `arg` is one.
fn parse_kernels_flag(arg: &str) -> Option<Result<KernelSelection, String>> {
    arg.strip_prefix("--kernels=").map(|value| {
        KernelSelection::parse(value)
            .ok_or_else(|| format!("--kernels must be scalar|auto, got '{value}'"))
    })
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compress `input` into `output`.
    Compress {
        /// Source file.
        input: PathBuf,
        /// Destination container.
        output: PathBuf,
        /// Element width.
        width: usize,
        /// Pipeline options.
        options: CompressOptions,
        /// Use the constant-memory streaming mode and framing.
        stream: bool,
        /// Suppress the summary.
        quiet: bool,
        /// Print telemetry after the run, in this format.
        stats: Option<StatsFormat>,
        /// Write a Chrome trace-event timeline of the run here.
        trace: Option<PathBuf>,
        /// Pin the SIMD kernel dispatch (`--kernels=`), if given.
        kernels: Option<KernelSelection>,
    },
    /// Decompress `input` into `output`.
    Decompress {
        /// Source container.
        input: PathBuf,
        /// Destination file.
        output: PathBuf,
        /// The container uses the streaming framing.
        stream: bool,
        /// Zero-fill damaged chunks instead of failing the run.
        skip_corrupt: bool,
        /// Verify embedded checksums while decoding (on by default;
        /// `--no-verify` clears it).
        verify: bool,
        /// Print telemetry after the run, in this format.
        stats: Option<StatsFormat>,
        /// Write a Chrome trace-event timeline of the run here.
        trace: Option<PathBuf>,
        /// Pin the SIMD kernel dispatch (`--kernels=`), if given.
        kernels: Option<KernelSelection>,
    },
    /// Analyze and report, without writing anything.
    Analyze {
        /// Source file.
        input: PathBuf,
        /// Element width.
        width: usize,
        /// Analyzer tolerance.
        tau: f64,
        /// Also print the per-bit-position probability profile.
        bits: bool,
    },
    /// Describe an existing container's header.
    Info {
        /// Container file.
        input: PathBuf,
    },
    /// Walk a container, stream, or store and verify every embedded
    /// checksum without decompressing payloads.
    Fsck {
        /// File to check (dispatched on its magic).
        input: PathBuf,
    },
    /// Recover every intact chunk or record from a damaged file into
    /// a fresh, fully valid one.
    Salvage {
        /// Damaged source file (dispatched on its magic).
        input: PathBuf,
        /// Destination for the salvaged file.
        output: PathBuf,
    },
    /// Append one variable to (creating if needed) a version-3
    /// sharded store directory.
    StorePut {
        /// Store directory.
        dir: PathBuf,
        /// Raw element-array file to compress and store.
        input: PathBuf,
        /// Variable name.
        name: String,
        /// Time step.
        step: u32,
        /// Element width in bytes.
        width: usize,
        /// Segment pipelines (shards) to write with.
        shards: u16,
        /// In-flight variables per shard before `put` blocks.
        queue_depth: usize,
    },
    /// Read one variable out of a store (any version) into a file.
    StoreGet {
        /// Store path (directory or single file).
        dir: PathBuf,
        /// Destination for the decompressed bytes.
        output: PathBuf,
        /// Variable name.
        name: String,
        /// Time step.
        step: u32,
        /// Verify checksums while reading (`--no-verify` clears it).
        verify: bool,
    },
    /// List a store's entries, segments, and space accounting.
    StoreLs {
        /// Store path (directory or single file).
        dir: PathBuf,
        /// Verify checksums while reading (`--no-verify` clears it).
        verify: bool,
    },
    /// Rewrite a version-3 store without its superseded entries and
    /// sweep unreferenced segment files.
    StoreCompact {
        /// Store directory.
        dir: PathBuf,
        /// Shards for the rewritten generation (default: keep 4).
        shards: Option<u16>,
    },
    /// Copy a version-1/2 single-file store into a fresh version-3
    /// directory store, container bytes verbatim.
    StoreMigrate {
        /// Source single-file store.
        input: PathBuf,
        /// Destination store directory.
        dir: PathBuf,
        /// Segment pipelines (shards) for the new store.
        shards: u16,
    },
    /// Run the checkpoint daemon in front of a sharded store.
    Serve {
        /// Store directory (created if missing).
        dir: PathBuf,
        /// Request listener address.
        addr: String,
        /// Optional Prometheus `/metrics` listener address.
        metrics: Option<String>,
        /// Segment pipelines per generation.
        shards: u16,
        /// In-flight variables per shard.
        queue_depth: usize,
        /// Largest accepted put payload in bytes.
        max_payload: u64,
        /// Uncommitted-byte budget before puts answer Busy.
        max_inflight: u64,
        /// Pending bytes that trigger a generation commit.
        commit_threshold: u64,
        /// Concurrent connections before Busy.
        max_connections: usize,
        /// Slow-request threshold in milliseconds, if set.
        slow_ms: Option<u64>,
        /// Flight-recorder output directory, if enabled.
        flight_recorder: Option<PathBuf>,
        /// Serve `/debug/stats` on the metrics listener.
        debug_endpoint: bool,
        /// Journal puts before acking them (off restores the
        /// acked-but-lost-on-crash contract).
        wal: bool,
        /// Seconds a connection may idle between requests; 0 disables
        /// the reaper.
        idle_timeout_secs: u64,
        /// Seconds one request frame may take end to end.
        frame_deadline_secs: u64,
    },
}

/// Compression knobs gathered from flags.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressOptions {
    /// EUPA preference.
    pub preference: Preference,
    /// Solver effort.
    pub level: CompressionLevel,
    /// Analyzer tolerance.
    pub tau: f64,
    /// Chunk size in elements.
    pub chunk_elements: usize,
    /// Forced solver, if any.
    pub codec: Option<CodecId>,
    /// Forced linearization, if any.
    pub linearization: Option<Linearization>,
    /// Multi-threaded chunk compression.
    pub parallel: bool,
}

impl Default for CompressOptions {
    fn default() -> Self {
        CompressOptions {
            preference: Preference::Ratio,
            level: CompressionLevel::Default,
            tau: isobar::DEFAULT_TAU,
            chunk_elements: isobar::chunk::DEFAULT_CHUNK_ELEMENTS,
            codec: None,
            linearization: None,
            parallel: false,
        }
    }
}

/// Parse `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().peekable();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "compress" | "c" => parse_compress(&mut it),
        "decompress" | "d" => {
            let mut stream = false;
            let mut skip_corrupt = false;
            let mut verify = true;
            let mut stats = None;
            let mut trace = None;
            let mut kernels = None;
            let mut paths: Vec<PathBuf> = Vec::new();
            while let Some(arg) = it.next() {
                if let Some(parsed) = StatsFormat::parse_flag(arg) {
                    stats = Some(parsed?);
                    continue;
                }
                if let Some(parsed) = parse_kernels_flag(arg) {
                    kernels = Some(parsed?);
                    continue;
                }
                match arg.as_str() {
                    "--stream" => stream = true,
                    "--skip-corrupt" => skip_corrupt = true,
                    "--no-verify" => verify = false,
                    "--trace" => trace = Some(PathBuf::from(value(&mut it, "--trace")?)),
                    other if other.starts_with('-') => {
                        return Err(format!("unknown flag '{other}'"))
                    }
                    other => paths.push(PathBuf::from(other)),
                }
            }
            if skip_corrupt && !verify {
                return Err("--skip-corrupt needs checksums to find intact chunks; \
                     it cannot be combined with --no-verify"
                    .to_string());
            }
            let [input, output]: [PathBuf; 2] = paths
                .try_into()
                .map_err(|_| "decompress requires exactly IN and OUT paths".to_string())?;
            Ok(Command::Decompress {
                input,
                output,
                stream,
                skip_corrupt,
                verify,
                stats,
                trace,
                kernels,
            })
        }
        "analyze" | "a" => parse_analyze(&mut it),
        "info" | "i" => {
            let input = one_path(&mut it)?;
            ensure_done(&mut it)?;
            Ok(Command::Info { input })
        }
        "fsck" => {
            let input = one_path(&mut it)?;
            ensure_done(&mut it)?;
            Ok(Command::Fsck { input })
        }
        "salvage" => {
            let input = one_path(&mut it)?;
            let output = one_path(&mut it).map_err(|_| "salvage requires IN and OUT paths")?;
            ensure_done(&mut it)?;
            Ok(Command::Salvage { input, output })
        }
        "store" => parse_store(&mut it),
        "serve" => parse_serve(&mut it),
        "--help" | "-h" | "help" => Err("".to_string()),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

type ArgIter<'a> = std::iter::Peekable<std::slice::Iter<'a, String>>;

fn parse_compress(it: &mut ArgIter<'_>) -> Result<Command, String> {
    let mut width: Option<usize> = None;
    let mut options = CompressOptions::default();
    let mut ratio_floor: Option<f64> = None;
    let mut quiet = false;
    let mut stream = false;
    let mut stats = None;
    let mut trace = None;
    let mut kernels = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    while let Some(arg) = it.next() {
        if let Some(parsed) = StatsFormat::parse_flag(arg) {
            stats = Some(parsed?);
            continue;
        }
        if let Some(parsed) = parse_kernels_flag(arg) {
            kernels = Some(parsed?);
            continue;
        }
        match arg.as_str() {
            "--stream" => stream = true,
            "--trace" => trace = Some(PathBuf::from(value(it, "--trace")?)),
            "--width" | "-w" => {
                width = Some(value(it, "--width")?.parse().map_err(bad("--width"))?)
            }
            "--prefer" => {
                options.preference = match value(it, "--prefer")?.as_str() {
                    "speed" => Preference::Speed,
                    "ratio" => Preference::Ratio,
                    other => return Err(format!("--prefer must be speed|ratio, got '{other}'")),
                }
            }
            "--ratio-floor" => {
                ratio_floor = Some(
                    value(it, "--ratio-floor")?
                        .parse()
                        .map_err(bad("--ratio-floor"))?,
                )
            }
            "--codec" => {
                options.codec = Some(match value(it, "--codec")?.as_str() {
                    "zlib" | "deflate" => CodecId::Deflate,
                    "bzlib2" | "bzip2" => CodecId::Bzip2Like,
                    other => return Err(format!("--codec must be zlib|bzlib2, got '{other}'")),
                })
            }
            "--linearize" => {
                options.linearization = Some(match value(it, "--linearize")?.as_str() {
                    "row" => Linearization::Row,
                    "column" => Linearization::Column,
                    other => return Err(format!("--linearize must be row|column, got '{other}'")),
                })
            }
            "--level" => {
                options.level = match value(it, "--level")?.as_str() {
                    "fast" => CompressionLevel::Fast,
                    "default" => CompressionLevel::Default,
                    "best" => CompressionLevel::Best,
                    other => {
                        return Err(format!("--level must be fast|default|best, got '{other}'"))
                    }
                }
            }
            "--tau" => options.tau = value(it, "--tau")?.parse().map_err(bad("--tau"))?,
            "--chunk" => {
                options.chunk_elements = value(it, "--chunk")?.parse().map_err(bad("--chunk"))?
            }
            "--parallel" => options.parallel = true,
            "--quiet" | "-q" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => paths.push(PathBuf::from(other)),
        }
    }

    if let Some(floor) = ratio_floor {
        options.preference = Preference::SpeedWithRatioFloor(floor);
    }
    let width = width.ok_or("compress requires --width")?;
    if width == 0 || width > 64 {
        return Err(format!("--width must be in 1..=64, got {width}"));
    }
    if options.chunk_elements == 0 {
        return Err("--chunk must be positive".to_string());
    }
    if !(options.tau > 0.0 && options.tau <= 256.0) {
        return Err("--tau must be in (0, 256]".to_string());
    }
    let [input, output]: [PathBuf; 2] = paths
        .try_into()
        .map_err(|_| "compress requires exactly IN and OUT paths".to_string())?;
    Ok(Command::Compress {
        input,
        output,
        width,
        options,
        stream,
        quiet,
        stats,
        trace,
        kernels,
    })
}

fn parse_analyze(it: &mut ArgIter<'_>) -> Result<Command, String> {
    let mut width: Option<usize> = None;
    let mut tau = isobar::DEFAULT_TAU;
    let mut bits = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--width" | "-w" => {
                width = Some(value(it, "--width")?.parse().map_err(bad("--width"))?)
            }
            "--tau" => tau = value(it, "--tau")?.parse().map_err(bad("--tau"))?,
            "--bits" => bits = true,
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => paths.push(PathBuf::from(other)),
        }
    }
    let width = width.ok_or("analyze requires --width")?;
    let [input]: [PathBuf; 1] = paths
        .try_into()
        .map_err(|_| "analyze requires exactly one IN path".to_string())?;
    Ok(Command::Analyze {
        input,
        width,
        tau,
        bits,
    })
}

fn parse_store(it: &mut ArgIter<'_>) -> Result<Command, String> {
    let verb = it
        .next()
        .ok_or("store requires a verb: put|get|ls|compact|migrate")?;

    let mut name: Option<String> = None;
    let mut step: Option<u32> = None;
    let mut width: Option<usize> = None;
    let mut shards: Option<u16> = None;
    let mut queue_depth: usize = 2;
    let mut verify = true;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--name" => name = Some(value(it, "--name")?),
            "--step" => step = Some(value(it, "--step")?.parse().map_err(bad("--step"))?),
            "--width" | "-w" => {
                width = Some(value(it, "--width")?.parse().map_err(bad("--width"))?)
            }
            "--shards" => shards = Some(value(it, "--shards")?.parse().map_err(bad("--shards"))?),
            "--queue-depth" => {
                queue_depth = value(it, "--queue-depth")?
                    .parse()
                    .map_err(bad("--queue-depth"))?
            }
            "--no-verify" => verify = false,
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => paths.push(PathBuf::from(other)),
        }
    }
    if let Some(shards) = shards {
        if shards == 0 {
            return Err("--shards must be positive".to_string());
        }
    }

    match verb.as_str() {
        "put" => {
            let [dir, input]: [PathBuf; 2] = paths
                .try_into()
                .map_err(|_| "store put requires DIR and IN paths".to_string())?;
            let name = name.ok_or("store put requires --name")?;
            let step = step.ok_or("store put requires --step")?;
            let width = width.ok_or("store put requires --width")?;
            if width == 0 || width > 64 {
                return Err(format!("--width must be in 1..=64, got {width}"));
            }
            if queue_depth == 0 {
                return Err("--queue-depth must be positive".to_string());
            }
            Ok(Command::StorePut {
                dir,
                input,
                name,
                step,
                width,
                shards: shards.unwrap_or(4),
                queue_depth,
            })
        }
        "get" => {
            let [dir, output]: [PathBuf; 2] = paths
                .try_into()
                .map_err(|_| "store get requires DIR and OUT paths".to_string())?;
            Ok(Command::StoreGet {
                dir,
                output,
                name: name.ok_or("store get requires --name")?,
                step: step.ok_or("store get requires --step")?,
                verify,
            })
        }
        "ls" => {
            let [dir]: [PathBuf; 1] = paths
                .try_into()
                .map_err(|_| "store ls requires exactly one DIR path".to_string())?;
            Ok(Command::StoreLs { dir, verify })
        }
        "compact" => {
            let [dir]: [PathBuf; 1] = paths
                .try_into()
                .map_err(|_| "store compact requires exactly one DIR path".to_string())?;
            Ok(Command::StoreCompact { dir, shards })
        }
        "migrate" => {
            let [input, dir]: [PathBuf; 2] = paths
                .try_into()
                .map_err(|_| "store migrate requires IN and DIR paths".to_string())?;
            Ok(Command::StoreMigrate {
                input,
                dir,
                shards: shards.unwrap_or(4),
            })
        }
        other => Err(format!(
            "unknown store verb '{other}' (try put|get|ls|compact|migrate)"
        )),
    }
}

fn parse_serve(it: &mut ArgIter<'_>) -> Result<Command, String> {
    let mut addr = "127.0.0.1:7227".to_string();
    let mut metrics: Option<String> = None;
    let mut shards: u16 = 4;
    let mut queue_depth: usize = 2;
    let mut max_payload: u64 = 64 << 20;
    let mut max_inflight: u64 = 256 << 20;
    let mut commit_threshold: u64 = 64 << 20;
    let mut max_connections: usize = 256;
    let mut slow_ms: Option<u64> = None;
    let mut flight_recorder: Option<PathBuf> = None;
    let mut debug_endpoint = false;
    let mut wal = true;
    let mut idle_timeout_secs: u64 = 300;
    let mut frame_deadline_secs: u64 = 30;
    let mut paths: Vec<PathBuf> = Vec::new();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = value(it, "--addr")?,
            "--metrics" => metrics = Some(value(it, "--metrics")?),
            "--shards" => shards = value(it, "--shards")?.parse().map_err(bad("--shards"))?,
            "--queue-depth" => {
                queue_depth = value(it, "--queue-depth")?
                    .parse()
                    .map_err(bad("--queue-depth"))?
            }
            "--max-payload" => {
                max_payload = value(it, "--max-payload")?
                    .parse()
                    .map_err(bad("--max-payload"))?
            }
            "--max-inflight" => {
                max_inflight = value(it, "--max-inflight")?
                    .parse()
                    .map_err(bad("--max-inflight"))?
            }
            "--commit-every" => {
                commit_threshold = value(it, "--commit-every")?
                    .parse()
                    .map_err(bad("--commit-every"))?
            }
            "--max-connections" => {
                max_connections = value(it, "--max-connections")?
                    .parse()
                    .map_err(bad("--max-connections"))?
            }
            "--slow-ms" => {
                slow_ms = Some(value(it, "--slow-ms")?.parse().map_err(bad("--slow-ms"))?)
            }
            "--flight-recorder" => {
                flight_recorder = Some(PathBuf::from(value(it, "--flight-recorder")?))
            }
            "--debug-endpoint" => debug_endpoint = true,
            "--no-wal" => wal = false,
            "--idle-timeout" => {
                idle_timeout_secs = value(it, "--idle-timeout")?
                    .parse()
                    .map_err(bad("--idle-timeout"))?
            }
            "--frame-deadline" => {
                frame_deadline_secs = value(it, "--frame-deadline")?
                    .parse()
                    .map_err(bad("--frame-deadline"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            other => paths.push(PathBuf::from(other)),
        }
    }
    if shards == 0 {
        return Err("--shards must be positive".to_string());
    }
    if queue_depth == 0 {
        return Err("--queue-depth must be positive".to_string());
    }
    if max_connections == 0 {
        return Err("--max-connections must be positive".to_string());
    }
    if max_payload == 0 || max_payload > u32::MAX as u64 {
        return Err(format!(
            "--max-payload must be in 1..={}, got {max_payload}",
            u32::MAX
        ));
    }
    if debug_endpoint && metrics.is_none() {
        return Err("--debug-endpoint requires --metrics (it shares that listener)".to_string());
    }
    if frame_deadline_secs == 0 {
        return Err("--frame-deadline must be positive (it bounds slowloris clients)".to_string());
    }
    let [dir]: [PathBuf; 1] = paths
        .try_into()
        .map_err(|_| "serve requires exactly one DIR path".to_string())?;
    Ok(Command::Serve {
        dir,
        addr,
        metrics,
        shards,
        queue_depth,
        max_payload,
        max_inflight,
        commit_threshold,
        max_connections,
        slow_ms,
        flight_recorder,
        debug_endpoint,
        wal,
        idle_timeout_secs,
        frame_deadline_secs,
    })
}

fn value(it: &mut ArgIter<'_>, flag: &str) -> Result<String, String> {
    it.next()
        .map(|s| s.to_string())
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn bad<E: std::fmt::Display>(flag: &'static str) -> impl Fn(E) -> String {
    move |e| format!("{flag}: {e}")
}

fn one_path(it: &mut ArgIter<'_>) -> Result<PathBuf, String> {
    Ok(PathBuf::from(
        it.next().ok_or("missing input path")?.as_str(),
    ))
}

fn ensure_done(it: &mut ArgIter<'_>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument '{extra}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_compress() {
        let cmd = parse(&strings(&[
            "compress", "--width", "8", "in.bin", "out.isbr",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                width,
                options,
                quiet,
                ..
            } => {
                assert_eq!(width, 8);
                assert_eq!(options, CompressOptions::default());
                assert!(!quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_full_compress_flags() {
        let cmd = parse(&strings(&[
            "compress",
            "--width",
            "4",
            "--prefer",
            "speed",
            "--codec",
            "bzlib2",
            "--linearize",
            "column",
            "--level",
            "best",
            "--tau",
            "1.5",
            "--chunk",
            "1000",
            "--parallel",
            "--quiet",
            "a",
            "b",
        ]))
        .unwrap();
        match cmd {
            Command::Compress {
                width,
                options,
                quiet,
                ..
            } => {
                assert_eq!(width, 4);
                assert_eq!(options.preference, Preference::Speed);
                assert_eq!(options.codec, Some(CodecId::Bzip2Like));
                assert_eq!(options.linearization, Some(Linearization::Column));
                assert_eq!(options.level, CompressionLevel::Best);
                assert_eq!(options.tau, 1.5);
                assert_eq!(options.chunk_elements, 1000);
                assert!(options.parallel);
                assert!(quiet);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ratio_floor_overrides_preference() {
        let cmd = parse(&strings(&[
            "compress",
            "--width",
            "8",
            "--ratio-floor",
            "1.1",
            "a",
            "b",
        ]))
        .unwrap();
        match cmd {
            Command::Compress { options, .. } => {
                assert_eq!(options.preference, Preference::SpeedWithRatioFloor(1.1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse(&strings(&[])).is_err());
        assert!(parse(&strings(&["frobnicate"])).is_err());
        assert!(parse(&strings(&["compress", "a", "b"])).is_err()); // no width
        assert!(parse(&strings(&["compress", "--width", "0", "a", "b"])).is_err());
        assert!(parse(&strings(&["compress", "--width", "65", "a", "b"])).is_err());
        assert!(parse(&strings(&["compress", "--width", "8", "a"])).is_err()); // one path
        assert!(parse(&strings(&[
            "compress", "--width", "8", "--prefer", "zippy", "a", "b"
        ]))
        .is_err());
        assert!(parse(&strings(&[
            "compress", "--width", "8", "--tau", "0", "a", "b"
        ]))
        .is_err());
        assert!(parse(&strings(&["decompress", "only-one"])).is_err());
        assert!(parse(&strings(&["decompress", "a", "b", "c"])).is_err());
        assert!(parse(&strings(&["analyze", "a"])).is_err()); // no width
    }

    #[test]
    fn parses_other_subcommands() {
        assert_eq!(
            parse(&strings(&["decompress", "a", "b"])).unwrap(),
            Command::Decompress {
                input: "a".into(),
                output: "b".into(),
                stream: false,
                skip_corrupt: false,
                verify: true,
                stats: None,
                trace: None,
                kernels: None,
            }
        );
        assert_eq!(
            parse(&strings(&["decompress", "--stream", "a", "b"])).unwrap(),
            Command::Decompress {
                input: "a".into(),
                output: "b".into(),
                stream: true,
                skip_corrupt: false,
                verify: true,
                stats: None,
                trace: None,
                kernels: None,
            }
        );
        assert_eq!(
            parse(&strings(&["analyze", "--width", "8", "x"])).unwrap(),
            Command::Analyze {
                input: "x".into(),
                width: 8,
                tau: isobar::DEFAULT_TAU,
                bits: false,
            }
        );
        assert_eq!(
            parse(&strings(&["info", "x"])).unwrap(),
            Command::Info { input: "x".into() }
        );
        assert_eq!(
            parse(&strings(&["fsck", "x"])).unwrap(),
            Command::Fsck { input: "x".into() }
        );
        assert_eq!(
            parse(&strings(&["salvage", "x", "y"])).unwrap(),
            Command::Salvage {
                input: "x".into(),
                output: "y".into(),
            }
        );
        assert!(parse(&strings(&["salvage", "x"])).is_err());
        assert!(parse(&strings(&["fsck", "x", "y"])).is_err());
    }

    #[test]
    fn store_subcommands_parse() {
        assert_eq!(
            parse(&strings(&[
                "store",
                "put",
                "run.v3",
                "in.bin",
                "--name",
                "density",
                "--step",
                "3",
                "--width",
                "8",
                "--shards",
                "2",
                "--queue-depth",
                "4",
            ]))
            .unwrap(),
            Command::StorePut {
                dir: "run.v3".into(),
                input: "in.bin".into(),
                name: "density".into(),
                step: 3,
                width: 8,
                shards: 2,
                queue_depth: 4,
            }
        );
        assert_eq!(
            parse(&strings(&[
                "store", "get", "run.v3", "out.bin", "--name", "density", "--step", "3",
            ]))
            .unwrap(),
            Command::StoreGet {
                dir: "run.v3".into(),
                output: "out.bin".into(),
                name: "density".into(),
                step: 3,
                verify: true,
            }
        );
        assert_eq!(
            parse(&strings(&["store", "ls", "--no-verify", "run.v3"])).unwrap(),
            Command::StoreLs {
                dir: "run.v3".into(),
                verify: false,
            }
        );
        assert_eq!(
            parse(&strings(&["store", "compact", "run.v3"])).unwrap(),
            Command::StoreCompact {
                dir: "run.v3".into(),
                shards: None,
            }
        );
        assert_eq!(
            parse(&strings(&["store", "migrate", "run.isst", "run.v3"])).unwrap(),
            Command::StoreMigrate {
                input: "run.isst".into(),
                dir: "run.v3".into(),
                shards: 4,
            }
        );
    }

    #[test]
    fn serve_parses_defaults_and_flags() {
        assert_eq!(
            parse(&strings(&["serve", "run.v3"])).unwrap(),
            Command::Serve {
                dir: "run.v3".into(),
                addr: "127.0.0.1:7227".into(),
                metrics: None,
                shards: 4,
                queue_depth: 2,
                max_payload: 64 << 20,
                max_inflight: 256 << 20,
                commit_threshold: 64 << 20,
                max_connections: 256,
                slow_ms: None,
                flight_recorder: None,
                debug_endpoint: false,
                wal: true,
                idle_timeout_secs: 300,
                frame_deadline_secs: 30,
            }
        );
        assert_eq!(
            parse(&strings(&[
                "serve",
                "run.v3",
                "--addr",
                "0.0.0.0:9000",
                "--metrics",
                "127.0.0.1:9001",
                "--shards",
                "2",
                "--queue-depth",
                "4",
                "--max-payload",
                "1048576",
                "--max-inflight",
                "8388608",
                "--commit-every",
                "4194304",
                "--max-connections",
                "64",
                "--slow-ms",
                "250",
                "--flight-recorder",
                "flight-out",
                "--debug-endpoint",
                "--no-wal",
                "--idle-timeout",
                "0",
                "--frame-deadline",
                "5",
            ]))
            .unwrap(),
            Command::Serve {
                dir: "run.v3".into(),
                addr: "0.0.0.0:9000".into(),
                metrics: Some("127.0.0.1:9001".into()),
                shards: 2,
                queue_depth: 4,
                max_payload: 1 << 20,
                max_inflight: 8 << 20,
                commit_threshold: 4 << 20,
                max_connections: 64,
                slow_ms: Some(250),
                flight_recorder: Some("flight-out".into()),
                debug_endpoint: true,
                wal: false,
                idle_timeout_secs: 0,
                frame_deadline_secs: 5,
            }
        );
    }

    #[test]
    fn serve_rejects_bad_inputs() {
        assert!(parse(&strings(&["serve"])).is_err(), "DIR is required");
        assert!(parse(&strings(&["serve", "a", "b"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--shards", "0"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--queue-depth", "0"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--max-connections", "0"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--max-payload", "0"])).is_err());
        // Payload lengths ride in a u32 frame field.
        assert!(parse(&strings(&["serve", "d", "--max-payload", "4294967296"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--frobnicate"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--slow-ms", "abc"])).is_err());
        // /debug/stats rides on the metrics listener; flag alone is an error.
        assert!(parse(&strings(&["serve", "d", "--debug-endpoint"])).is_err());
        // A zero frame deadline would let one stalled client pin a
        // worker forever.
        assert!(parse(&strings(&["serve", "d", "--frame-deadline", "0"])).is_err());
        assert!(parse(&strings(&["serve", "d", "--idle-timeout", "abc"])).is_err());
    }

    #[test]
    fn store_rejects_bad_inputs() {
        assert!(parse(&strings(&["store"])).is_err());
        assert!(parse(&strings(&["store", "frob", "x"])).is_err());
        // put without its required flags, or with a bad shard count.
        assert!(parse(&strings(&[
            "store", "put", "d", "i", "--step", "0", "--width", "8"
        ]))
        .is_err());
        assert!(parse(&strings(&[
            "store", "put", "d", "i", "--name", "v", "--width", "8"
        ]))
        .is_err());
        assert!(parse(&strings(&[
            "store", "put", "d", "i", "--name", "v", "--step", "0"
        ]))
        .is_err());
        assert!(parse(&strings(&[
            "store", "put", "d", "i", "--name", "v", "--step", "0", "--width", "8", "--shards",
            "0",
        ]))
        .is_err());
        // get needs both coordinates; ls exactly one path.
        assert!(parse(&strings(&["store", "get", "d", "o", "--name", "v"])).is_err());
        assert!(parse(&strings(&["store", "ls", "a", "b"])).is_err());
    }

    #[test]
    fn durability_flags_parse_for_decompress() {
        match parse(&strings(&["decompress", "--skip-corrupt", "a", "b"])).unwrap() {
            Command::Decompress {
                skip_corrupt,
                verify,
                ..
            } => {
                assert!(skip_corrupt);
                assert!(verify, "verification stays on by default");
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["decompress", "--no-verify", "a", "b"])).unwrap() {
            Command::Decompress { verify, .. } => assert!(!verify),
            other => panic!("unexpected {other:?}"),
        }
        // --skip-corrupt relies on checksums to find intact chunks.
        assert!(parse(&strings(&[
            "decompress",
            "--skip-corrupt",
            "--no-verify",
            "a",
            "b"
        ]))
        .is_err());
    }

    #[test]
    fn bits_flag_is_parsed_for_analyze() {
        match parse(&strings(&["analyze", "--width", "8", "--bits", "x"])).unwrap() {
            Command::Analyze { bits, .. } => assert!(bits),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stream_flag_is_parsed_for_compress() {
        match parse(&strings(&[
            "compress", "--width", "8", "--stream", "a", "b",
        ]))
        .unwrap()
        {
            Command::Compress { stream, .. } => assert!(stream),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["compress", "--width", "8", "a", "b"])).unwrap() {
            Command::Compress { stream, .. } => assert!(!stream),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_flag_variants_parse() {
        match parse(&strings(&["compress", "--width", "8", "--stats", "a", "b"])).unwrap() {
            Command::Compress { stats, .. } => assert_eq!(stats, Some(StatsFormat::Table)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&[
            "compress",
            "--width",
            "8",
            "--stats=json",
            "a",
            "b",
        ]))
        .unwrap()
        {
            Command::Compress { stats, .. } => assert_eq!(stats, Some(StatsFormat::Json)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["decompress", "--stats=table", "a", "b"])).unwrap() {
            Command::Decompress { stats, .. } => assert_eq!(stats, Some(StatsFormat::Table)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&strings(&[
            "compress",
            "--width",
            "8",
            "--stats=xml",
            "a",
            "b"
        ]))
        .is_err());
    }

    #[test]
    fn kernels_flag_variants_parse() {
        match parse(&strings(&[
            "compress",
            "--width",
            "8",
            "--kernels=scalar",
            "a",
            "b",
        ]))
        .unwrap()
        {
            Command::Compress { kernels, .. } => {
                assert_eq!(kernels, Some(KernelSelection::Scalar))
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["decompress", "--kernels=auto", "a", "b"])).unwrap() {
            Command::Decompress { kernels, .. } => assert_eq!(kernels, Some(KernelSelection::Auto)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["decompress", "a", "b"])).unwrap() {
            Command::Decompress { kernels, .. } => assert_eq!(kernels, None),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&strings(&[
            "compress",
            "--width",
            "8",
            "--kernels=sse9",
            "a",
            "b"
        ]))
        .is_err());
    }

    #[test]
    fn trace_flag_takes_a_path() {
        match parse(&strings(&[
            "compress", "--width", "8", "--trace", "t.json", "a", "b",
        ]))
        .unwrap()
        {
            Command::Compress { trace, .. } => assert_eq!(trace, Some("t.json".into())),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&strings(&["decompress", "--trace", "t.json", "a", "b"])).unwrap() {
            Command::Decompress { trace, .. } => assert_eq!(trace, Some("t.json".into())),
            other => panic!("unexpected {other:?}"),
        }
        // A dangling --trace must not silently eat a path operand count.
        assert!(parse(&strings(&["decompress", "a", "b", "--trace"])).is_err());
    }

    #[test]
    fn short_aliases_work() {
        assert!(matches!(
            parse(&strings(&["c", "-w", "8", "a", "b"])).unwrap(),
            Command::Compress { .. }
        ));
        assert!(matches!(
            parse(&strings(&["d", "a", "b"])).unwrap(),
            Command::Decompress { .. }
        ));
    }
}
