//! Table X — ISOBAR-Sp versus the floating-point compressors FPC and
//! fpzip.
//!
//! The paper's nine double-precision rows (GTS ×4, XGC ×2, FLASH ×3)
//! plus the column means. ISOBAR runs with the speed preference; FPC
//! and the fpzip-class codec run on the same raw little-endian f64/i64
//! streams.

use isobar::Preference;
use isobar_bench::*;
use isobar_datasets::catalog;
use isobar_float_codecs::{Dims, Fpc, FpzipLike};

const DATASETS: [&str; 9] = [
    "gts_chkp_zeon",
    "gts_chkp_zion",
    "gts_phi_l",
    "gts_phi_nl",
    "xgc_igid",
    "xgc_iphase",
    "flash_gamc",
    "flash_velx",
    "flash_vely",
];

fn main() {
    banner("Table X: ISOBAR-Sp vs FPC vs fpzip");
    println!(
        "{:<15} | {:>6} {:>8} {:>8} | {:>6} {:>8} {:>8} | {:>6} {:>8} {:>8}",
        "", "ISOBAR", "", "", "FPC", "", "", "fpzip", "", ""
    );
    println!(
        "{:<15} | {:>6} {:>8} {:>8} | {:>6} {:>8} {:>8} | {:>6} {:>8} {:>8}",
        "Dataset", "CR", "TPc", "TPd", "CR", "TPc", "TPd", "CR", "TPc", "TPd"
    );

    let mut sums = [[0.0f64; 3]; 3];
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let n = ds.element_count();

        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Speed);

        let fpc = Fpc::default();
        let (fpc_packed, fpc_secs) = time(|| fpc.compress(&ds.bytes));
        let (fpc_out, fpc_dsecs) = time(|| fpc.decompress(&fpc_packed).expect("fpc stream"));
        assert_eq!(fpc_out, ds.bytes);

        let fpz = FpzipLike;
        let (fpz_packed, fpz_secs) = time(|| {
            fpz.compress_f64(&ds.bytes, Dims::linear(n))
                .expect("aligned")
        });
        let (fpz_out, fpz_dsecs) = time(|| fpz.decompress(&fpz_packed).expect("fpzip stream"));
        assert_eq!(fpz_out, ds.bytes);

        let rows = [
            [isobar.ratio, isobar.comp_mbps, isobar.decomp_mbps],
            [
                ds.bytes.len() as f64 / fpc_packed.len() as f64,
                mbps(ds.bytes.len(), fpc_secs),
                mbps(ds.bytes.len(), fpc_dsecs),
            ],
            [
                ds.bytes.len() as f64 / fpz_packed.len() as f64,
                mbps(ds.bytes.len(), fpz_secs),
                mbps(ds.bytes.len(), fpz_dsecs),
            ],
        ];
        for (sum, row) in sums.iter_mut().zip(rows) {
            for (s, v) in sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        println!(
            "{:<15} | {:>6.3} {:>8.2} {:>8.2} | {:>6.3} {:>8.2} {:>8.2} | {:>6.3} {:>8.2} {:>8.2}",
            name,
            rows[0][0],
            rows[0][1],
            rows[0][2],
            rows[1][0],
            rows[1][1],
            rows[1][2],
            rows[2][0],
            rows[2][1],
            rows[2][2],
        );
    }
    let k = DATASETS.len() as f64;
    println!(
        "{:<15} | {:>6.3} {:>8.2} {:>8.2} | {:>6.3} {:>8.2} {:>8.2} | {:>6.3} {:>8.2} {:>8.2}",
        "mean",
        sums[0][0] / k,
        sums[0][1] / k,
        sums[0][2] / k,
        sums[1][0] / k,
        sums[1][1] / k,
        sums[1][2] / k,
        sums[2][0] / k,
        sums[2][1] / k,
        sums[2][2] / k,
    );
    println!();
    println!("paper means: ISOBAR CR 1.476 / TPc 185.8 / TPd 735.7; FPC 1.276 / 47.3 / 47.2;");
    println!("fpzip 1.469 / 35.8 / 29.6 — the shape to check: ISOBAR leads mean CR and both");
    println!("throughputs; FPC is faster than fpzip but compresses less.");
}
