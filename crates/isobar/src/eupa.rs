//! EUPA-selector: End User's Preference Adaptive selection of solver
//! and linearization (§II.C).
//!
//! The selector draws random sample blocks from the input, runs every
//! {solver} × {linearization} combination through the preconditioning
//! pipeline on those samples, measures compression ratio and
//! throughput, and picks the combination that best serves the end
//! user's preference: best ratio (archival) or best speed (in-situ),
//! optionally with a minimum-ratio floor.

use crate::analyzer::ColumnSelection;
use crate::partitioner::partition;
use isobar_codecs::{codec_for, CodecId, CompressionLevel};
use isobar_linearize::Linearization;
use isobar_telemetry::{Counter, Recorder, Stage, StageTimer};
use isobar_trace as trace;
use isobar_trace::TraceTag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The end user's performance preference (paper: "throughput or ratio").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Preference {
    /// Maximize compression ratio (the paper's ISOBAR-CR).
    Ratio,
    /// Maximize compression throughput (the paper's ISOBAR-Sp).
    Speed,
    /// Fastest combination whose sample ratio is at least this floor;
    /// falls back to the best ratio when none qualifies.
    SpeedWithRatioFloor(f64),
}

impl Preference {
    /// Metadata byte for the container header.
    pub fn to_u8(self) -> u8 {
        match self {
            Preference::Ratio => 0,
            Preference::Speed => 1,
            Preference::SpeedWithRatioFloor(_) => 2,
        }
    }
}

/// Measured performance of one solver × linearization combination on
/// the sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleResult {
    /// Solver tried.
    pub codec: CodecId,
    /// Linearization tried.
    pub linearization: Linearization,
    /// Sample compression ratio (original / preconditioned output).
    pub ratio: f64,
    /// Sample compression throughput in MB/s.
    pub throughput_mbps: f64,
}

/// The selector's decision plus the evidence it was based on.
#[derive(Debug, Clone)]
pub struct EupaDecision {
    /// Chosen solver.
    pub codec: CodecId,
    /// Chosen linearization for the compressible columns.
    pub linearization: Linearization,
    /// All sample measurements, for reporting and ablation.
    pub samples: Vec<SampleResult>,
}

/// Sample-based solver/linearization selector.
#[derive(Debug, Clone, Copy)]
pub struct EupaSelector {
    /// Elements per sample block.
    pub sample_elements: usize,
    /// Number of random sample blocks.
    pub sample_blocks: usize,
    /// Solver effort level used both for sampling and compression.
    pub level: CompressionLevel,
    /// RNG seed for reproducible block placement.
    pub seed: u64,
}

impl Default for EupaSelector {
    fn default() -> Self {
        EupaSelector {
            sample_elements: 16 * 1024,
            sample_blocks: 4,
            level: CompressionLevel::Default,
            seed: 0x0150_BA12,
        }
    }
}

impl EupaSelector {
    /// Draw the sample bytes: `sample_blocks` random contiguous runs of
    /// `sample_elements` elements (deterministic in the seed).
    ///
    /// The total sample is capped at 1/16 of the input so that trial
    /// compression of 4 combinations costs at most ~25% of one real
    /// pass even on small inputs; tiny inputs still sample at least a
    /// statistics-worthy block.
    fn sample(&self, data: &[u8], width: usize) -> Vec<u8> {
        let n = data.len() / width;
        let budget = (n / (16 * self.sample_blocks.max(1))).max(512);
        let per_block = self.sample_elements.min(budget).min(n);
        if n == 0 || per_block == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.sample_blocks * per_block * width);
        for _ in 0..self.sample_blocks {
            let start = rng.gen_range(0..=n - per_block);
            out.extend_from_slice(&data[start * width..(start + per_block) * width]);
        }
        out
    }

    /// Evaluate all combinations on the sample and decide.
    ///
    /// `selection` is the analyzer's verdict for this dataset (the
    /// sample inherits it — byte-column statistics are position
    /// independent). For undetermined datasets pass an all-compressible
    /// selection so the whole sample is routed through the solver.
    ///
    /// # Example
    ///
    /// ```
    /// use isobar::{Analyzer, EupaSelector, Preference};
    ///
    /// // 8-byte elements: a predictable top half, a noisy bottom half.
    /// let data: Vec<u8> = (0..50_000u64)
    ///     .flat_map(|i| ((i / 50) << 32 | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes())
    ///     .collect();
    ///
    /// let selection = Analyzer::default().analyze(&data, 8)?;
    /// let decision = EupaSelector::default().select(&data, 8, &selection, Preference::Speed);
    /// // All four solver × linearization combinations were measured...
    /// assert_eq!(decision.samples.len(), 4);
    /// // ...and the winner is one of them.
    /// assert!(decision.samples.iter().any(|s| {
    ///     s.codec == decision.codec && s.linearization == decision.linearization
    /// }));
    /// # Ok::<(), isobar::IsobarError>(())
    /// ```
    pub fn select(
        &self,
        data: &[u8],
        width: usize,
        selection: &ColumnSelection,
        preference: Preference,
    ) -> EupaDecision {
        self.select_recorded(data, width, selection, preference, &mut Recorder::new())
    }

    /// [`EupaSelector::select`], additionally recording each trial
    /// compression (combination, wall time) and the final decision.
    pub fn select_recorded(
        &self,
        data: &[u8],
        width: usize,
        selection: &ColumnSelection,
        preference: Preference,
        recorder: &mut Recorder,
    ) -> EupaDecision {
        let stage = StageTimer::start(Stage::EupaSelect);
        let select_span = trace::span(TraceTag::EupaSelect, trace::NO_CHUNK);
        recorder.incr(Counter::EupaRuns);
        let sample = self.sample(data, width);
        let mut samples = Vec::with_capacity(4);
        for (codec_idx, codec_id) in [CodecId::Deflate, CodecId::Bzip2Like]
            .into_iter()
            .enumerate()
        {
            let codec = codec_for(codec_id, self.level);
            for lin in Linearization::ALL {
                let start = Instant::now();
                let parts = partition(&sample, width, selection, lin);
                let compressed = codec.compress(&parts.compressible);
                let elapsed = start.elapsed();
                recorder.record_eupa_trial(codec_idx, lin as usize, elapsed.as_nanos() as u64);
                let elapsed = elapsed.as_secs_f64();
                let out_len = compressed.len() + parts.incompressible.len();
                let ratio = if out_len == 0 {
                    1.0
                } else {
                    sample.len() as f64 / out_len as f64
                };
                let throughput_mbps = crate::pipeline::throughput_mbps(sample.len(), elapsed);
                // One trace event per sampled codec × linearization,
                // carrying the measured evidence; the `chunk` field
                // holds the combo index (codec_idx * 2 + lin_idx).
                trace::instant_args(
                    TraceTag::EupaTrial,
                    (codec_idx * 2 + lin as usize) as u32,
                    ratio,
                    throughput_mbps,
                );
                samples.push(SampleResult {
                    codec: codec_id,
                    linearization: lin,
                    ratio,
                    throughput_mbps,
                });
            }
        }
        let best = choose(&samples, preference);
        let codec_idx = match best.codec {
            CodecId::Deflate => 0,
            CodecId::Bzip2Like => 1,
        };
        recorder.record_eupa_selected(codec_idx, best.linearization as usize);
        trace::instant_args(
            TraceTag::EupaSelected,
            (codec_idx * 2 + best.linearization as usize) as u32,
            best.ratio,
            best.throughput_mbps,
        );
        drop(select_span);
        stage.finish(recorder);
        EupaDecision {
            codec: best.codec,
            linearization: best.linearization,
            samples,
        }
    }
}

fn choose(samples: &[SampleResult], preference: Preference) -> SampleResult {
    debug_assert!(!samples.is_empty());
    // Exact ratio ties are common — with a single compressible column,
    // row and column linearization emit byte-identical streams — and
    // breaking them with throughput measured on a sub-millisecond
    // sample made the decision (and therefore the container bytes)
    // depend on scheduler noise: a serial and a parallel run of the
    // same input could disagree. Ties fall through to `max_by`, which
    // keeps the *last* tied combination in enumeration order — column
    // linearization over row, the layout the partitioner produces
    // natively.
    let by_ratio = |a: &&SampleResult, b: &&SampleResult| a.ratio.partial_cmp(&b.ratio).unwrap();
    let by_speed = |a: &&SampleResult, b: &&SampleResult| {
        a.throughput_mbps
            .partial_cmp(&b.throughput_mbps)
            .unwrap()
            .then(a.ratio.partial_cmp(&b.ratio).unwrap())
    };
    match preference {
        Preference::Ratio => *samples.iter().max_by(by_ratio).unwrap(),
        Preference::Speed => *samples.iter().max_by(by_speed).unwrap(),
        Preference::SpeedWithRatioFloor(floor) => samples
            .iter()
            .filter(|s| s.ratio >= floor)
            .max_by(by_speed)
            .copied()
            .unwrap_or_else(|| *samples.iter().max_by(by_ratio).unwrap()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;

    fn gts_like(n: usize) -> Vec<u8> {
        // The catalog's GTS generator: 6 noise bytes, 2 predictable.
        isobar_datasets::catalog::spec("gts_phi_l")
            .expect("catalog entry")
            .generate(n, 7)
            .bytes
    }

    #[test]
    fn speed_preference_picks_fastest_measured_combination() {
        // The selector's contract: under a speed preference the chosen
        // combination is the one with the highest measured sample
        // throughput. (Which solver that is depends on build flags and
        // hardware; the paper-shape claim "zlib wins on speed" is
        // checked by the release-mode bench harness, not here.)
        let data = gts_like(100_000);
        let sel = Analyzer::default().analyze(&data, 8).unwrap();
        let decision = EupaSelector::default().select(&data, 8, &sel, Preference::Speed);
        assert_eq!(decision.samples.len(), 4);
        let best = decision
            .samples
            .iter()
            .map(|s| s.throughput_mbps)
            .fold(f64::MIN, f64::max);
        let chosen = decision
            .samples
            .iter()
            .find(|s| s.codec == decision.codec && s.linearization == decision.linearization)
            .unwrap();
        assert!((chosen.throughput_mbps - best).abs() < 1e-12);
    }

    #[test]
    fn ratio_preference_picks_best_measured_ratio() {
        let data = gts_like(100_000);
        let sel = Analyzer::default().analyze(&data, 8).unwrap();
        let decision = EupaSelector::default().select(&data, 8, &sel, Preference::Ratio);
        let best = decision
            .samples
            .iter()
            .map(|s| s.ratio)
            .fold(f64::MIN, f64::max);
        let chosen = decision
            .samples
            .iter()
            .find(|s| s.codec == decision.codec && s.linearization == decision.linearization)
            .unwrap();
        assert!((chosen.ratio - best).abs() < 1e-12);
    }

    #[test]
    fn ratio_floor_falls_back_to_best_ratio() {
        // An absurd floor (CR ≥ 1000) disqualifies everything; the
        // selector must then behave like Preference::Ratio.
        let data = gts_like(50_000);
        let sel = Analyzer::default().analyze(&data, 8).unwrap();
        let eupa = EupaSelector::default();
        let floored = eupa.select(&data, 8, &sel, Preference::SpeedWithRatioFloor(1000.0));
        let ratio = eupa.select(&data, 8, &sel, Preference::Ratio);
        assert_eq!(floored.codec, ratio.codec);
        assert_eq!(floored.linearization, ratio.linearization);
    }

    #[test]
    fn selection_is_deterministic_in_the_seed() {
        let data = gts_like(50_000);
        let sel = Analyzer::default().analyze(&data, 8).unwrap();
        let eupa = EupaSelector::default();
        let a = eupa.select(&data, 8, &sel, Preference::Ratio);
        let b = eupa.select(&data, 8, &sel, Preference::Ratio);
        assert_eq!(a.codec, b.codec);
        assert_eq!(a.linearization, b.linearization);
        // Ratios are measured on identical samples, so identical too.
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.ratio, y.ratio);
        }
    }

    #[test]
    fn tiny_inputs_are_handled() {
        let data = gts_like(10);
        let sel = Analyzer::default().analyze(&data, 8).unwrap();
        for pref in [Preference::Ratio, Preference::Speed] {
            let d = EupaSelector::default().select(&data, 8, &sel, pref);
            assert_eq!(d.samples.len(), 4);
        }
    }

    #[test]
    fn preference_metadata_bytes() {
        assert_eq!(Preference::Ratio.to_u8(), 0);
        assert_eq!(Preference::Speed.to_u8(), 1);
        assert_eq!(Preference::SpeedWithRatioFloor(1.1).to_u8(), 2);
    }
}
