//! Command implementations for the `isobar` CLI.

use crate::args::{Command, CompressOptions, StatsFormat};
use isobar::container::Header;
use isobar::salvage::{ChunkHealth, FsckReport};
use isobar::{Analyzer, IsobarCompressor, IsobarOptions, Recorder, TelemetrySnapshot};
use isobar_store::{EntryHealth, StoreFsckReport};
use std::fs;
use std::path::Path;

/// Exit code `fsck` returns when it finds damage (0 = clean or
/// legacy-unverifiable, distinct from 2 = processing error).
pub const EXIT_DAMAGE: u8 = 3;

/// Run a parsed command; returns the process exit code.
pub fn run(cmd: Command) -> Result<u8, String> {
    match cmd {
        Command::Compress {
            input,
            output,
            width,
            options,
            stream: false,
            quiet,
            stats,
            trace,
            kernels,
        } => traced(trace.as_deref(), || {
            apply_kernels(kernels);
            compress(&input, &output, width, options, quiet, stats)
        })
        .map(|()| 0),
        Command::Compress {
            input,
            output,
            width,
            options,
            stream: true,
            quiet,
            stats,
            trace,
            kernels,
        } => traced(trace.as_deref(), || {
            apply_kernels(kernels);
            compress_stream(&input, &output, width, options, quiet, stats)
        })
        .map(|()| 0),
        Command::Decompress {
            input,
            output,
            stream: false,
            skip_corrupt,
            verify,
            stats,
            trace,
            kernels,
        } => traced(trace.as_deref(), || {
            apply_kernels(kernels);
            decompress(&input, &output, skip_corrupt, verify, stats)
        })
        .map(|()| 0),
        Command::Decompress {
            input,
            output,
            stream: true,
            skip_corrupt,
            verify,
            stats,
            trace,
            kernels,
        } => traced(trace.as_deref(), || {
            apply_kernels(kernels);
            decompress_stream(&input, &output, skip_corrupt, verify, stats)
        })
        .map(|()| 0),
        Command::Analyze {
            input,
            width,
            tau,
            bits,
        } => analyze(&input, width, tau, bits).map(|()| 0),
        Command::Info { input } => info(&input).map(|()| 0),
        Command::Fsck { input } => fsck(&input),
        Command::Salvage { input, output } => salvage(&input, &output).map(|()| 0),
        Command::StorePut {
            dir,
            input,
            name,
            step,
            width,
            shards,
            queue_depth,
        } => store_put(&dir, &input, &name, step, width, shards, queue_depth).map(|()| 0),
        Command::StoreGet {
            dir,
            output,
            name,
            step,
            verify,
        } => store_get(&dir, &output, &name, step, verify).map(|()| 0),
        Command::StoreLs { dir, verify } => store_ls(&dir, verify).map(|()| 0),
        Command::StoreCompact { dir, shards } => store_compact(&dir, shards).map(|()| 0),
        Command::StoreMigrate { input, dir, shards } => {
            store_migrate(&input, &dir, shards).map(|()| 0)
        }
        Command::Serve {
            dir,
            addr,
            metrics,
            shards,
            queue_depth,
            max_payload,
            max_inflight,
            commit_threshold,
            max_connections,
            slow_ms,
            flight_recorder,
            debug_endpoint,
            wal,
            idle_timeout_secs,
            frame_deadline_secs,
        } => serve(
            &dir,
            &addr,
            metrics.as_deref(),
            isobar_server::ServeOptions {
                shards,
                queue_depth,
                max_payload,
                max_inflight_bytes: max_inflight,
                commit_threshold,
                max_connections,
                slow_ms,
                flight_recorder,
                debug_endpoint,
                wal,
                idle_timeout: (idle_timeout_secs != 0)
                    .then(|| std::time::Duration::from_secs(idle_timeout_secs)),
                frame_deadline: std::time::Duration::from_secs(frame_deadline_secs),
                isobar: IsobarOptions::default(),
            },
        )
        .map(|()| 0),
    }
}

/// Run the checkpoint daemon until SIGINT/SIGTERM, then drain
/// connections and commit the store through the two-phase protocol.
fn serve(
    dir: &Path,
    addr: &str,
    metrics: Option<&str>,
    options: isobar_server::ServeOptions,
) -> Result<(), String> {
    isobar_server::signals::install_shutdown_signals();
    let flight_on = options.flight_recorder.is_some();
    if flight_on {
        isobar_server::signals::install_usr1_signal();
    }
    let server = isobar_server::serve(dir, addr, metrics, options)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    eprintln!(
        "serving {} on {}{}",
        dir.display(),
        server.local_addr(),
        match server.metrics_addr() {
            Some(addr) => format!(" (metrics on http://{addr}/metrics)"),
            None => String::new(),
        },
    );
    // The signal handler only sets a flag (the async-signal-safe
    // minimum); this thread turns it into the actual drain (and, for
    // SIGUSR1, the flight-recorder dump).
    let handle = server.handle();
    while !isobar_server::signals::shutdown_requested() {
        if flight_on && isobar_server::signals::take_usr1() {
            match handle.dump_flight("sigusr1") {
                Some(path) => eprintln!("flight recorder dumped to {}", path.display()),
                None => eprintln!("flight recorder dump failed"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining connections");
    server.shutdown();
    let report = server
        .join()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    eprintln!(
        "served {} requests ({} puts, {} gets, {} busy, {} bad frames); \
         {} commit{}{}",
        report.requests,
        report.puts,
        report.gets,
        report.busy_rejected,
        report.protocol_errors,
        report.commits,
        if report.commits == 1 { "" } else { "s" },
        match report.generation {
            Some(generation) => format!("; store at generation {generation}"),
            None => String::new(),
        },
    );
    if report.wal_replayed > 0 {
        eprintln!(
            "recovered {} journaled put{} from an earlier crash",
            report.wal_replayed,
            if report.wal_replayed == 1 { "" } else { "s" },
        );
    }
    if report.total_request_nanos > 0 {
        eprintln!(
            "request time {:.3} s total; lock-wait share {:.1}%{}",
            report.total_request_nanos as f64 / 1e9,
            report.lock_wait_share() * 100.0,
            match report.slow_requests {
                0 => String::new(),
                n => format!("; {n} slow, {} flight dumps", report.flight_dumps),
            },
        );
    }
    Ok(())
}

/// Pin the process-wide SIMD kernel dispatch before any pipeline is
/// constructed. `None` keeps the default resolution (the
/// `ISOBAR_KERNELS` environment variable, then CPU detection).
fn apply_kernels(kernels: Option<isobar::KernelSelection>) {
    if let Some(selection) = kernels {
        isobar::set_kernels(selection);
    }
}

/// The three on-disk artifact kinds, told apart by their magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileKind {
    /// Batch container (`ISBR`).
    Container,
    /// Streamed framing (`ISBS`).
    Stream,
    /// Checkpoint store (`ISST`).
    Store,
}

fn file_kind(data: &[u8]) -> Option<FileKind> {
    match data.get(..4)? {
        b"ISBR" => Some(FileKind::Container),
        b"ISBS" => Some(FileKind::Stream),
        b"ISST" => Some(FileKind::Store),
        _ => None,
    }
}

fn read(path: &Path) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    fs::write(path, bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Print a telemetry snapshot in the requested format. JSON and
/// Prometheus exposition go to stdout (they are the machine-readable
/// artifacts); the table goes to stderr alongside the human summary.
fn print_stats(snapshot: &TelemetrySnapshot, format: StatsFormat) {
    if !isobar::telemetry::ENABLED {
        eprintln!("note: this binary was built without telemetry; all stats are zero");
    }
    match format {
        StatsFormat::Json => println!("{}", snapshot.to_json()),
        StatsFormat::Table => eprintln!("{}", snapshot.render_table()),
        StatsFormat::Prometheus => print!("{}", snapshot.to_prometheus()),
    }
}

/// Run `body` with tracing active, then drain every thread's span
/// buffer and write the run's Chrome trace-event timeline to `path`.
/// With no `--trace` flag this is a plain passthrough. The trace file
/// is still written when `body` fails: a timeline of a failed run is
/// exactly what a debugging session wants.
fn traced(path: Option<&Path>, body: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    let Some(path) = path else {
        return body();
    };
    if !isobar::trace::ENABLED {
        eprintln!("note: this binary was built without tracing; the trace will be empty");
    }
    isobar::trace::reset();
    isobar::trace::set_active(true);
    let result = body();
    isobar::trace::set_active(false);
    let trace = isobar::trace::drain();
    write(path, trace.to_chrome_json().as_bytes())?;
    if trace.dropped_count() > 0 {
        eprintln!(
            "trace: ring buffers overflowed; {} oldest events dropped",
            trace.dropped_count()
        );
    }
    eprintln!(
        "trace: {} events -> {}",
        trace.event_count(),
        path.display()
    );
    result
}

fn compress(
    input: &Path,
    output: &Path,
    width: usize,
    options: CompressOptions,
    quiet: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    let data = read(input)?;
    let isobar = IsobarCompressor::new(options_from(&options));
    let (packed, report) = isobar
        .compress_with_report(&data, width)
        .map_err(|e| e.to_string())?;
    write(output, &packed)?;
    if let Some(format) = stats {
        print_stats(&report.telemetry, format);
    }
    if !quiet {
        eprintln!(
            "{} -> {}: {} -> {} bytes (CR {:.3}, {:.1} MB/s)",
            input.display(),
            output.display(),
            data.len(),
            packed.len(),
            report.ratio(),
            report.throughput_mbps(),
        );
        eprintln!(
            "solver {} + {} linearization; {:.1}% of bytes classified noise; improvable: {}; kernels: {}",
            report.codec.name(),
            report.linearization,
            report.htc_pct(),
            report.improvable(),
            isobar::active_kernel_tier(),
        );
    }
    Ok(())
}

fn decompress(
    input: &Path,
    output: &Path,
    skip_corrupt: bool,
    verify: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    let packed = read(input)?;
    let mut recorder = Recorder::new();
    let restored = if skip_corrupt {
        let (restored, report) =
            isobar::salvage::salvage_decompress_recorded(&packed, &mut recorder)
                .map_err(|e| format!("{}: {e}", input.display()))?;
        if !report.is_complete() {
            eprintln!(
                "{}: {} chunks recovered, {} lost; {} bytes zero-filled across {} damaged regions",
                input.display(),
                report.chunks_recovered,
                report.chunks_lost,
                report.bytes_lost,
                report.damage_regions,
            );
        }
        restored
    } else {
        let mut scratch = isobar::PipelineScratch::new();
        IsobarCompressor::new(IsobarOptions {
            verify,
            ..Default::default()
        })
        .decompress_recorded(&packed, &mut scratch, &mut recorder)
        .map_err(|e| format!("{}: {e}", input.display()))?
    };
    write(output, &restored)?;
    if let Some(format) = stats {
        print_stats(&recorder.snapshot(), format);
    }
    Ok(())
}

fn options_from(options: &CompressOptions) -> IsobarOptions {
    IsobarOptions {
        preference: options.preference,
        level: options.level,
        tau: options.tau,
        chunk_elements: options.chunk_elements,
        codec_override: options.codec,
        linearization_override: options.linearization,
        parallel: options.parallel,
        ..Default::default()
    }
}

/// Constant-memory compression: one chunk in flight, streamed framing.
fn compress_stream(
    input: &Path,
    output: &Path,
    width: usize,
    options: CompressOptions,
    quiet: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    use std::io::{BufReader, BufWriter, Read, Write};
    let src = fs::File::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
    let dst = fs::File::create(output).map_err(|e| format!("{}: {e}", output.display()))?;
    let mut writer = isobar::IsobarWriter::new(BufWriter::new(dst), width, options_from(&options))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(src);
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = reader.read(&mut buf).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        writer.write_all(&buf[..n]).map_err(|e| e.to_string())?;
    }
    let total_in = writer.bytes_written();
    let (_, telemetry) = writer.finish_with_telemetry().map_err(|e| e.to_string())?;
    if let Some(format) = stats {
        print_stats(&telemetry, format);
    }
    if !quiet {
        let out_len = fs::metadata(output).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "{} -> {} (streamed): {} -> {} bytes (CR {:.3})",
            input.display(),
            output.display(),
            total_in,
            out_len,
            total_in as f64 / out_len.max(1) as f64,
        );
    }
    Ok(())
}

/// Constant-memory decompression of the streamed framing.
///
/// `--skip-corrupt` switches to the whole-file salvage walker: resync
/// needs to look arbitrarily far ahead for the next checksum anchor,
/// which the constant-memory reader cannot do.
fn decompress_stream(
    input: &Path,
    output: &Path,
    skip_corrupt: bool,
    verify: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    use std::io::{BufReader, BufWriter, Read, Write};
    if skip_corrupt {
        let packed = read(input)?;
        let mut recorder = Recorder::new();
        let (restored, report) = isobar::salvage::salvage_stream_recorded(&packed, &mut recorder)
            .map_err(|e| format!("{}: {e}", input.display()))?;
        if !report.is_complete() {
            eprintln!(
                "{}: {} frames recovered, {} lost across {} damaged regions \
                 (streams carry no chunk geometry, so lost frames are absent \
                 from the output rather than zero-filled)",
                input.display(),
                report.chunks_recovered,
                report.chunks_lost,
                report.damage_regions,
            );
        }
        write(output, &restored)?;
        if let Some(format) = stats {
            print_stats(&recorder.snapshot(), format);
        }
        return Ok(());
    }
    let src = fs::File::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
    let dst = fs::File::create(output).map_err(|e| format!("{}: {e}", output.display()))?;
    let mut reader = isobar::IsobarReader::with_verify(BufReader::new(src), verify)
        .map_err(|e| format!("{}: {e}", input.display()))?;
    let mut writer = BufWriter::new(dst);
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = reader
            .read(&mut buf)
            .map_err(|e| format!("{}: {e}", input.display()))?;
        if n == 0 {
            break;
        }
        writer.write_all(&buf[..n]).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())?;
    if let Some(format) = stats {
        print_stats(&reader.telemetry(), format);
    }
    Ok(())
}

fn analyze(input: &Path, width: usize, tau: f64, bits: bool) -> Result<(), String> {
    let data = read(input)?;
    let (selection, elapsed) = Analyzer::with_tau(tau)
        .analyze_timed(&data, width)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} bytes, {} elements of width {width}",
        input.display(),
        data.len(),
        data.len() / width
    );
    println!(
        "analysis: {:.1} MB/s; tolerance factor τ = {tau}",
        isobar::throughput_mbps(data.len(), elapsed.as_secs_f64())
    );
    for (col, &compressible) in selection.bits().iter().enumerate() {
        println!(
            "  byte-column {col}: {}",
            if compressible {
                "compressible (signal)"
            } else {
                "incompressible (noise)"
            }
        );
    }
    println!(
        "hard-to-compress bytes: {:.1}%; improvable: {}",
        selection.htc_pct(),
        selection.is_improvable()
    );
    if bits {
        // Fig.-1-style per-bit-position profile (big-endian bit order).
        let freqs = isobar_datasets::bitfreq::bit_frequencies(&data, width);
        println!("bit profile (bit 1 = MSB of the element):");
        for (i, chunk) in freqs.chunks(16).enumerate() {
            let row: Vec<String> = chunk.iter().map(|p| format!("{p:.3}")).collect();
            println!(
                "  bits {:>2}-{:>2}: {}",
                i * 16 + 1,
                i * 16 + chunk.len(),
                row.join(" ")
            );
        }
        let noisy = isobar_datasets::bitfreq::noise_bit_fraction(&data, width, 0.02);
        println!(
            "coin-flip bits (within 0.02 of p = 0.5): {:.1}%",
            noisy * 100.0
        );
    }
    Ok(())
}

fn info(input: &Path) -> Result<(), String> {
    let packed = read(input)?;
    match file_kind(&packed) {
        Some(FileKind::Container) | None => {} // fall through to Header::read
        Some(FileKind::Stream) => {
            println!("{}: ISOBAR stream v{}", input.display(), packed[4]);
            println!("  element width:   {} bytes", packed[5]);
            println!("  file size:       {} bytes", packed.len());
            println!("  (streams carry no total length; run `isobar fsck` to walk the frames)");
            return Ok(());
        }
        Some(FileKind::Store) => {
            println!(
                "{}: ISOBAR checkpoint store v{}",
                input.display(),
                packed[4]
            );
            println!("  file size:       {} bytes", packed.len());
            println!("  (run `isobar fsck` to walk and verify the index)");
            return Ok(());
        }
    }
    let header = Header::read(&packed).map_err(|e| e.to_string())?;
    println!("{}: ISOBAR container v{}", input.display(), header.version);
    println!("  element width:   {} bytes", header.width);
    println!("  solver:          {}", header.codec.name());
    println!("  linearization:   {}", header.linearization);
    println!("  chunk size:      {} elements", header.chunk_elements);
    println!("  original size:   {} bytes", header.total_len);
    println!("  container size:  {} bytes", packed.len());
    println!(
        "  overall ratio:   {:.3}",
        header.total_len as f64 / packed.len() as f64
    );
    println!("  checksum:        {:#010x} (Adler-32)", header.checksum);
    Ok(())
}

/// Walk and verify a container, stream, or store without decoding
/// payloads. Returns the process exit code: 0 for a clean (or legacy,
/// unverifiable) file, [`EXIT_DAMAGE`] when damage was found.
fn fsck(input: &Path) -> Result<u8, String> {
    // A directory is a version-3 sharded store; there is no file
    // magic to sniff.
    if input.is_dir() {
        let report =
            isobar_store::fsck_store(input).map_err(|e| format!("{}: {e}", input.display()))?;
        print_store_fsck_report(input, &report);
        return Ok(if report.is_clean() { 0 } else { EXIT_DAMAGE });
    }
    let data = read(input)?;
    match file_kind(&data) {
        Some(FileKind::Container) => {
            let report = isobar::salvage::fsck_container(&data)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            print_fsck_report(input, "container", &report);
            Ok(if report.is_clean() { 0 } else { EXIT_DAMAGE })
        }
        Some(FileKind::Stream) => {
            let report = isobar::salvage::fsck_stream(&data)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            print_fsck_report(input, "stream", &report);
            Ok(if report.is_clean() { 0 } else { EXIT_DAMAGE })
        }
        Some(FileKind::Store) => {
            let report =
                isobar_store::fsck_store(input).map_err(|e| format!("{}: {e}", input.display()))?;
            print_store_fsck_report(input, &report);
            Ok(if report.is_clean() { 0 } else { EXIT_DAMAGE })
        }
        None => Err(format!(
            "{}: not an ISOBAR container, stream, or store (unrecognized magic)",
            input.display()
        )),
    }
}

fn print_fsck_report(input: &Path, kind: &str, report: &FsckReport) {
    println!(
        "{}: ISOBAR {kind} v{}{}",
        input.display(),
        report.version,
        if report.legacy {
            " (legacy: records carry no checksums)"
        } else {
            ""
        }
    );
    for chunk in &report.chunks {
        println!(
            "  chunk @ {:>10}  {:>9} elements  {}",
            chunk.offset,
            chunk.elements,
            match chunk.health {
                ChunkHealth::Verified => "verified",
                ChunkHealth::LegacyUnverifiable => "legacy, unverifiable",
            }
        );
    }
    for gap in &report.damage {
        println!(
            "  damage @ {:>9}  {} bytes unaccounted for",
            gap.offset, gap.len
        );
    }
    if report.missing_chunks > 0 {
        println!("  {} expected chunks missing", report.missing_chunks);
    }
    println!(
        "{}: {}",
        input.display(),
        if report.is_clean() {
            "clean"
        } else {
            "DAMAGED"
        }
    );
}

fn print_store_fsck_report(input: &Path, report: &StoreFsckReport) {
    println!(
        "{}: ISOBAR checkpoint store v{}{}",
        input.display(),
        report.version,
        if report.legacy {
            " (legacy: entries carry no checksums)"
        } else {
            ""
        }
    );
    if report.index_damaged {
        println!("  index DAMAGED (salvage can rebuild it from a record walk)");
    }
    for entry in &report.entries {
        println!(
            "  step {:>6} {:<24} @ {:>10}  {}",
            entry.step,
            entry.name,
            entry.offset,
            match entry.health {
                EntryHealth::Verified => "verified",
                EntryHealth::LegacyUnverifiable => "legacy, unverifiable",
                EntryHealth::Damaged => "DAMAGED",
            }
        );
    }
    if report.superseded_entries > 0 {
        println!(
            "  {} superseded entr{} (reclaim with store compact)",
            report.superseded_entries,
            if report.superseded_entries == 1 {
                "y"
            } else {
                "ies"
            },
        );
    }
    if report.orphan_files > 0 {
        println!(
            "  {} unreferenced segment file{} (crashed-writer droppings; \
             store compact sweeps them)",
            report.orphan_files,
            if report.orphan_files == 1 { "" } else { "s" },
        );
    }
    println!(
        "{}: {}",
        input.display(),
        if report.is_clean() {
            "clean"
        } else {
            "DAMAGED"
        }
    );
}

/// Recover every intact chunk, frame, or record from a damaged file
/// into a fresh, fully valid output.
fn salvage(input: &Path, output: &Path) -> Result<(), String> {
    if input.is_dir() {
        let report = isobar_store::salvage_store(input, output)
            .map_err(|e| format!("{}: {e}", input.display()))?;
        eprintln!(
            "{} -> {}: {} entries recovered, {} lost{}",
            input.display(),
            output.display(),
            report.entries_recovered,
            report.entries_lost,
            if report.index_rebuilt {
                " (manifest unusable; rebuilt from a segment walk)"
            } else {
                ""
            },
        );
        return Ok(());
    }
    let data = read(input)?;
    match file_kind(&data) {
        Some(FileKind::Container) => {
            let (packed, report) = isobar::salvage::salvage_container(&data)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            write(output, &packed)?;
            eprintln!(
                "{} -> {}: {} chunks recovered, {} lost ({} bytes zero-filled)",
                input.display(),
                output.display(),
                report.chunks_recovered,
                report.chunks_lost,
                report.bytes_lost,
            );
            Ok(())
        }
        Some(FileKind::Stream) => {
            let mut recorder = Recorder::new();
            let (restored, report) = isobar::salvage::salvage_stream_recorded(&data, &mut recorder)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            write(output, &restored)?;
            eprintln!(
                "{} -> {}: {} frames recovered, {} lost; output is the recovered \
                 raw data (streams cannot be re-framed without the lost frames)",
                input.display(),
                output.display(),
                report.chunks_recovered,
                report.chunks_lost,
            );
            Ok(())
        }
        Some(FileKind::Store) => {
            let report = isobar_store::salvage_store(input, output)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            eprintln!(
                "{} -> {}: {} entries recovered, {} lost{}",
                input.display(),
                output.display(),
                report.entries_recovered,
                report.entries_lost,
                if report.index_rebuilt {
                    " (index rebuilt from a record walk)"
                } else {
                    ""
                },
            );
            Ok(())
        }
        None => Err(format!(
            "{}: not an ISOBAR container, stream, or store (unrecognized magic)",
            input.display()
        )),
    }
}

/// Compress one raw element array into a sharded store directory —
/// one more generation appended to `dir` (created on first put).
fn store_put(
    dir: &Path,
    input: &Path,
    name: &str,
    step: u32,
    width: usize,
    shards: u16,
    queue_depth: usize,
) -> Result<(), String> {
    use isobar_store::{ShardedOptions, ShardedStoreWriter};
    let data = read(input)?;
    let writer = ShardedStoreWriter::create(
        dir,
        IsobarOptions::default(),
        ShardedOptions {
            shards,
            queue_depth,
        },
    )
    .map_err(|e| format!("{}: {e}", dir.display()))?;
    writer
        .put(step, name, data, width)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    let report = writer
        .close()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    eprintln!(
        "{}: generation {} committed ({} segment{}, {} entr{} total{})",
        dir.display(),
        report.generation,
        report.segments_committed,
        if report.segments_committed == 1 {
            ""
        } else {
            "s"
        },
        report.total_entries,
        if report.total_entries == 1 {
            "y"
        } else {
            "ies"
        },
        if report.superseded_entries > 0 {
            format!(", {} superseded", report.superseded_entries)
        } else {
            String::new()
        },
    );
    Ok(())
}

/// Read one variable out of a store (any version) into a file.
fn store_get(dir: &Path, output: &Path, name: &str, step: u32, verify: bool) -> Result<(), String> {
    let reader = isobar_store::StoreReader::open_with_verify(dir, verify)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    let data = reader
        .get(step, name)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    write(output, &data)?;
    eprintln!(
        "{} -> {}: step {step} '{name}', {} bytes",
        dir.display(),
        output.display(),
        data.len()
    );
    Ok(())
}

/// List a store's generations, segments, and entries.
fn store_ls(dir: &Path, verify: bool) -> Result<(), String> {
    let reader = isobar_store::StoreReader::open_with_verify(dir, verify)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    println!(
        "{}: ISOBAR checkpoint store v{}, generation {}, {} segment{}",
        dir.display(),
        reader.version(),
        reader.generation(),
        reader.segment_count(),
        if reader.segment_count() == 1 { "" } else { "s" },
    );
    let live: std::collections::HashSet<*const isobar_store::IndexEntry> = reader
        .live_entries()
        .into_iter()
        .map(|e| e as *const _)
        .collect();
    for entry in reader.entries() {
        println!(
            "  step {:>6} {:<24} {:>12} raw -> {:>12} stored  {}{}",
            entry.step,
            entry.name,
            entry.raw_len,
            entry.container_len,
            reader
                .segment_file_name(entry)
                .unwrap_or("<unknown segment>"),
            if live.contains(&(entry as *const _)) {
                ""
            } else {
                "  (superseded)"
            },
        );
    }
    let superseded = reader.superseded_count();
    println!(
        "{}: {} entr{} ({} superseded), overall ratio {:.3}",
        dir.display(),
        reader.entries().len(),
        if reader.entries().len() == 1 {
            "y"
        } else {
            "ies"
        },
        superseded,
        reader.overall_ratio(),
    );
    Ok(())
}

/// Rewrite a version-3 store without its superseded entries.
fn store_compact(dir: &Path, shards: Option<u16>) -> Result<(), String> {
    let report =
        isobar_store::compact_store(dir, shards).map_err(|e| format!("{}: {e}", dir.display()))?;
    eprintln!(
        "{}: {} entries kept, {} dropped; {} file{} removed, {} bytes reclaimed",
        dir.display(),
        report.entries_kept,
        report.entries_dropped,
        report.files_removed,
        if report.files_removed == 1 { "" } else { "s" },
        report.bytes_reclaimed,
    );
    Ok(())
}

/// Copy every entry of a version-1/2 single-file store into a fresh
/// version-3 directory, container bytes verbatim (no recompression).
fn store_migrate(input: &Path, dir: &Path, shards: u16) -> Result<(), String> {
    use isobar_store::{ShardedOptions, ShardedStoreWriter};
    let reader =
        isobar_store::StoreReader::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
    if reader.version() >= 3 {
        return Err(format!(
            "{}: already a version-3 store (use store compact to reshape it)",
            input.display()
        ));
    }
    let writer = ShardedStoreWriter::create(
        dir,
        IsobarOptions::default(),
        ShardedOptions {
            shards,
            ..Default::default()
        },
    )
    .map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut migrated = 0usize;
    for entry in reader.entries() {
        let container = reader
            .get_container(entry)
            .map_err(|e| format!("{}: ({}, {}): {e}", input.display(), entry.step, entry.name))?;
        writer
            .put_container(
                entry.step,
                &entry.name,
                entry.width,
                container,
                entry.raw_len,
            )
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        migrated += 1;
    }
    let report = writer
        .close()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    eprintln!(
        "{} -> {}: {} entr{} migrated into generation {} ({} segment{})",
        input.display(),
        dir.display(),
        migrated,
        if migrated == 1 { "y" } else { "ies" },
        report.generation,
        report.segments_committed,
        if report.segments_committed == 1 {
            ""
        } else {
            "s"
        },
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::CompressOptions;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-cli-test-{}-{name}", std::process::id()));
        dir
    }

    #[test]
    fn compress_decompress_files_round_trip() {
        let input = tmp("in.bin");
        let packed = tmp("out.isbr");
        let restored = tmp("restored.bin");

        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(30_000, 1);
        fs::write(&input, &ds.bytes).unwrap();

        compress(
            &input,
            &packed,
            8,
            CompressOptions {
                chunk_elements: 30_000,
                ..Default::default()
            },
            true,
            None,
        )
        .unwrap();
        decompress(&packed, &restored, false, true, None).unwrap();
        assert_eq!(fs::read(&restored).unwrap(), ds.bytes);

        for p in [&input, &packed, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn info_reports_header_fields() {
        let input = tmp("info-in.bin");
        let packed = tmp("info-out.isbr");
        fs::write(&input, vec![7u8; 800]).unwrap();
        compress(&input, &packed, 8, CompressOptions::default(), true, None).unwrap();
        info(&packed).unwrap();
        for p in [&input, &packed] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn stream_mode_round_trips_files() {
        let input = tmp("stream-in.bin");
        let packed = tmp("stream-out.isbs");
        let restored = tmp("stream-restored.bin");

        let ds = isobar_datasets::catalog::spec("flash_velx")
            .unwrap()
            .generate(30_000, 4);
        fs::write(&input, &ds.bytes).unwrap();

        compress_stream(
            &input,
            &packed,
            8,
            CompressOptions {
                chunk_elements: 10_000,
                ..Default::default()
            },
            true,
            None,
        )
        .unwrap();
        decompress_stream(&packed, &restored, false, true, None).unwrap();
        assert_eq!(fs::read(&restored).unwrap(), ds.bytes);

        // The batch decompressor must not accept the stream framing.
        assert!(decompress(&packed, &tmp("never"), false, true, None).is_err());

        for p in [&input, &packed, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn traced_compress_writes_chrome_json() {
        let input = tmp("trace-in.bin");
        let packed = tmp("trace-out.isbr");
        let trace_path = tmp("trace.json");
        fs::write(&input, vec![7u8; 1600]).unwrap();

        traced(Some(trace_path.as_path()), || {
            compress(&input, &packed, 8, CompressOptions::default(), true, None)
        })
        .unwrap();

        let json = fs::read_to_string(&trace_path).unwrap();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        if isobar::trace::ENABLED {
            // The compress pipeline must have left spans behind.
            assert!(json.contains("chunk_compress"), "no spans in {json}");
        }

        for p in [&input, &packed, &trace_path] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn missing_files_produce_errors_not_panics() {
        assert!(read(Path::new("/no/such/isobar/file")).is_err());
        assert!(decompress(
            Path::new("/no/such/file"),
            Path::new("/tmp/x"),
            false,
            true,
            None
        )
        .is_err());
    }

    #[test]
    fn decompress_rejects_non_containers() {
        let input = tmp("garbage.bin");
        fs::write(&input, b"this is not a container").unwrap();
        assert!(decompress(&input, &tmp("never-written"), false, true, None).is_err());
        let _ = fs::remove_file(&input);
    }

    /// Build a 3-chunk container from deterministic bytes, returning
    /// (original data, packed container path, original input path).
    fn three_chunk_container(tag: &str) -> (Vec<u8>, std::path::PathBuf, std::path::PathBuf) {
        let input = tmp(&format!("{tag}-in.bin"));
        let packed = tmp(&format!("{tag}-out.isbr"));
        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(30_000, 1);
        fs::write(&input, &ds.bytes).unwrap();
        compress(
            &input,
            &packed,
            8,
            CompressOptions {
                chunk_elements: 10_000,
                ..Default::default()
            },
            true,
            None,
        )
        .unwrap();
        (ds.bytes, packed, input)
    }

    #[test]
    fn fsck_exit_codes_distinguish_clean_from_damaged() {
        let (_, packed, input) = three_chunk_container("fsck");
        assert_eq!(fsck(&packed).unwrap(), 0, "pristine container is clean");

        // Flip a byte deep inside the last chunk's payload: structure
        // survives, the checksum does not.
        let mut bytes = fs::read(&packed).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        fs::write(&packed, &bytes).unwrap();
        assert_eq!(fsck(&packed).unwrap(), EXIT_DAMAGE);

        // A non-ISOBAR file is a usage error, not damage.
        fs::write(&packed, b"plain text, no magic here").unwrap();
        assert!(fsck(&packed).is_err());

        for p in [&input, &packed] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn salvage_recovers_intact_chunks_bit_exact() {
        let (original, packed, input) = three_chunk_container("salvage");
        let mut bytes = fs::read(&packed).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff; // damage the final chunk only
        fs::write(&packed, &bytes).unwrap();

        let salvaged = tmp("salvage-out.isbr");
        let restored = tmp("salvage-restored.bin");
        salvage(&packed, &salvaged).unwrap();
        // The salvaged container is fully valid: strict decompression
        // must accept it.
        decompress(&salvaged, &restored, false, true, None).unwrap();
        let restored_bytes = fs::read(&restored).unwrap();
        assert_eq!(restored_bytes.len(), original.len());
        // Chunks 0 and 1 (10k elements x 8 bytes each) come back
        // bit-exact; the damaged third chunk is zero-filled.
        assert_eq!(restored_bytes[..160_000], original[..160_000]);
        assert!(restored_bytes[160_000..].iter().all(|&b| b == 0));

        for p in [&input, &packed, &salvaged, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn skip_corrupt_decompress_succeeds_on_damaged_container() {
        let (original, packed, input) = three_chunk_container("skip");
        let mut bytes = fs::read(&packed).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        fs::write(&packed, &bytes).unwrap();

        let restored = tmp("skip-restored.bin");
        // Strict mode refuses; --skip-corrupt recovers what it can.
        assert!(decompress(&packed, &restored, false, true, None).is_err());
        decompress(&packed, &restored, true, true, None).unwrap();
        let restored_bytes = fs::read(&restored).unwrap();
        assert_eq!(restored_bytes.len(), original.len());
        assert_eq!(restored_bytes[..160_000], original[..160_000]);

        for p in [&input, &packed, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn fsck_and_salvage_handle_stores() {
        let store_path = tmp("fsck-store.isst");
        let salvaged = tmp("fsck-store-salvaged.isst");
        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(10_000, 1);
        let mut writer =
            isobar_store::StoreWriter::create(&store_path, IsobarOptions::default()).unwrap();
        writer.put(1, "density", &ds.bytes, 8).unwrap();
        writer.put(2, "density", &ds.bytes, 8).unwrap();
        writer.close().unwrap();

        assert_eq!(fsck(&store_path).unwrap(), 0);
        salvage(&store_path, &salvaged).unwrap();
        assert_eq!(fsck(&salvaged).unwrap(), 0);

        for p in [&store_path, &salvaged] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn store_family_round_trips_a_sharded_directory() {
        let dir = tmp("store-v3");
        let input = tmp("store-v3-in.bin");
        let newer = tmp("store-v3-newer.bin");
        let output = tmp("store-v3-out.bin");
        let _ = fs::remove_dir_all(&dir);
        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(10_000, 1);
        fs::write(&input, &ds.bytes).unwrap();

        store_put(&dir, &input, "density", 0, 8, 2, 2).unwrap();
        store_get(&dir, &output, "density", 0, true).unwrap();
        assert_eq!(fs::read(&output).unwrap(), ds.bytes);
        assert_eq!(fsck(&dir).unwrap(), 0);
        store_ls(&dir, true).unwrap();

        // A second put of the same (step, name) supersedes; compaction
        // reclaims the shadowed version and get still serves the new.
        let ds2 = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(10_000, 2);
        fs::write(&newer, &ds2.bytes).unwrap();
        store_put(&dir, &newer, "density", 0, 8, 2, 2).unwrap();
        store_compact(&dir, None).unwrap();
        store_get(&dir, &output, "density", 0, true).unwrap();
        assert_eq!(fs::read(&output).unwrap(), ds2.bytes);
        assert_eq!(fsck(&dir).unwrap(), 0);

        let _ = fs::remove_dir_all(&dir);
        for p in [&input, &newer, &output] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn store_migrate_lifts_a_single_file_store_to_v3() {
        let old = tmp("migrate-src.isst");
        let dir = tmp("migrate-dst-v3");
        let output = tmp("migrate-out.bin");
        let _ = fs::remove_dir_all(&dir);
        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(10_000, 3);
        let mut writer = isobar_store::StoreWriter::create(&old, IsobarOptions::default()).unwrap();
        writer.put(0, "density", &ds.bytes, 8).unwrap();
        writer.put(1, "density", &ds.bytes, 8).unwrap();
        writer.close().unwrap();

        store_migrate(&old, &dir, 2).unwrap();
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        assert_eq!(reader.version(), 3);
        assert_eq!(reader.entries().len(), 2);
        drop(reader);
        store_get(&dir, &output, "density", 1, true).unwrap();
        assert_eq!(fs::read(&output).unwrap(), ds.bytes);
        // Migrating an already-v3 store is refused.
        assert!(store_migrate(&dir, &tmp("never-v3"), 2).is_err());

        let _ = fs::remove_dir_all(&dir);
        for p in [&old, &output] {
            let _ = fs::remove_file(p);
        }
    }
}
