#![warn(missing_docs)]

//! ISOBAR-as-a-service: a TCP daemon exposing the sharded checkpoint
//! store over a length-prefixed binary protocol.
//!
//! The paper's deployment target is ISOBAR as a transform stage inside
//! I/O middleware serving many concurrent producers. This crate is the
//! Rust equivalent: [`serve`] starts a daemon that accepts
//! `put`/`get`/`stat`/`ls` requests over TCP, compresses puts through
//! the ISOBAR pipeline into a [`isobar_store::ShardedStoreWriter`],
//! serves gets from an uncommitted overlay or the committed
//! [`isobar_store::StoreReader`], isolates tenants by key prefixing,
//! applies byte-denominated admission control (explicit
//! [`protocol::Status::Busy`] instead of unbounded queueing), and
//! commits the store through the two-phase manifest protocol both on
//! a pending-byte threshold and on graceful shutdown.
//!
//! Protocol layout and semantics are documented in [`protocol`] and
//! `docs/SERVE.md`; observability (Prometheus `/metrics`, trace
//! spans) in `docs/OBSERVABILITY.md`.

pub mod chaos;
pub mod client;
pub mod core;
pub mod daemon;
pub mod obs;
pub mod protocol;
pub mod retry;
pub mod signals;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosStream};
pub use client::Client;
pub use core::{CoreOptions, StoreCore};
pub use daemon::{serve, ServeError, ServeOptions, ServeReport, Server, ServerHandle};
pub use obs::{RequestRecord, ServePhase};
pub use retry::{RetryClient, RetryPolicy};
pub use protocol::{
    FrameError, Opcode, ProtoError, Request, RequestHeader, Response, Status, MAX_NAME_LEN,
    MAX_TENANT_LEN, PROTOCOL_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, REQUEST_HEADER_LEN};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-serve-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_options() -> ServeOptions {
        ServeOptions {
            shards: 2,
            queue_depth: 2,
            max_payload: 1 << 20,
            max_inflight_bytes: 4 << 20,
            commit_threshold: 2 << 20,
            ..Default::default()
        }
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn put_get_stat_ls_round_trip_with_tenancy() {
        let dir = tmp("roundtrip");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let addr = server.local_addr();

        let mut acme = Client::connect(addr).unwrap();
        let mut umbrella = Client::connect(addr).unwrap();

        let density = payload(4096, 1);
        let resp = acme.put("acme", 3, "density", 8, density.clone()).unwrap();
        assert_eq!(resp.status, Status::Ok, "{resp:?}");

        // Uncommitted data reads back (read-your-writes overlay).
        let resp = acme.get("acme", 3, "density").unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, density);

        // Tenants are isolated: same name, other tenant → NotFound.
        let resp = umbrella.get("umbrella", 3, "density").unwrap();
        assert_eq!(resp.status, Status::NotFound);

        // stat and ls see the pending entry.
        let resp = acme.stat("acme", 3, "density").unwrap();
        assert_eq!(resp.status, Status::Ok);
        let text = String::from_utf8(resp.payload).unwrap();
        assert!(text.contains("raw_len=4096"), "{text}");
        assert!(text.contains("committed=false"), "{text}");

        let resp = acme.ls("acme").unwrap();
        assert_eq!(resp.status, Status::Ok);
        let text = String::from_utf8(resp.payload).unwrap();
        assert_eq!(text, "3\tdensity\t4096\n");
        let resp = umbrella.ls("umbrella").unwrap();
        assert!(resp.payload.is_empty(), "other tenant's ls is empty");

        // Unknown variable → NotFound with a diagnostic.
        let resp = acme.get("acme", 99, "nope").unwrap();
        assert_eq!(resp.status, Status::NotFound);

        drop(acme);
        drop(umbrella);
        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.puts, 1);
        assert_eq!(report.protocol_errors, 0);
        assert!(report.commits >= 1, "shutdown commits the store");

        // The committed store is a valid v3 store holding the data
        // under the prefixed key.
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        let key = daemon::store_key("acme", "density");
        assert_eq!(reader.get(3, &key).unwrap(), density);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_data_survives_restart_and_threshold_commit_rolls() {
        let dir = tmp("restart");
        let opts = ServeOptions {
            commit_threshold: 8 * 1024, // commit after ~one put
            ..small_options()
        };
        {
            let server = serve(&dir, "127.0.0.1:0", None, opts.clone()).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            let resp = client.put("", 0, "phi", 8, payload(16 * 1024, 2)).unwrap();
            assert_eq!(resp.status, Status::Ok);
            // The threshold commit already ran; a get now comes from
            // the committed reader, not the overlay.
            let resp = client.get("", 0, "phi").unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.payload, payload(16 * 1024, 2));
            drop(client);
            server.shutdown();
            let report = server.join().unwrap();
            assert!(report.commits >= 1);
        }
        // A fresh daemon over the same directory serves the old data.
        let server = serve(&dir, "127.0.0.1:0", None, opts).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.get("", 0, "phi").unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, payload(16 * 1024, 2));
        drop(client);
        server.shutdown();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admission_control_answers_busy_not_queue_growth() {
        let dir = tmp("busy");
        let opts = ServeOptions {
            max_inflight_bytes: 8 * 1024,
            commit_threshold: u64::MAX, // never roll: pending bytes only grow
            ..small_options()
        };
        let server = serve(&dir, "127.0.0.1:0", None, opts).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let resp = client.put("", 0, "a", 8, payload(8 * 1024, 3)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // The budget is now full: the next put is refused outright.
        let resp = client.put("", 0, "b", 8, payload(8 * 1024, 4)).unwrap();
        assert_eq!(resp.status, Status::Busy);
        // The connection survives a Busy (stream stays frame-aligned)
        // and non-put work still proceeds.
        let resp = client.get("", 0, "a").unwrap();
        assert_eq!(resp.status, Status::Ok);

        drop(client);
        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.busy_rejected, 1);
        assert_eq!(report.puts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_frames_get_bad_request_and_daemon_survives() {
        let dir = tmp("malformed");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let addr = server.local_addr();

        // Garbage magic: typed BadRequest, then the daemon closes the
        // connection (alignment is unrecoverable).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GARBAGE-GARBAGE-GARBAGE").unwrap();
        let resp = protocol::read_response(&mut stream, 1 << 20).unwrap();
        assert_eq!(resp.status, Status::BadRequest);

        // A fresh connection still works afterwards.
        let mut client = Client::connect(addr).unwrap();
        let resp = client.put("", 0, "x", 8, payload(64, 5)).unwrap();
        assert_eq!(resp.status, Status::Ok);

        // A request with a reserved separator in the tenant is a
        // BadRequest but keeps the connection (fields were consumed).
        let mut evil = Request {
            opcode: Opcode::Get,
            tenant: String::new(),
            name: "x".into(),
            step: 0,
            width: 0,
            payload: Vec::new(),
        };
        evil.tenant = "a\u{1f}b".into();
        let frame = encode_request(&evil);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&frame).unwrap();
        let resp = protocol::read_response(&mut stream, 1 << 20).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        // Same connection, valid follow-up:
        let good = encode_request(&Request {
            opcode: Opcode::Get,
            tenant: String::new(),
            name: "x".into(),
            step: 0,
            width: 0,
            payload: Vec::new(),
        });
        stream.write_all(&good).unwrap();
        let resp = protocol::read_response(&mut stream, 1 << 20).unwrap();
        assert_eq!(resp.status, Status::Ok);

        drop(client);
        drop(stream);
        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.protocol_errors, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_is_rejected_from_the_header_alone() {
        let dir = tmp("oversized");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        // Claim a payload far over max_payload but never send it: the
        // daemon must reject from the header without allocating or
        // waiting for the bytes.
        let mut header = [0u8; REQUEST_HEADER_LEN];
        header[..4].copy_from_slice(b"ISRQ");
        header[4] = PROTOCOL_VERSION;
        header[5] = Opcode::Put as u8;
        header[8..10].copy_from_slice(&1u16.to_le_bytes()); // name_len
        header[14] = 8; // width
        header[15..19].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&header).unwrap();
        let resp = protocol::read_response(&mut stream, 1 << 20).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        let text = String::from_utf8(resp.payload).unwrap();
        assert!(text.contains("exceeds"), "{text}");
        drop(stream);
        server.shutdown();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_exposition() {
        let dir = tmp("metrics");
        let server = serve(&dir, "127.0.0.1:0", Some("127.0.0.1:0"), small_options()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.put("", 1, "v", 8, payload(256, 6)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        let resp = client.get("", 1, "v").unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Recorder merges land after each response is written; a
        // third request on the same connection is a barrier that
        // guarantees the put's and get's counters are merged.
        let resp = client.ls("").unwrap();
        assert_eq!(resp.status, Status::Ok);

        let metrics_addr = server.metrics_addr().unwrap();
        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        http.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        // The Prometheus text exposition Content-Type, version pinned.
        assert!(
            body.contains("Content-Type: text/plain; version=0.0.4\r\n"),
            "{body}"
        );
        assert!(body.contains("isobar_serve_requests_total"), "{body}");
        // The always-on latency histograms are in the exposition.
        assert!(
            body.contains("isobar_serve_request_duration_seconds_bucket{op=\"put\",le=\"+Inf\"}"),
            "{body}"
        );
        assert!(
            body.contains("isobar_serve_phase_seconds_total{phase=\"lock_wait\"}"),
            "{body}"
        );
        if isobar::telemetry::ENABLED {
            assert!(body.contains("isobar_serve_put_bytes_total 256"), "{body}");
            assert!(body.contains("isobar_serve_get_bytes_total 256"), "{body}");
        }

        // Unknown paths get a 404, not a panic or a hang.
        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        http.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 404"), "{body}");

        drop(client);
        server.shutdown();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_recorder_logs_slow_requests_and_debug_stats_serves_json() {
        let dir = tmp("flight");
        let flight_dir = dir.join("flight");
        let opts = ServeOptions {
            slow_ms: Some(0), // every request is "slow": full coverage
            flight_recorder: Some(flight_dir.clone()),
            debug_endpoint: true,
            ..small_options()
        };
        let server = serve(&dir, "127.0.0.1:0", Some("127.0.0.1:0"), opts).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.put("acme", 1, "v", 8, payload(1024, 9)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        let resp = client.get("acme", 1, "v").unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Same-connection barrier: the put and get are fully recorded
        // once the ls response arrives.
        let resp = client.ls("acme").unwrap();
        assert_eq!(resp.status, Status::Ok);

        let metrics_addr = server.metrics_addr().unwrap();
        let mut http = TcpStream::connect(metrics_addr).unwrap();
        http.write_all(b"GET /debug/stats HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        http.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("Content-Type: application/json"), "{body}");
        for key in [
            "\"connections\"",
            "\"in_flight_bytes\"",
            "\"overlay_bytes\"",
            "\"commit_threshold\"",
            "\"lock_wait_nanos\"",
            "\"phases\"",
            "\"ops\"",
            "\"tenants\"",
            "\"recent_requests\"",
        ] {
            assert!(body.contains(key), "missing {key}: {body}");
        }
        assert!(body.contains("\"acme\""), "tenant histogram present: {body}");

        drop(client);
        // The SIGUSR1 path: dump through the handle, then check the
        // file is a valid Chrome trace.
        let dump = server.handle().dump_flight("test").expect("dump written");
        let json = std::fs::read_to_string(&dump).unwrap();
        isobar::trace::validate_chrome_phases(&json).unwrap();

        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.slow_requests, 3, "{report:?}");
        assert!(report.flight_dumps >= 1, "{report:?}");
        assert!(report.total_request_nanos > 0);
        // Every slow request wrote one JSONL line with its phase
        // breakdown attributing most of the wall time.
        let log = std::fs::read_to_string(flight_dir.join("slow.jsonl")).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 3, "{log}");
        for line in &lines {
            for key in ["\"total_nanos\"", "\"attributed_nanos\"", "\"lock_wait\""] {
                assert!(line.contains(key), "missing {key}: {line}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_ring_wraparound_keeps_chrome_dump_valid() {
        let dir = tmp("wraparound");
        let flight_dir = dir.join("flight");
        let opts = ServeOptions {
            commit_threshold: 16 * 1024, // several generation rolls
            flight_recorder: Some(flight_dir),
            ..small_options()
        };
        let server = serve(&dir, "127.0.0.1:0", None, opts).unwrap();
        // Tiny rings created after this point: sustained load wraps
        // them many times over, overwriting oldest events.
        isobar::trace::set_thread_capacity(8);
        let mut client = Client::connect(server.local_addr()).unwrap();
        for i in 0..200u32 {
            let resp = client.put("", i, "w", 8, payload(512, i as u8)).unwrap();
            assert_eq!(resp.status, Status::Ok);
            let resp = client.get("", i, "w").unwrap();
            assert_eq!(resp.status, Status::Ok);
        }
        isobar::trace::set_thread_capacity(isobar::trace::DEFAULT_THREAD_CAPACITY);
        drop(client);
        // A dump after heavy wraparound must still be a well-formed
        // Chrome trace: every B has its E, timestamps monotonic per
        // thread (rings hold only complete spans, so overwrite-oldest
        // cannot strand a begin).
        let dump = server.handle().dump_flight("wrap").expect("dump written");
        let json = std::fs::read_to_string(&dump).unwrap();
        isobar::trace::validate_chrome_phases(&json).unwrap();
        server.shutdown();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_and_commits_cleanly() {
        let dir = tmp("drain");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.put("", 0, "v", 8, payload(2048, 7)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Shut down via the cloneable handle (the signal-watcher path).
        let handle = server.handle();
        handle.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.puts, 1);
        assert!(report.commits >= 1);
        // The on-disk store is clean: a reader opens it and the data
        // round-trips.
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        assert_eq!(reader.get(0, "v").unwrap(), payload(2048, 7));
        // After shutdown a new connection is refused or immediately
        // answered with ShuttingDown — either way, no new work.
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn wal_files_in(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(wal::is_wal_file_name)
            })
            .collect()
    }

    #[test]
    fn acked_puts_survive_an_ungraceful_stop_via_wal_replay() {
        let dir = tmp("wal-replay");
        let data_a = payload(4096, 11);
        let data_b = payload(2048, 12);
        {
            let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            let resp = client.put("acme", 5, "alpha", 8, data_a.clone()).unwrap();
            assert_eq!(resp.status, Status::Ok);
            let resp = client.put("", 6, "beta", 8, data_b.clone()).unwrap();
            assert_eq!(resp.status, Status::Ok);
            // Acked puts are journaled on disk before their Ok.
            assert!(!wal_files_in(&dir).is_empty(), "journal exists pre-crash");
            drop(client);
            // Drop without join(): the daemon dies without its final
            // commit, like a crash. The un-closed writer aborts its
            // segments; only the journal survives.
            drop(server);
        }
        assert!(!wal_files_in(&dir).is_empty(), "journal survives the crash");

        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Replayed data serves before any new put or commit.
        let resp = client.get("acme", 5, "alpha").unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, data_a);
        let resp = client.get("", 6, "beta").unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.payload, data_b);
        drop(client);
        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.wal_replayed, 2, "{report:?}");
        assert!(report.commits >= 1, "replayed puts get a generation");
        // After the commit the journal is truncated and the data is in
        // the committed store under the prefixed keys.
        assert!(wal_files_in(&dir).is_empty(), "journal retired");
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        assert_eq!(
            reader.get(5, &daemon::store_key("acme", "alpha")).unwrap(),
            data_a
        );
        assert_eq!(reader.get(6, "beta").unwrap(), data_b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_disabled_restores_the_old_contract() {
        let dir = tmp("wal-off");
        let opts = ServeOptions {
            wal: false,
            ..small_options()
        };
        {
            let server = serve(&dir, "127.0.0.1:0", None, opts.clone()).unwrap();
            let mut client = Client::connect(server.local_addr()).unwrap();
            let resp = client.put("", 0, "v", 8, payload(1024, 13)).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert!(wal_files_in(&dir).is_empty(), "no journal when disabled");
            drop(client);
            drop(server); // crash: no final commit
        }
        let server = serve(&dir, "127.0.0.1:0", None, opts).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.get("", 0, "v").unwrap();
        assert_eq!(resp.status, Status::NotFound, "acked put lost, as before");
        drop(client);
        server.shutdown();
        let report = server.join().unwrap();
        assert_eq!(report.wal_replayed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graceful_drain_acks_a_slow_inflight_put_and_commits_cleanly() {
        let dir = tmp("slow-drain");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let data = payload(64 * 1024, 14);
        let frame = encode_request(&Request {
            opcode: Opcode::Put,
            tenant: String::new(),
            name: "slow".into(),
            step: 9,
            width: 8,
            payload: data.clone(),
        });
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Send everything but the payload's second half, then let the
        // daemon observe the shutdown while the put is mid-read.
        let split = frame.len() - 32 * 1024;
        stream.write_all(&frame[..split]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
        server.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(200));
        stream.write_all(&frame[split..]).unwrap();
        stream.flush().unwrap();
        // The in-flight request is answered deterministically: the
        // daemon finishes reading and acks (it passed admission before
        // the drain began).
        let resp = protocol::read_response(&mut stream, 1 << 20).unwrap();
        assert_eq!(resp.status, Status::Ok, "{resp:?}");
        drop(stream);
        let report = server.join().unwrap();
        assert_eq!(report.puts, 1);
        assert!(report.commits >= 1);
        // The final commit retired the journal — no torn WAL left
        // behind — and the store holds the exact bytes.
        assert!(wal_files_in(&dir).is_empty(), "no journal after drain");
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        assert_eq!(reader.get(9, "slow").unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_client_rides_through_chaos_with_bit_exact_data() {
        let dir = tmp("chaos-retry");
        let server = serve(&dir, "127.0.0.1:0", None, small_options()).unwrap();
        let addr = server.local_addr();
        let mut resets = 0u64;
        {
            let mut client = retry::RetryClient::new(
                retry::RetryPolicy::default(),
                0xC0FFEE,
                move || {
                    let stream = TcpStream::connect(addr)?;
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
                    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
                    resets += 1;
                    Ok(Client::from_stream(ChaosStream::new(
                        stream,
                        ChaosConfig {
                            // Aggressive: every op rolls fragmentation,
                            // 2% resets mid-frame.
                            short_read_per_mille: 300,
                            short_write_per_mille: 300,
                            reset_per_mille: 20,
                            ..ChaosConfig::quiet(resets)
                        },
                    )))
                },
            );
            for step in 0..16u32 {
                let data = payload(2048, step as u8);
                let resp = client.put("acme", step, "var", 8, &data).unwrap();
                assert_eq!(resp.status, Status::Ok);
                let resp = client.get("acme", step, "var").unwrap();
                assert_eq!(resp.status, Status::Ok);
                assert_eq!(resp.payload, data, "bit-exact at step {step}");
            }
            assert!(client.stats.attempts >= 32);
        }
        server.shutdown();
        let report = server.join().unwrap();
        // Every logical op succeeded exactly once from the client's
        // view; the daemon may have seen more puts from ambiguous
        // retries (idempotent re-puts), never fewer.
        assert!(report.puts >= 16, "{report:?}");
        assert!(report.gets >= 16, "{report:?}");
        let reader = isobar_store::StoreReader::open(&dir).unwrap();
        for step in 0..16u32 {
            assert_eq!(
                reader.get(step, &daemon::store_key("acme", "var")).unwrap(),
                payload(2048, step as u8)
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slowloris_cannot_pin_a_worker_past_the_frame_deadline() {
        let dir = tmp("slowloris");
        let opts = ServeOptions {
            frame_deadline: std::time::Duration::from_millis(300),
            ..small_options()
        };
        let server = serve(&dir, "127.0.0.1:0", None, opts).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Start a frame, then trickle nothing: the daemon must cut the
        // connection at the deadline instead of waiting forever.
        stream.write_all(b"IS").unwrap();
        stream.flush().unwrap();
        let started = std::time::Instant::now();
        let mut buf = [0u8; 64];
        // EOF (or reset) must arrive promptly after the deadline.
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection closed, not answered");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "cut at the deadline, not the 30s legacy timeout"
        );
        drop(stream);
        // The daemon is still healthy for well-behaved clients.
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.put("", 0, "ok", 8, payload(64, 15)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        drop(client);
        server.shutdown();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn signal_flag_round_trip() {
        signals::reset_for_tests();
        assert!(!signals::shutdown_requested());
        signals::install_shutdown_signals();
        signals::install_usr1_signal();
        assert!(!signals::shutdown_requested());
        assert!(!signals::take_usr1());
        signals::reset_for_tests();
    }
}
