//! Store-level fsck and salvage.
//!
//! A store has two independent failure surfaces: the data region
//! (individual containers) and the index region. Fsck reports both;
//! salvage recovers every intact record it can find, rebuilding the
//! index from a forward record walk when the original one is unusable.
//!
//! # Resync rules for a lost index
//!
//! Each record embeds an ISOBAR container, whose `"ISBR"` magic acts
//! as an anchor. For a magic at file position `m`, the record header
//! ends exactly at `m`, so its start is `m - 15 - name_len`; the walk
//! tries every `name_len` whose length prefix at that start agrees,
//! then demands a UTF-8 name, a plausible element width, and a
//! container length that fits in the file. Accepted candidates are
//! confirmed by a strict (verifying) decompress — a false anchor has
//! to forge the container checksums to survive, so misidentified
//! records do not reach the salvaged output.

use crate::error::StoreError;
use crate::format::{
    entry_checksum, is_segment_file_name, IndexEntry, LEGACY_VERSION, MAGIC, MANIFEST_FILE,
    SEGMENT_HEADER_LEN, V3_VERSION,
};
use crate::manifest::Manifest;
use crate::reader::StoreReader;
use crate::sharded::{ShardedOptions, ShardedStoreWriter};
use crate::writer::StoreWriter;
use isobar::{IsobarCompressor, IsobarOptions};
use std::collections::HashSet;
use std::path::Path;

/// Verification outcome for one store entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryHealth {
    /// The entry's bytes match an embedded checksum (the version-2
    /// index checksum, or the container's own chunk checksums).
    Verified,
    /// Structurally sound, but neither the store index nor the
    /// container carries checksums — a pre-checksum legacy record.
    LegacyUnverifiable,
    /// The entry's bytes contradict a checksum or fail structural
    /// validation.
    Damaged,
}

/// Fsck status of one store entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryStatus {
    /// Simulation time step.
    pub step: u32,
    /// Variable name.
    pub name: String,
    /// File offset of the entry's container.
    pub offset: u64,
    /// Verification outcome.
    pub health: EntryHealth,
}

/// What [`fsck_store`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreFsckReport {
    /// Store format version (1, 2, or 3).
    pub version: u8,
    /// Whether the index region (or, for version 3, the manifest)
    /// itself is damaged or unreadable. When true, `entries` may be
    /// empty even though data records exist.
    pub index_damaged: bool,
    /// Per-entry status, in index order.
    pub entries: Vec<EntryStatus>,
    /// Whether any part of the store predates embedded checksums.
    pub legacy: bool,
    /// Version 3 only: segment-shaped files in the store directory
    /// (including `.wip` journals) that the manifest does not
    /// reference — droppings of a crashed or in-flight writer.
    /// Harmless; compaction sweeps them.
    pub orphan_files: usize,
    /// Version 3 only: entries shadowed by a later put of the same
    /// `(step, variable)`. Dead weight, reclaimed by compaction.
    pub superseded_entries: usize,
}

impl StoreFsckReport {
    /// True when the index is intact and no entry is damaged. Legacy
    /// (unverifiable) entries do not make a store unclean — they are
    /// structurally sound, merely unprovable.
    pub fn is_clean(&self) -> bool {
        !self.index_damaged
            && self
                .entries
                .iter()
                .all(|e| e.health != EntryHealth::Damaged)
    }

    /// Number of entries that failed verification.
    pub fn damaged_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.health == EntryHealth::Damaged)
            .count()
    }
}

/// What [`salvage_store`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSalvageReport {
    /// Records copied intact into the output store.
    pub entries_recovered: usize,
    /// Records that could not be recovered.
    pub entries_lost: usize,
    /// Whether the index was rebuilt from a forward record walk
    /// because the original was unusable.
    pub index_rebuilt: bool,
}

impl StoreSalvageReport {
    /// True when nothing was lost.
    pub fn is_complete(&self) -> bool {
        self.entries_lost == 0
    }
}

/// Health of one container according to the strongest available
/// evidence: the version-2 index checksum when the store carries one,
/// otherwise the container's own embedded checksums via
/// [`isobar::salvage::fsck_container`].
fn container_health(version: u8, entry: &IndexEntry, container: &[u8]) -> EntryHealth {
    if version >= 2 {
        return if entry_checksum(container) == entry.checksum {
            EntryHealth::Verified
        } else {
            EntryHealth::Damaged
        };
    }
    match isobar::salvage::fsck_container(container) {
        Ok(report) if report.is_clean() => {
            if report.legacy {
                EntryHealth::LegacyUnverifiable
            } else {
                EntryHealth::Verified
            }
        }
        _ => EntryHealth::Damaged,
    }
}

/// Walk a store and verify every entry without decompressing payloads.
/// A directory is checked as a version-3 sharded store, a file as a
/// single-file store.
///
/// Never fails on damage — damage is the report's content. Errors are
/// reserved for I/O failures and files that are not stores at all.
pub fn fsck_store(path: impl AsRef<Path>) -> Result<StoreFsckReport, StoreError> {
    let path = path.as_ref();
    if path.is_dir() {
        return fsck_v3(path);
    }
    // A file without the store magic is a usage error, not damage.
    let head = {
        let mut head = [0u8; 5];
        use std::io::Read;
        let mut f = std::fs::File::open(path)?;
        let n = f.read(&mut head)?;
        if n < 5 || head[..4] != MAGIC {
            return Err(StoreError::Corrupt("not a store file (bad magic)"));
        }
        head
    };
    let version = head[4];

    let reader = match StoreReader::open(path) {
        Ok(reader) => reader,
        Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
        // Index checksum mismatch or structural damage: retry without
        // verification to enumerate what we still can.
        Err(_) => match StoreReader::open_with_verify(path, false) {
            Ok(reader) => {
                return fsck_entries(version, true, &reader);
            }
            Err(_) => {
                return Ok(StoreFsckReport {
                    version,
                    index_damaged: true,
                    entries: Vec::new(),
                    legacy: version == LEGACY_VERSION,
                    orphan_files: 0,
                    superseded_entries: 0,
                })
            }
        },
    };
    fsck_entries(version, false, &reader)
}

/// Segment-shaped files in `dir` (counting `.wip` journals) that
/// `referenced` does not name.
fn count_orphans(dir: &Path, referenced: &HashSet<String>) -> Result<usize, StoreError> {
    let mut orphans = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let stem = name.strip_suffix(".wip").unwrap_or(name);
        if is_segment_file_name(stem) && !referenced.contains(name) {
            orphans += 1;
        }
    }
    Ok(orphans)
}

fn fsck_v3(dir: &Path) -> Result<StoreFsckReport, StoreError> {
    // The manifest's segment table drives the orphan scan; if it
    // cannot be decoded at all, every segment file is effectively
    // unreferenced (and recoverable only by the salvage walk).
    let referenced: HashSet<String> = match std::fs::read(dir.join(MANIFEST_FILE)) {
        Ok(bytes) => Manifest::decode(&bytes, false)
            .map(|m| m.segments.into_iter().map(|s| s.file_name).collect())
            .unwrap_or_default(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashSet::new(),
        Err(e) => return Err(e.into()),
    };
    let orphan_files = count_orphans(dir, &referenced)?;

    let finish = |index_damaged: bool, reader: Option<&StoreReader>| {
        let mut report = match reader {
            Some(reader) => {
                let mut report = fsck_entries(V3_VERSION, index_damaged, reader)?;
                report.superseded_entries = reader.superseded_count();
                report
            }
            None => StoreFsckReport {
                version: V3_VERSION,
                index_damaged: true,
                entries: Vec::new(),
                legacy: false,
                orphan_files: 0,
                superseded_entries: 0,
            },
        };
        report.orphan_files = orphan_files;
        Ok(report)
    };

    match StoreReader::open(dir) {
        Ok(reader) => finish(false, Some(&reader)),
        Err(StoreError::Io(e)) => Err(StoreError::Io(e)),
        // Manifest checksum mismatch or a segment disagreeing with it:
        // retry structurally to enumerate what we still can.
        Err(_) => match StoreReader::open_with_verify(dir, false) {
            Ok(reader) => finish(true, Some(&reader)),
            Err(_) => finish(true, None),
        },
    }
}

fn fsck_entries(
    version: u8,
    index_damaged: bool,
    reader: &StoreReader,
) -> Result<StoreFsckReport, StoreError> {
    let mut entries = Vec::with_capacity(reader.entries().len());
    let mut legacy = version == LEGACY_VERSION;
    for entry in reader.entries() {
        let health = match reader.get_container(entry) {
            Ok(container) => container_health(version, entry, &container),
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(_) => EntryHealth::Damaged,
        };
        legacy |= health == EntryHealth::LegacyUnverifiable;
        entries.push(EntryStatus {
            step: entry.step,
            name: entry.name.clone(),
            offset: entry.offset,
            health,
        });
    }
    Ok(StoreFsckReport {
        version,
        index_damaged,
        entries,
        legacy,
        orphan_files: 0,
        superseded_entries: 0,
    })
}

/// Copy every recoverable record of the store at `input` into a fresh
/// store at `output`.
///
/// With a usable index, intact containers are copied byte-for-byte (no
/// decompress/recompress round trip). With an unusable index, records
/// are rediscovered by the forward walk described in the module docs;
/// each candidate must survive a strict verifying decompress before it
/// is admitted. The output is always a complete, current-version store
/// — opening it verifies clean.
pub fn salvage_store(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
) -> Result<StoreSalvageReport, StoreError> {
    let input = input.as_ref();
    if input.is_dir() {
        return salvage_v3(input, output.as_ref());
    }
    let report = fsck_store(input)?;
    let mut writer = StoreWriter::create(output.as_ref(), IsobarOptions::default())?;
    let mut recovered = 0usize;
    let mut lost = 0usize;

    if !report.index_damaged {
        let reader = StoreReader::open_with_verify(input, false)?;
        for entry in reader.entries() {
            let container = match reader.get_container(entry) {
                Ok(c) => c,
                Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                Err(_) => {
                    lost += 1;
                    continue;
                }
            };
            if container_health(report.version, entry, &container) == EntryHealth::Damaged {
                lost += 1;
                continue;
            }
            writer.put_container(
                entry.step,
                &entry.name,
                entry.width,
                &container,
                entry.raw_len,
            )?;
            recovered += 1;
        }
        writer.close()?;
        return Ok(StoreSalvageReport {
            entries_recovered: recovered,
            entries_lost: lost,
            index_rebuilt: false,
        });
    }

    // Index unusable: rediscover records by forward walk.
    let data = std::fs::read(input)?;
    let verifier = IsobarCompressor::new(IsobarOptions {
        verify: true,
        ..Default::default()
    });
    let head_len = MAGIC.len() + 1;
    let mut pos = head_len;
    while pos + isobar::container::MAGIC.len() <= data.len() {
        let Some(found) = find_magic(&data[pos..]) else {
            break;
        };
        let m = pos + found;
        match record_at(&data, head_len, m) {
            Some(record) => {
                let container = &data[m..m + record.container_len];
                match verifier.decompress(container) {
                    Ok(raw) => {
                        match writer.put_container(
                            record.step,
                            record.name,
                            record.width,
                            container,
                            raw.len() as u64,
                        ) {
                            Ok(()) => recovered += 1,
                            // A duplicate here means a false anchor
                            // reproduced an already-salvaged record;
                            // drop it rather than fail the salvage.
                            Err(StoreError::Duplicate { .. }) => {}
                            Err(e) => return Err(e),
                        }
                        pos = m + record.container_len;
                    }
                    Err(_) => {
                        lost += 1;
                        pos = m + isobar::container::MAGIC.len();
                    }
                }
            }
            None => {
                pos = m + isobar::container::MAGIC.len();
            }
        }
    }
    writer.close()?;
    Ok(StoreSalvageReport {
        entries_recovered: recovered,
        entries_lost: lost,
        index_rebuilt: true,
    })
}

/// Salvage a version-3 directory store into a fresh single-shard
/// version-3 store at `output`.
///
/// With a decodable manifest, the newest intact version of every live
/// `(step, variable)` is copied byte-for-byte; when the newest version
/// is damaged, older superseded versions of the same key are tried
/// newest-first — a supersede history doubles as a recovery ladder.
/// Without a usable manifest, every segment file (including `.wip`
/// journals of a crashed writer) is walked with the resync rules from
/// the module docs, and the newest surviving version of each key wins.
fn salvage_v3(input: &Path, output: &Path) -> Result<StoreSalvageReport, StoreError> {
    let writer = ShardedStoreWriter::create(
        output,
        IsobarOptions::default(),
        ShardedOptions {
            shards: 1,
            ..Default::default()
        },
    )?;
    let mut recovered = 0usize;
    let mut lost = 0usize;

    if let Ok(reader) = StoreReader::open_with_verify(input, false) {
        // Group index positions by key; index order is put order, so
        // the last position of a key is its live version.
        let mut order: Vec<(u32, String)> = Vec::new();
        let mut versions: std::collections::HashMap<(u32, String), Vec<usize>> =
            std::collections::HashMap::new();
        for (at, entry) in reader.entries().iter().enumerate() {
            let key = (entry.step, entry.name.clone());
            match versions.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().push(at),
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(vec![at]);
                    order.push(key);
                }
            }
        }
        for key in &order {
            let positions = &versions[key];
            let mut copied = false;
            for &at in positions.iter().rev() {
                let entry = &reader.entries()[at];
                let container = match reader.get_container(entry) {
                    Ok(c) => c,
                    Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
                    Err(_) => continue,
                };
                if container_health(V3_VERSION, entry, &container) == EntryHealth::Damaged {
                    continue;
                }
                writer.put_container(
                    entry.step,
                    &entry.name,
                    entry.width,
                    container,
                    entry.raw_len,
                )?;
                copied = true;
                break;
            }
            if copied {
                recovered += 1;
            } else {
                lost += 1;
            }
        }
        writer.close()?;
        return Ok(StoreSalvageReport {
            entries_recovered: recovered,
            entries_lost: lost,
            index_rebuilt: false,
        });
    }

    // Manifest unusable: walk every segment-shaped file in generation
    // order (file names sort by generation) and rediscover records.
    let mut files: Vec<String> = Vec::new();
    for dirent in std::fs::read_dir(input)? {
        let name = dirent?.file_name();
        let Some(name) = name.to_str() else { continue };
        let stem = name.strip_suffix(".wip").unwrap_or(name);
        if is_segment_file_name(stem) {
            files.push(name.to_string());
        }
    }
    files.sort();

    let verifier = IsobarCompressor::new(IsobarOptions {
        verify: true,
        ..Default::default()
    });
    // Newest version of each key wins: later files are later
    // generations, and within a file the walk runs in put order.
    struct Candidate {
        step: u32,
        name: String,
        width: u8,
        container: Vec<u8>,
        raw_len: u64,
    }
    let mut order: Vec<usize> = Vec::new();
    let mut by_key: std::collections::HashMap<(u32, String), usize> =
        std::collections::HashMap::new();
    let mut candidates: Vec<Candidate> = Vec::new();
    for file in &files {
        let data = std::fs::read(input.join(file))?;
        let mut pos = SEGMENT_HEADER_LEN;
        while pos + isobar::container::MAGIC.len() <= data.len() {
            let Some(found) = find_magic(&data[pos..]) else {
                break;
            };
            let m = pos + found;
            match record_at(&data, SEGMENT_HEADER_LEN, m) {
                Some(record) => {
                    let container = &data[m..m + record.container_len];
                    match verifier.decompress(container) {
                        Ok(raw) => {
                            let candidate = Candidate {
                                step: record.step,
                                name: record.name.to_string(),
                                width: record.width,
                                container: container.to_vec(),
                                raw_len: raw.len() as u64,
                            };
                            let key = (candidate.step, candidate.name.clone());
                            candidates.push(candidate);
                            let at = candidates.len() - 1;
                            match by_key.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut o) => {
                                    *o.get_mut() = at;
                                }
                                std::collections::hash_map::Entry::Vacant(v) => {
                                    v.insert(at);
                                    order.push(at);
                                }
                            }
                            pos = m + record.container_len;
                        }
                        Err(_) => {
                            lost += 1;
                            pos = m + isobar::container::MAGIC.len();
                        }
                    }
                }
                None => {
                    pos = m + isobar::container::MAGIC.len();
                }
            }
        }
    }
    // `order` holds each key's first-appearance position; resolve to
    // the key's newest candidate before writing.
    for at in order {
        let newest = {
            let c = &candidates[at];
            by_key[&(c.step, c.name.clone())]
        };
        let c = &candidates[newest];
        writer.put_container(c.step, &c.name, c.width, c.container.clone(), c.raw_len)?;
        recovered += 1;
    }
    writer.close()?;
    Ok(StoreSalvageReport {
        entries_recovered: recovered,
        entries_lost: lost,
        index_rebuilt: true,
    })
}

fn find_magic(data: &[u8]) -> Option<usize> {
    data.windows(isobar::container::MAGIC.len())
        .position(|w| w == isobar::container::MAGIC)
}

struct WalkRecord<'a> {
    step: u32,
    name: &'a str,
    width: u8,
    container_len: usize,
}

/// Try to interpret the container magic at `m` as the payload of a
/// store record, reconstructing the record header that precedes it.
fn record_at(data: &[u8], head_len: usize, m: usize) -> Option<WalkRecord<'_>> {
    // Fixed header tail between the name and the container:
    // step u32 | width u8 | container_len u64.
    const TAIL: usize = 4 + 1 + 8;
    let max_name = m.checked_sub(head_len + 2 + TAIL)?;
    for name_len in 0..=max_name.min(u16::MAX as usize) {
        let start = m - TAIL - name_len - 2;
        let claimed = u16::from_le_bytes(data[start..start + 2].try_into().ok()?) as usize;
        if claimed != name_len {
            continue;
        }
        let name = match std::str::from_utf8(&data[start + 2..start + 2 + name_len]) {
            Ok(n) => n,
            Err(_) => continue,
        };
        let tail = &data[start + 2 + name_len..m];
        let step = u32::from_le_bytes(tail[..4].try_into().ok()?);
        let width = tail[4];
        let container_len = u64::from_le_bytes(tail[5..13].try_into().ok()?);
        if width == 0 || width > 64 {
            continue;
        }
        if container_len == 0 || (m as u64).checked_add(container_len)? > data.len() as u64 {
            continue;
        }
        return Some(WalkRecord {
            step,
            name,
            width,
            container_len: container_len as usize,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{CHECKSUM_SEED, TRAILER_LEN};
    use isobar_codecs::xxhash::xxh64;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "isobar-store-salvage-{}-{name}",
            std::process::id()
        ))
    }

    fn payload(len: usize, phase: u64) -> Vec<u8> {
        (0..len)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> (phase % 13)) & 0xFF) as u8)
            .collect()
    }

    fn write_demo_store(path: &PathBuf) -> (Vec<u8>, Vec<u8>) {
        let a = payload(16 * 1024, 1);
        let b = payload(16 * 1024, 7);
        let mut writer = StoreWriter::create(path, IsobarOptions::default()).unwrap();
        writer.put(0, "density", &a, 8).unwrap();
        writer.put(0, "potential", &b, 8).unwrap();
        writer.close().unwrap();
        (a, b)
    }

    #[test]
    fn clean_store_fscks_clean() {
        let path = tmp("clean.isst");
        write_demo_store(&path);
        let report = fsck_store(&path).unwrap();
        assert!(report.is_clean());
        assert!(!report.legacy);
        assert_eq!(report.version, crate::format::VERSION);
        assert_eq!(report.entries.len(), 2);
        assert!(report
            .entries
            .iter()
            .all(|e| e.health == EntryHealth::Verified));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn container_damage_is_reported_and_salvaged_around() {
        let path = tmp("damaged.isst");
        let out = tmp("damaged-salvaged.isst");
        let (_, b) = write_demo_store(&path);

        // Flip one byte in the middle of the first entry's container.
        let reader = StoreReader::open(&path).unwrap();
        let victim = reader.entries()[0].clone();
        let survivor = reader.entries()[1].clone();
        drop(reader);
        let mut bytes = std::fs::read(&path).unwrap();
        let hit = (victim.offset + victim.container_len / 2) as usize;
        bytes[hit] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let report = fsck_store(&path).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.damaged_entries(), 1);
        assert_eq!(report.entries[0].health, EntryHealth::Damaged);
        assert_eq!(report.entries[1].health, EntryHealth::Verified);

        // The verifying reader refuses the damaged entry…
        let reader = StoreReader::open(&path).unwrap();
        let err = reader.get(victim.step, &victim.name).unwrap_err();
        assert!(err.is_checksum_mismatch(), "got {err}");
        // …but still serves the intact one.
        assert_eq!(reader.get(survivor.step, &survivor.name).unwrap(), b);
        drop(reader);

        let salvage = salvage_store(&path, &out).unwrap();
        assert_eq!(salvage.entries_recovered, 1);
        assert_eq!(salvage.entries_lost, 1);
        assert!(!salvage.index_rebuilt);

        let restored = StoreReader::open(&out).unwrap();
        assert_eq!(restored.get(survivor.step, &survivor.name).unwrap(), b);
        assert!(fsck_store(&out).unwrap().is_clean());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn index_damage_triggers_record_walk_rebuild() {
        let path = tmp("badindex.isst");
        let out = tmp("badindex-salvaged.isst");
        let (a, b) = write_demo_store(&path);

        // Flip a byte inside the index region (between the last
        // container and the trailer).
        let mut bytes = std::fs::read(&path).unwrap();
        let trailer_at = bytes.len() - TRAILER_LEN;
        let index_offset =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        bytes[index_offset + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Default (verifying) open refuses the store outright.
        let err = StoreReader::open(&path).unwrap_err();
        assert!(err.is_checksum_mismatch(), "got {err}");

        let report = fsck_store(&path).unwrap();
        assert!(!report.is_clean());

        let salvage = salvage_store(&path, &out).unwrap();
        assert!(salvage.index_rebuilt);
        assert_eq!(salvage.entries_recovered, 2);
        assert!(salvage.is_complete());

        let restored = StoreReader::open(&out).unwrap();
        assert_eq!(restored.get(0, "density").unwrap(), a);
        assert_eq!(restored.get(0, "potential").unwrap(), b);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn index_checksum_damage_is_a_checksum_mismatch_at_index_offset() {
        let path = tmp("trailersum.isst");
        write_demo_store(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        let trailer_at = bytes.len() - TRAILER_LEN;
        let index_offset =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap());
        // Corrupt the stored index checksum itself.
        bytes[trailer_at + 12] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match StoreReader::open(&path).unwrap_err() {
            StoreError::ChecksumMismatch { offset, .. } => assert_eq!(offset, index_offset),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        // Verification off trusts structure and still opens.
        assert!(StoreReader::open_with_verify(&path, false).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_walk_ignores_false_anchors() {
        // A container whose *payload* happens to contain the bytes
        // "ISBR" must not yield a phantom record: the reconstructed
        // header will not parse into a record whose container passes a
        // verifying decompress.
        let path = tmp("falseanchor.isst");
        let out = tmp("falseanchor-salvaged.isst");
        let mut data = payload(16 * 1024, 3);
        data[4096..4100].copy_from_slice(b"ISBR");
        data[8192..8196].copy_from_slice(b"ISBR");
        let mut writer = StoreWriter::create(&path, IsobarOptions::default()).unwrap();
        writer.put(3, "tricky", &data, 1).unwrap();
        writer.close().unwrap();

        // Break the index so salvage must walk records.
        let mut bytes = std::fs::read(&path).unwrap();
        let trailer_at = bytes.len() - TRAILER_LEN;
        let index_offset =
            u64::from_le_bytes(bytes[trailer_at..trailer_at + 8].try_into().unwrap()) as usize;
        bytes[index_offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let salvage = salvage_store(&path, &out).unwrap();
        assert!(salvage.index_rebuilt);
        assert_eq!(salvage.entries_recovered, 1);
        let restored = StoreReader::open(&out).unwrap();
        assert_eq!(restored.get(3, "tricky").unwrap(), data);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&out).unwrap();
    }

    #[test]
    fn entry_checksum_matches_format_helper() {
        let container = b"arbitrary container stand-in";
        assert_eq!(entry_checksum(container), xxh64(container, CHECKSUM_SEED));
    }

    fn write_demo_v3(dir: &PathBuf, generations: u32) -> Vec<u8> {
        let mut last = Vec::new();
        for g in 0..generations {
            let writer = ShardedStoreWriter::create(
                dir,
                IsobarOptions::default(),
                ShardedOptions {
                    shards: 2,
                    ..Default::default()
                },
            )
            .unwrap();
            let data = payload(16 * 1024, 1 + g as u64);
            writer.put(0, "density", data.clone(), 8).unwrap();
            writer
                .put(0, "potential", payload(16 * 1024, 7 + g as u64), 8)
                .unwrap();
            writer.close().unwrap();
            last = data;
        }
        last
    }

    #[test]
    fn v3_store_fscks_clean_and_counts_supersedes() {
        let dir = tmp("v3-clean");
        let _ = std::fs::remove_dir_all(&dir);
        write_demo_v3(&dir, 2);
        let report = fsck_store(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.version, V3_VERSION);
        assert_eq!(report.entries.len(), 4, "both generations enumerated");
        assert_eq!(report.superseded_entries, 2);
        assert_eq!(report.orphan_files, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v3_fsck_counts_orphan_droppings() {
        let dir = tmp("v3-orphans");
        let _ = std::fs::remove_dir_all(&dir);
        write_demo_v3(&dir, 1);
        // A crashed writer's droppings: an unreferenced sealed segment
        // and a torn .wip journal.
        std::fs::write(dir.join("g0000000000000007-s000.seg"), b"ISSGx").unwrap();
        std::fs::write(dir.join("g0000000000000007-s001.seg.wip"), b"IS").unwrap();
        let report = fsck_store(&dir).unwrap();
        assert!(report.is_clean(), "orphans are not damage");
        assert_eq!(report.orphan_files, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v3_salvage_falls_back_to_superseded_version_of_damaged_entry() {
        let dir = tmp("v3-fallback");
        let out = tmp("v3-fallback-out");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&out);
        write_demo_v3(&dir, 2);

        // Damage the *live* (generation-1) version of "density" on
        // disk; the generation-0 version should be salvaged instead.
        let reader = StoreReader::open_with_verify(&dir, false).unwrap();
        let positions: Vec<usize> = reader
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.name == "density")
            .map(|(at, _)| at)
            .collect();
        assert_eq!(positions.len(), 2);
        let live = reader.entries()[*positions.last().unwrap()].clone();
        let live_seg = reader
            .segment_file_name(&reader.entries()[*positions.last().unwrap()])
            .unwrap()
            .to_string();
        let old = reader.entries()[positions[0]].clone();
        drop(reader);
        let seg_path = dir.join(&live_seg);
        let mut bytes = std::fs::read(&seg_path).unwrap();
        bytes[(live.offset + live.container_len / 2) as usize] ^= 0x40;
        std::fs::write(&seg_path, &bytes).unwrap();

        let report = salvage_store(&dir, &out).unwrap();
        assert!(report.is_complete(), "{report:?}");
        assert_eq!(report.entries_recovered, 2);
        assert!(!report.index_rebuilt);

        let restored = StoreReader::open(&out).unwrap();
        // The salvaged "density" is the generation-0 payload.
        let reader = StoreReader::open_with_verify(&dir, false).unwrap();
        assert_eq!(
            restored.get(0, "density").unwrap(),
            IsobarCompressor::new(IsobarOptions::default())
                .decompress(
                    &reader
                        .get_container(&reader.entries()[positions[0]])
                        .unwrap()
                )
                .unwrap(),
            "fell back to the superseded version at offset {}",
            old.offset
        );
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn v3_salvage_rebuilds_from_segments_when_manifest_is_gone() {
        let dir = tmp("v3-nomanifest");
        let out = tmp("v3-nomanifest-out");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&out);
        let newest_density = write_demo_v3(&dir, 2);
        let segment_files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_str()
                    .is_some_and(is_segment_file_name)
            })
            .count();
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();

        let report = fsck_store(&dir).unwrap();
        assert!(report.index_damaged);
        assert_eq!(
            report.orphan_files, segment_files,
            "all segments now unreferenced"
        );

        let salvage = salvage_store(&dir, &out).unwrap();
        assert!(salvage.index_rebuilt);
        assert_eq!(salvage.entries_recovered, 2, "one live version per key");
        assert_eq!(salvage.entries_lost, 0);

        let restored = StoreReader::open(&out).unwrap();
        assert_eq!(
            restored.get(0, "density").unwrap(),
            newest_density,
            "newest generation wins the walk"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&out).unwrap();
    }
}
