//! Quickstart: compress a hard-to-compress double array with ISOBAR.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The input mimics scientific simulation output: smooth exponents
//! (predictable) over fully random mantissa bits (noise). Generic
//! compressors gain almost nothing on it; ISOBAR identifies the noise
//! byte-columns, compresses only the signal columns, and stores the
//! noise verbatim — better ratio at a fraction of the cost.

use isobar::{IsobarCompressor, IsobarOptions, Preference};
use isobar_codecs::{deflate::Deflate, Codec};

fn main() {
    // 500 000 doubles ≈ 4 MB of synthetic "sensor" data.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let values: Vec<f64> = (0..500_000)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Smooth macroscopic trend + full-precision noise.
            let trend = 1.0 + (i as f64 / 50_000.0).sin().abs();
            let noise = (state as f64 / u64::MAX as f64) * 1e-8;
            trend + noise
        })
        .collect();
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();

    // Baseline: plain zlib-class compression of the raw bytes.
    let zlib = Deflate::default();
    let t = std::time::Instant::now();
    let baseline = zlib.compress(&bytes);
    let baseline_secs = t.elapsed().as_secs_f64();

    // ISOBAR with a speed preference (the in-situ setting).
    let isobar = IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        ..Default::default()
    });
    let (packed, report) = isobar
        .compress_with_report(&bytes, 8)
        .expect("8-byte aligned input");

    println!("input:             {:>9} bytes", bytes.len());
    println!(
        "zlib alone:        {:>9} bytes  (CR {:.3}, {:>7.1} MB/s)",
        baseline.len(),
        bytes.len() as f64 / baseline.len() as f64,
        bytes.len() as f64 / 1e6 / baseline_secs,
    );
    println!(
        "ISOBAR + {:<6}    {:>9} bytes  (CR {:.3}, {:>7.1} MB/s)",
        report.codec.name(),
        packed.len(),
        report.ratio(),
        report.throughput_mbps(),
    );
    println!(
        "analyzer verdict:  {:.1}% of bytes are noise; improvable = {}",
        report.htc_pct(),
        report.improvable(),
    );
    println!(
        "chosen combination: {} solver, {} linearization",
        report.codec.name(),
        report.linearization
    );

    // Round-trip check — ISOBAR is lossless to the bit.
    let restored = isobar.decompress(&packed).expect("valid container");
    assert_eq!(restored, bytes);
    println!(
        "round trip:        exact ({} bytes verified)",
        restored.len()
    );
}
