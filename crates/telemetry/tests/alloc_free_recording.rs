//! Proof that telemetry recording itself is allocation-free.
//!
//! The recorder sits inside the pipeline's hot loops, so recording a
//! counter, a stage span, a histogram sample, or absorbing another
//! recorder must never touch the heap — in the enabled build *and*,
//! trivially, in the telemetry-off build where every method is a no-op.
//! Only snapshot serialization (`to_json`) may allocate.
//!
//! This file intentionally contains exactly ONE `#[test]`: cargo runs
//! each integration-test file as its own binary, and a second
//! concurrently-running test would pollute the allocation counter.

use isobar_telemetry::{Counter, Recorder, Stage, StageTimer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn recording_performs_zero_allocations() {
    let mut rec = Recorder::new();
    let mut worker = Recorder::new();

    let before = allocs();
    for i in 0..10_000u64 {
        rec.add(Counter::ChunkInputBytes, i);
        rec.incr(Counter::ChunksCompressed);
        rec.record_stage(Stage::SolverCompress, i * 3);
        rec.record_tau_margin(i as f64 / 500.0);
        rec.record_eupa_trial((i % 2) as usize, ((i / 2) % 2) as usize, i);
        let timer = StageTimer::start(Stage::Analyze);
        timer.finish(&mut worker);
    }
    rec.record_eupa_selected(0, 1);
    rec.absorb(&worker);
    let during = allocs() - before;
    assert_eq!(during, 0, "recording allocated {during} times");

    // Snapshots of fixed-size arrays: cloning out of the recorder is
    // also heap-free (only to_json builds a String).
    let before = allocs();
    let snap = rec.snapshot();
    let during = allocs() - before;
    assert_eq!(during, 0, "snapshot() allocated {during} times");

    if isobar_telemetry::ENABLED {
        assert_eq!(snap.counter(Counter::ChunksCompressed), 10_000);
        assert_eq!(snap.stage(Stage::Analyze).count, 10_000);
    } else {
        assert!(snap.is_empty());
    }
}
