//! Version-3 manifest and segment framing.
//!
//! A version-3 store is a directory: N immutable segment files plus a
//! `MANIFEST` that names them and embeds the whole index. The manifest
//! is the only mutable object and is replaced by atomic rename — the
//! single commit point for a generation. Segments are never rewritten;
//! a new generation appends fresh segment files next to the committed
//! ones and the new manifest references both, so writers of different
//! generations never collide on a file name.
//!
//! # Manifest layout (all little-endian)
//!
//! ```text
//! magic "ISSM" | version u8 (3) | reserved [0u8; 3]
//! generation u64
//! segment count u16
//! per segment: name_len u16 | file name | data_len u64 | record_count u32
//! entry count u32
//! per entry: segment u16 | name_len u16 | name | step u32 | width u8 |
//!            offset u64 | container_len u64 | raw_len u64 | checksum u64
//! trailer: manifest_xxh64 u64 (over everything above) | magic "ISMX"
//! ```
//!
//! # Segment layout
//!
//! ```text
//! magic "ISSG" | version u8 (3) | shard u16 | reserved u8
//! repeated records (identical grammar to the v1/v2 record region):
//!   name_len u16 | name | step u32 | width u8 | container_len u64 |
//!   ISOBAR container
//! trailer: data_len u64 | record_count u32 |
//!          trailer_xxh64 u64 (over the 12 preceding bytes) | magic "ISGX"
//! ```
//!
//! `data_len` is the byte offset at which the trailer begins, i.e. the
//! length of header plus records. Entry offsets in the manifest are
//! segment-relative.

use crate::error::StoreError;
use crate::format::{
    IndexEntry, CHECKSUM_SEED, MANIFEST_HEADER_LEN, MANIFEST_MAGIC, MANIFEST_TRAILER_LEN,
    MANIFEST_TRAILER_MAGIC, MIN_ENTRY_LEN, SEGMENT_HEADER_LEN, SEGMENT_MAGIC, SEGMENT_TRAILER_LEN,
    SEGMENT_TRAILER_MAGIC, V3_VERSION,
};
use isobar_codecs::xxhash::xxh64;

/// One segment file as the manifest describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name of the segment, relative to the store directory.
    pub file_name: String,
    /// Bytes of header plus records — the offset at which the segment
    /// trailer begins.
    pub data_len: u64,
    /// Number of records in the segment.
    pub record_count: u32,
}

/// One index entry plus the ordinal of the segment that holds its
/// record, in the manifest's segment table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Ordinal into [`Manifest::segments`].
    pub segment: u16,
    /// The entry itself; `offset` is segment-relative.
    pub entry: IndexEntry,
}

/// The decoded manifest of a version-3 store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Commit generation, starting at 0 and incremented by every
    /// writer or compaction that commits a new manifest.
    pub generation: u64,
    /// Segment table; entry ordinals point into this.
    pub segments: Vec<SegmentMeta>,
    /// The whole index, in put order. Later entries supersede earlier
    /// ones for the same `(step, name)`.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Serialize to the complete on-disk manifest byte stream,
    /// including the checksummed trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(V3_VERSION);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u16).to_le_bytes());
        for seg in &self.segments {
            let name = seg.file_name.as_bytes();
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name);
            out.extend_from_slice(&seg.data_len.to_le_bytes());
            out.extend_from_slice(&seg.record_count.to_le_bytes());
        }
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for me in &self.entries {
            out.extend_from_slice(&me.segment.to_le_bytes());
            me.entry.write(&mut out);
        }
        out.extend_from_slice(&xxh64(&out, CHECKSUM_SEED).to_le_bytes());
        out.extend_from_slice(&MANIFEST_TRAILER_MAGIC);
        out
    }

    /// Parse a manifest byte stream. With `verify` on, the trailing
    /// XXH64 must match the bytes it covers; structural validation
    /// (magic, version, bounds on every count and range) happens
    /// either way.
    pub fn decode(data: &[u8], verify: bool) -> Result<Manifest, StoreError> {
        if data.len() < MANIFEST_HEADER_LEN + 8 + 2 + 4 + MANIFEST_TRAILER_LEN {
            return Err(StoreError::Corrupt("manifest too short"));
        }
        if data[..4] != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt("bad manifest magic"));
        }
        if data[4] != V3_VERSION {
            return Err(StoreError::Corrupt("unsupported manifest version"));
        }
        let trailer_at = data.len() - MANIFEST_TRAILER_LEN;
        if data[trailer_at + 8..] != MANIFEST_TRAILER_MAGIC {
            return Err(StoreError::Corrupt("missing manifest trailer"));
        }
        if verify {
            let stored = u64::from_le_bytes(data[trailer_at..trailer_at + 8].try_into().unwrap());
            let actual = xxh64(&data[..trailer_at], CHECKSUM_SEED);
            if stored != actual {
                return Err(StoreError::ChecksumMismatch {
                    offset: 0,
                    expected: stored,
                    actual,
                });
            }
        }
        let body = &data[..trailer_at];
        let mut pos = MANIFEST_HEADER_LEN;
        let generation = u64::from_le_bytes(
            body.get(pos..pos + 8)
                .ok_or(StoreError::Corrupt("manifest truncated"))?
                .try_into()
                .unwrap(),
        );
        pos += 8;
        let seg_count = u16::from_le_bytes(
            body.get(pos..pos + 2)
                .ok_or(StoreError::Corrupt("manifest truncated"))?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 2;
        // Each segment row is at least 2 + 0 + 8 + 4 bytes; bound the
        // claimed count by the remaining bytes before allocating.
        if seg_count * (2 + 8 + 4) > body.len().saturating_sub(pos) {
            return Err(StoreError::Corrupt("segment count exceeds manifest size"));
        }
        let mut segments = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let name_len = u16::from_le_bytes(
                body.get(pos..pos + 2)
                    .ok_or(StoreError::Corrupt("manifest truncated"))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            pos += 2;
            let name = body
                .get(pos..pos + name_len)
                .ok_or(StoreError::Corrupt("manifest truncated"))?;
            let file_name = std::str::from_utf8(name)
                .map_err(|_| StoreError::Corrupt("segment file name is not UTF-8"))?
                .to_string();
            pos += name_len;
            let tail = body
                .get(pos..pos + 12)
                .ok_or(StoreError::Corrupt("manifest truncated"))?;
            pos += 12;
            segments.push(SegmentMeta {
                file_name,
                data_len: u64::from_le_bytes(tail[..8].try_into().unwrap()),
                record_count: u32::from_le_bytes(tail[8..12].try_into().unwrap()),
            });
        }
        let entry_count = u32::from_le_bytes(
            body.get(pos..pos + 4)
                .ok_or(StoreError::Corrupt("manifest truncated"))?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 4;
        // A manifest entry is a segment ordinal plus a v2 index entry
        // (which is at least MIN_ENTRY_LEN bytes even without its
        // checksum field).
        if entry_count * (2 + MIN_ENTRY_LEN) > body.len().saturating_sub(pos) {
            return Err(StoreError::Corrupt("entry count exceeds manifest size"));
        }
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let segment = u16::from_le_bytes(
                body.get(pos..pos + 2)
                    .ok_or(StoreError::Corrupt("manifest truncated"))?
                    .try_into()
                    .unwrap(),
            );
            pos += 2;
            if segment as usize >= segments.len() {
                return Err(StoreError::Corrupt("entry references unknown segment"));
            }
            let (entry, used) = IndexEntry::read(&body[pos..])?;
            pos += used;
            let seg = &segments[segment as usize];
            let end = entry
                .offset
                .checked_add(entry.container_len)
                .ok_or(StoreError::Corrupt("entry range overflow"))?;
            if entry.offset < SEGMENT_HEADER_LEN as u64 || end > seg.data_len {
                return Err(StoreError::Corrupt("entry range outside its segment"));
            }
            entries.push(ManifestEntry { segment, entry });
        }
        if pos != body.len() {
            return Err(StoreError::Corrupt("trailing bytes after manifest index"));
        }
        Ok(Manifest {
            generation,
            segments,
            entries,
        })
    }
}

/// Serialize a segment header for one shard.
pub fn encode_segment_header(shard: u16) -> [u8; SEGMENT_HEADER_LEN] {
    let mut out = [0u8; SEGMENT_HEADER_LEN];
    out[..4].copy_from_slice(&SEGMENT_MAGIC);
    out[4] = V3_VERSION;
    out[5..7].copy_from_slice(&shard.to_le_bytes());
    out
}

/// Validate a segment header, returning the shard ordinal it claims.
pub fn decode_segment_header(data: &[u8]) -> Result<u16, StoreError> {
    if data.len() < SEGMENT_HEADER_LEN {
        return Err(StoreError::Corrupt("segment too short"));
    }
    if data[..4] != SEGMENT_MAGIC {
        return Err(StoreError::Corrupt("bad segment magic"));
    }
    if data[4] != V3_VERSION {
        return Err(StoreError::Corrupt("unsupported segment version"));
    }
    Ok(u16::from_le_bytes(data[5..7].try_into().unwrap()))
}

/// Serialize a segment trailer: `data_len`, `record_count`, the XXH64
/// of those 12 bytes, and the trailer magic.
pub fn encode_segment_trailer(data_len: u64, record_count: u32) -> [u8; SEGMENT_TRAILER_LEN] {
    let mut out = [0u8; SEGMENT_TRAILER_LEN];
    out[..8].copy_from_slice(&data_len.to_le_bytes());
    out[8..12].copy_from_slice(&record_count.to_le_bytes());
    let sum = xxh64(&out[..12], CHECKSUM_SEED);
    out[12..20].copy_from_slice(&sum.to_le_bytes());
    out[20..].copy_from_slice(&SEGMENT_TRAILER_MAGIC);
    out
}

/// Parse and verify the trailer at the end of a segment file, returning
/// `(data_len, record_count)`.
pub fn decode_segment_trailer(file: &[u8]) -> Result<(u64, u32), StoreError> {
    if file.len() < SEGMENT_HEADER_LEN + SEGMENT_TRAILER_LEN {
        return Err(StoreError::Corrupt("segment too short for a trailer"));
    }
    let trailer = &file[file.len() - SEGMENT_TRAILER_LEN..];
    if trailer[20..] != SEGMENT_TRAILER_MAGIC {
        return Err(StoreError::Corrupt("missing segment trailer"));
    }
    let stored = u64::from_le_bytes(trailer[12..20].try_into().unwrap());
    let actual = xxh64(&trailer[..12], CHECKSUM_SEED);
    if stored != actual {
        return Err(StoreError::ChecksumMismatch {
            offset: (file.len() - SEGMENT_TRAILER_LEN + 12) as u64,
            expected: stored,
            actual,
        });
    }
    let data_len = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    let record_count = u32::from_le_bytes(trailer[8..12].try_into().unwrap());
    if data_len < SEGMENT_HEADER_LEN as u64 || data_len > (file.len() - SEGMENT_TRAILER_LEN) as u64
    {
        return Err(StoreError::Corrupt("segment data length out of range"));
    }
    Ok((data_len, record_count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Manifest {
        Manifest {
            generation: 7,
            segments: vec![
                SegmentMeta {
                    file_name: "g0000000000000007-s000.seg".into(),
                    data_len: 1000,
                    record_count: 2,
                },
                SegmentMeta {
                    file_name: "g0000000000000007-s001.seg".into(),
                    data_len: 500,
                    record_count: 1,
                },
            ],
            entries: vec![
                ManifestEntry {
                    segment: 0,
                    entry: IndexEntry {
                        name: "density".into(),
                        step: 3,
                        width: 8,
                        offset: 30,
                        container_len: 400,
                        raw_len: 4000,
                        checksum: 0x1111,
                    },
                },
                ManifestEntry {
                    segment: 1,
                    entry: IndexEntry {
                        name: "potential".into(),
                        step: 3,
                        width: 8,
                        offset: 32,
                        container_len: 200,
                        raw_len: 2000,
                        checksum: 0x2222,
                    },
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = demo();
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes, true).unwrap(), m);
    }

    #[test]
    fn manifest_checksum_damage_is_caught() {
        let mut bytes = demo().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            Manifest::decode(&bytes, true),
            Err(StoreError::ChecksumMismatch { .. }) | Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_truncations_are_rejected() {
        let bytes = demo().encode();
        for cut in [0, 3, 7, 20, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut], false).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn entry_referencing_unknown_segment_is_rejected() {
        let mut m = demo();
        m.entries[0].segment = 9;
        let bytes = m.encode();
        assert!(matches!(
            Manifest::decode(&bytes, false),
            Err(StoreError::Corrupt("entry references unknown segment"))
        ));
    }

    #[test]
    fn entry_range_outside_segment_is_rejected() {
        let mut m = demo();
        m.entries[0].entry.container_len = 10_000;
        let bytes = m.encode();
        assert!(matches!(
            Manifest::decode(&bytes, false),
            Err(StoreError::Corrupt("entry range outside its segment"))
        ));
    }

    #[test]
    fn segment_framing_round_trips() {
        let header = encode_segment_header(5);
        assert_eq!(decode_segment_header(&header).unwrap(), 5);
        let mut file = header.to_vec();
        file.extend_from_slice(&[0xAB; 100]);
        let data_len = file.len() as u64;
        file.extend_from_slice(&encode_segment_trailer(data_len, 3));
        assert_eq!(decode_segment_trailer(&file).unwrap(), (data_len, 3));
    }

    #[test]
    fn segment_trailer_damage_is_caught() {
        let mut file = encode_segment_header(0).to_vec();
        file.extend_from_slice(&[0u8; 64]);
        let data_len = file.len() as u64;
        file.extend_from_slice(&encode_segment_trailer(data_len, 1));
        let at = file.len() - SEGMENT_TRAILER_LEN + 2;
        file[at] ^= 0xFF;
        assert!(decode_segment_trailer(&file).is_err());
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode(), true).unwrap(), m);
    }
}
