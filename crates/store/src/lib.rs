#![warn(missing_docs)]

//! In-situ checkpoint store built on ISOBAR-compress.
//!
//! The paper motivates ISOBAR with checkpoint/restart pipelines: a
//! simulation periodically dumps named variables (density, potential,
//! particle phase, …) and must write them faster than the file system
//! can absorb raw data — losslessly, because a perturbed restart
//! diverges. This crate provides the minimal storage substrate that
//! workflow needs, in the spirit of the ADIOS ecosystem the paper's
//! authors work in:
//!
//! * [`StoreWriter`] — append variables step by step; each variable is
//!   compressed through the full ISOBAR pipeline as it is written, and
//!   committed crash-consistently (shadow file + fsync + atomic
//!   rename; see the [`writer`](StoreWriter) docs).
//! * [`StoreReader`] — random access by `(step, variable)` without
//!   touching unrelated data, via a checksummed index at the end of
//!   the file. Integrity verification is on by default.
//! * [`fsck_store`] / [`salvage_store`] — damage reporting and
//!   best-effort recovery of intact records from a damaged store.
//!
//! # File format (all little-endian)
//!
//! ```text
//! magic "ISST" | version u8            (2 current, 1 legacy)
//! repeated records:
//!   name_len u16 | name bytes | step u32 | width u8 |
//!   container_len u64 | ISOBAR container
//! index (written at close):
//!   per entry: name_len u16 | name | step u32 | width u8 |
//!              offset u64 | container_len u64 | raw_len u64 |
//!              container_xxh64 u64            (v2 only)
//! trailer: index_offset u64 | entry_count u32 |
//!          index_xxh64 u64 |                  (v2 only)
//!          magic "ISSX"
//! ```
//!
//! Version-1 stores (no checksums, 16-byte trailer) are still read;
//! their entries surface `checksum == 0` and are reported by fsck as
//! "legacy, unverifiable".
//!
//! # Example
//!
//! ```no_run
//! use isobar_store::{StoreReader, StoreWriter};
//! use isobar::{IsobarOptions, Preference};
//!
//! # fn demo(density: &[u8], potential: &[u8]) -> Result<(), isobar_store::StoreError> {
//! let mut writer = StoreWriter::create("run.isst", IsobarOptions {
//!     preference: Preference::Speed,
//!     ..Default::default()
//! })?;
//! writer.put(0, "density", density, 8)?;
//! writer.put(0, "potential", potential, 8)?;
//! writer.close()?;
//!
//! let reader = StoreReader::open("run.isst")?;
//! let restored = reader.get(0, "density")?;
//! assert_eq!(restored, density);
//! # Ok(()) }
//! ```

mod error;
mod format;
mod pipelined;
mod reader;
mod salvage;
mod vfs;
mod writer;

pub use error::StoreError;
pub use format::{
    entry_checksum, trailer_len, IndexEntry, CHECKSUM_SEED, LEGACY_VERSION, MAGIC, MIN_ENTRY_LEN,
    TRAILER_LEN, TRAILER_MAGIC, TRAILER_V1_LEN, VERSION,
};
pub use pipelined::PipelinedStoreWriter;
pub use reader::StoreReader;
pub use salvage::{
    fsck_store, salvage_store, EntryHealth, EntryStatus, StoreFsckReport, StoreSalvageReport,
};
pub use vfs::{RealFile, RealFs, StoreFile, StoreFs};
pub use writer::{wip_path, StoreWriter};
