#![warn(missing_docs)]

//! In-situ checkpoint store built on ISOBAR-compress.
//!
//! The paper motivates ISOBAR with checkpoint/restart pipelines: a
//! simulation periodically dumps named variables (density, potential,
//! particle phase, …) and must write them faster than the file system
//! can absorb raw data — losslessly, because a perturbed restart
//! diverges. This crate provides the minimal storage substrate that
//! workflow needs, in the spirit of the ADIOS ecosystem the paper's
//! authors work in:
//!
//! * [`StoreWriter`] — append variables step by step; each variable is
//!   compressed through the full ISOBAR pipeline as it is written.
//! * [`StoreReader`] — random access by `(step, variable)` without
//!   touching unrelated data, via an index at the end of the file.
//!
//! # File format (all little-endian)
//!
//! ```text
//! magic "ISST" | version u8
//! repeated records:
//!   name_len u16 | name bytes | step u32 | width u8 |
//!   container_len u64 | ISOBAR container
//! index (written at close):
//!   per entry: name_len u16 | name | step u32 | offset u64 |
//!              container_len u64 | raw_len u64
//! trailer: index_offset u64 | entry_count u32 | magic "ISSX"
//! ```
//!
//! # Example
//!
//! ```no_run
//! use isobar_store::{StoreReader, StoreWriter};
//! use isobar::{IsobarOptions, Preference};
//!
//! # fn demo(density: &[u8], potential: &[u8]) -> Result<(), isobar_store::StoreError> {
//! let mut writer = StoreWriter::create("run.isst", IsobarOptions {
//!     preference: Preference::Speed,
//!     ..Default::default()
//! })?;
//! writer.put(0, "density", density, 8)?;
//! writer.put(0, "potential", potential, 8)?;
//! writer.close()?;
//!
//! let reader = StoreReader::open("run.isst")?;
//! let restored = reader.get(0, "density")?;
//! assert_eq!(restored, density);
//! # Ok(()) }
//! ```

mod error;
mod format;
mod pipelined;
mod reader;
mod writer;

pub use error::StoreError;
pub use format::{IndexEntry, MAGIC, MIN_ENTRY_LEN, TRAILER_LEN, TRAILER_MAGIC, VERSION};
pub use pipelined::PipelinedStoreWriter;
pub use reader::StoreReader;
pub use writer::StoreWriter;
