//! Canonical Huffman coding with length-limited code construction.
//!
//! Both solvers entropy-code with canonical Huffman codes: DEFLATE limits
//! code lengths to 15 bits (7 for the code-length alphabet), the bzip2
//! codec to 20. Lengths are computed with the package-merge algorithm,
//! which is optimal under a length limit — unlike the heuristic
//! "build-then-flatten" approach, it never produces a suboptimal Kraft
//! packing. Alphabets here are small (≤ 290 symbols), so the simple
//! list-based package-merge is more than fast enough.

use crate::bitio::{LsbBitReader, LsbBitWriter, MsbBitReader, MsbBitWriter};
use crate::codec::CodecError;

/// Maximum supported code length (fits the `u32` code registers).
pub const MAX_SUPPORTED_LEN: u8 = 24;

/// Package-merge arena node: a leaf symbol or a merged pair.
enum Node {
    Leaf(u16),
    Pair(u32, u32),
}

/// Reusable working memory for [`package_merge_into`].
///
/// The lists package-merge builds are bounded by the alphabet size times
/// the length limit, so after one warm-up run the buffers never grow
/// again and repeated code constructions stay off the allocator.
#[derive(Default)]
pub struct PackageMergeScratch {
    leaves: Vec<(u64, u16)>,
    arena: Vec<Node>,
    singletons: Vec<(u64, u32)>,
    current: Vec<(u64, u32)>,
    next: Vec<(u64, u32)>,
    merged: Vec<(u64, u32)>,
    stack: Vec<u32>,
}

impl PackageMergeScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute optimal length-limited code lengths for `freqs`.
///
/// Returns one length per symbol; symbols with zero frequency get length
/// 0 (no code). If only one symbol occurs it is assigned length 1, as
/// both container formats require at least one bit per symbol.
///
/// # Panics
///
/// Panics if `max_len` is 0, exceeds [`MAX_SUPPORTED_LEN`], or cannot
/// accommodate the number of distinct symbols (`2^max_len` codes).
pub fn package_merge(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let mut lengths = vec![0u8; freqs.len()];
    package_merge_into(
        freqs,
        max_len,
        &mut PackageMergeScratch::default(),
        &mut lengths,
    );
    lengths
}

/// [`package_merge`] writing into caller-owned `lengths` and borrowing
/// all intermediate lists from `scratch`.
///
/// `lengths` must have exactly one slot per symbol; it is fully
/// overwritten.
pub fn package_merge_into(
    freqs: &[u64],
    max_len: u8,
    s: &mut PackageMergeScratch,
    lengths: &mut [u8],
) {
    assert!((1..=MAX_SUPPORTED_LEN).contains(&max_len));
    assert_eq!(lengths.len(), freqs.len(), "one length slot per symbol");
    lengths.fill(0);
    s.leaves.clear();
    s.leaves.extend(
        freqs
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(sym, &f)| (f, sym as u16)),
    );
    match s.leaves.len() {
        0 => return,
        1 => {
            lengths[s.leaves[0].1 as usize] = 1;
            return;
        }
        n => assert!(
            (n as u64) <= 1u64 << max_len,
            "{n} symbols cannot fit in {max_len}-bit codes"
        ),
    }
    s.leaves.sort_unstable();

    // Package-merge with packages stored in an arena as binary trees;
    // `level` runs from the deepest tree level up. After `max_len`
    // rounds, the cheapest 2·(n−1) packages tell us how often each
    // leaf is "used", which is exactly its code length. Arena nodes
    // make the merge O(n·L) instead of cloning symbol lists.
    s.arena.clear();
    s.singletons.clear();
    // Singleton packages, sorted by weight: (weight, arena index).
    for &(w, sym) in &s.leaves {
        s.arena.push(Node::Leaf(sym));
        s.singletons.push((w, s.arena.len() as u32 - 1));
    }

    s.current.clear();
    s.current.extend_from_slice(&s.singletons);
    for _ in 1..max_len {
        s.next.clear();
        for pair in s.current.chunks_exact(2) {
            s.arena.push(Node::Pair(pair[0].1, pair[1].1));
            s.next
                .push((pair[0].0 + pair[1].0, s.arena.len() as u32 - 1));
        }
        // Both `next` (so far) and `singletons` are weight-sorted:
        // merge instead of re-sorting.
        let packaged = s.next.len();
        s.next.extend_from_slice(&s.singletons);
        merge_sorted_halves(&mut s.next, packaged, &mut s.merged);
        std::mem::swap(&mut s.current, &mut s.next);
    }

    // Count leaf occurrences in the cheapest 2(n−1) packages with an
    // explicit stack (package trees can be max_len deep).
    s.stack.clear();
    s.stack.extend(
        s.current
            .iter()
            .take(2 * (s.leaves.len() - 1))
            .map(|&(_, idx)| idx),
    );
    while let Some(idx) = s.stack.pop() {
        match s.arena[idx as usize] {
            Node::Leaf(sym) => lengths[sym as usize] += 1,
            Node::Pair(a, b) => {
                s.stack.push(a);
                s.stack.push(b);
            }
        }
    }
}

/// Merge a slice whose `[..mid]` and `[mid..]` halves are each sorted
/// by weight into a single sorted order (stable; ties keep the
/// packaged-before-singleton order the algorithm expects). `merged` is
/// a reusable spill buffer; on return it holds the pre-merge contents.
fn merge_sorted_halves(items: &mut Vec<(u64, u32)>, mid: usize, merged: &mut Vec<(u64, u32)>) {
    merged.clear();
    let (mut i, mut j) = (0usize, mid);
    while i < mid && j < items.len() {
        if items[i].0 <= items[j].0 {
            merged.push(items[i]);
            i += 1;
        } else {
            merged.push(items[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&items[i..mid]);
    merged.extend_from_slice(&items[j..]);
    std::mem::swap(items, merged);
}

/// Assign canonical code values to `lengths` (RFC 1951 §3.2.2 rules:
/// shorter codes first, ties broken by symbol order).
///
/// Returns the code value for each symbol, MSB-first. Symbols with
/// length 0 get code 0 (unused).
pub fn canonical_codes(lengths: &[u8]) -> Vec<u32> {
    let mut codes = Vec::new();
    canonical_codes_into(lengths, &mut codes);
    codes
}

/// [`canonical_codes`] writing into a caller-owned buffer. The per-length
/// bookkeeping lives in stack arrays, so a warm `codes` buffer makes the
/// whole assignment allocation-free.
pub fn canonical_codes_into(lengths: &[u8], codes: &mut Vec<u32>) {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    debug_assert!(max_len <= MAX_SUPPORTED_LEN);
    let mut len_count = [0u32; MAX_SUPPORTED_LEN as usize + 1];
    for &len in lengths {
        len_count[len as usize] += 1;
    }
    len_count[0] = 0;
    let mut next_code = [0u32; MAX_SUPPORTED_LEN as usize + 2];
    let mut code = 0u32;
    for len in 1..=max_len as usize {
        code = (code + len_count[len - 1]) << 1;
        next_code[len] = code;
    }
    codes.clear();
    codes.extend(lengths.iter().map(|&len| {
        if len == 0 {
            0
        } else {
            let c = next_code[len as usize];
            next_code[len as usize] += 1;
            c
        }
    }));
}

/// Reverse the low `len` bits of `code` (for LSB-first bit streams).
#[inline]
pub fn reverse_bits(code: u32, len: u8) -> u32 {
    code.reverse_bits() >> (32 - len as u32)
}

/// Encoding table: canonical codes plus their bit-reversed twins so the
/// hot path has no per-symbol reversal.
///
/// An encoder can be rebuilt in place ([`HuffmanEncoder::rebuild_from_freqs`],
/// [`HuffmanEncoder::rebuild_from_lengths`]): the internal tables are
/// reused, so rebuilding for a same-sized alphabet never allocates.
#[derive(Debug, Clone, Default)]
pub struct HuffmanEncoder {
    lengths: Vec<u8>,
    /// Canonical (MSB-first) code values.
    codes: Vec<u32>,
    /// Bit-reversed codes for LSB-first (DEFLATE) streams.
    rev_codes: Vec<u32>,
}

impl HuffmanEncoder {
    /// Build an encoder from per-symbol code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let mut enc = HuffmanEncoder::default();
        enc.rebuild_from_lengths(lengths);
        enc
    }

    /// Build optimal length-limited lengths from frequencies, then the
    /// encoder for them.
    pub fn from_freqs(freqs: &[u64], max_len: u8) -> Self {
        Self::from_lengths(&package_merge(freqs, max_len))
    }

    /// Replace this encoder's code with one built from `lengths`,
    /// reusing the internal tables.
    pub fn rebuild_from_lengths(&mut self, lengths: &[u8]) {
        self.lengths.clear();
        self.lengths.extend_from_slice(lengths);
        canonical_codes_into(&self.lengths, &mut self.codes);
        self.rev_codes.clear();
        self.rev_codes
            .extend(self.codes.iter().zip(&self.lengths).map(|(&c, &l)| {
                if l == 0 {
                    0
                } else {
                    reverse_bits(c, l)
                }
            }));
    }

    /// Replace this encoder's code with an optimal length-limited one
    /// for `freqs`, borrowing package-merge working memory from `pm`.
    pub fn rebuild_from_freqs(&mut self, freqs: &[u64], max_len: u8, pm: &mut PackageMergeScratch) {
        self.lengths.clear();
        self.lengths.resize(freqs.len(), 0);
        package_merge_into(freqs, max_len, pm, &mut self.lengths);
        canonical_codes_into(&self.lengths, &mut self.codes);
        self.rev_codes.clear();
        self.rev_codes
            .extend(self.codes.iter().zip(&self.lengths).map(|(&c, &l)| {
                if l == 0 {
                    0
                } else {
                    reverse_bits(c, l)
                }
            }));
    }

    /// Code length for `sym` (0 = unused symbol).
    #[inline]
    pub fn len(&self, sym: usize) -> u8 {
        self.lengths[sym]
    }

    /// Per-symbol code lengths.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Canonical MSB-first code value for `sym`.
    #[inline]
    pub fn code(&self, sym: usize) -> u32 {
        self.codes[sym]
    }

    /// Emit `sym` into an LSB-first (DEFLATE) stream.
    #[inline]
    pub fn write_lsb(&self, w: &mut LsbBitWriter, sym: usize) {
        debug_assert!(self.lengths[sym] > 0, "symbol {sym} has no code");
        w.write_bits(self.rev_codes[sym], self.lengths[sym] as u32);
    }

    /// Bit-reversed (LSB-first) code and its length for `sym`, for
    /// callers that fuse the code with trailing extra bits into a single
    /// [`LsbBitWriter::write_bits`] call.
    #[inline]
    pub fn code_lsb(&self, sym: usize) -> (u32, u32) {
        debug_assert!(self.lengths[sym] > 0, "symbol {sym} has no code");
        (self.rev_codes[sym], self.lengths[sym] as u32)
    }

    /// Emit `sym` into an MSB-first (bzip2) stream.
    #[inline]
    pub fn write_msb(&self, w: &mut MsbBitWriter, sym: usize) {
        debug_assert!(self.lengths[sym] > 0, "symbol {sym} has no code");
        w.write_bits(self.codes[sym], self.lengths[sym] as u32);
    }

    /// Total encoded size in bits of a message with the given symbol
    /// frequencies — used for block-type cost comparisons.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }
}

/// Canonical decoding tables (count/offset per length).
///
/// Decoding walks the code one bit at a time, comparing against the
/// first-code of each length; with ≤ 20-bit codes this stays cheap and
/// avoids large lookup tables.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `first_code[len]` — canonical value of the first code of `len` bits.
    first_code: Vec<u32>,
    /// `first_index[len]` — index into `symbols` of that first code.
    first_index: Vec<u32>,
    /// Number of codes of each length.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u16>,
    max_len: u8,
}

impl HuffmanDecoder {
    /// Build a decoder from per-symbol code lengths.
    ///
    /// Rejects over-subscribed length sets (Kraft sum > 1), which could
    /// otherwise make two codes ambiguous. Incomplete sets are accepted
    /// (DEFLATE permits them for distance codes); reads that fall in the
    /// gap surface as [`CodecError::Corrupt`].
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > MAX_SUPPORTED_LEN {
            return Err(CodecError::Corrupt("code length exceeds supported maximum"));
        }
        let mut count = vec![0u32; max_len as usize + 1];
        for &len in lengths {
            count[len as usize] += 1;
        }
        count[0] = 0;

        // Kraft check: sum of 2^(max-len) must not exceed 2^max.
        let kraft: u64 = count
            .iter()
            .enumerate()
            .skip(1)
            .map(|(len, &c)| (c as u64) << (max_len as usize - len))
            .sum();
        if max_len > 0 && kraft > 1u64 << max_len {
            return Err(CodecError::Corrupt("over-subscribed Huffman code"));
        }

        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }

        let mut symbols = vec![0u16; index as usize];
        let mut next = first_index.clone();
        for (sym, &len) in lengths.iter().enumerate() {
            if len > 0 {
                symbols[next[len as usize] as usize] = sym as u16;
                next[len as usize] += 1;
            }
        }

        Ok(HuffmanDecoder {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        })
    }

    #[inline]
    fn lookup(&self, code: u32, len: usize) -> Option<u16> {
        let offset = code.wrapping_sub(self.first_code[len]);
        if offset < self.count[len] {
            Some(self.symbols[(self.first_index[len] + offset) as usize])
        } else {
            None
        }
    }

    /// Decode one symbol from an LSB-first (DEFLATE) stream.
    #[inline]
    pub fn decode_lsb(&self, r: &mut LsbBitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()?;
            if let Some(sym) = self.lookup(code, len) {
                return Ok(sym);
            }
        }
        Err(CodecError::Corrupt("invalid Huffman code"))
    }

    /// Decode one symbol from an MSB-first (bzip2) stream.
    #[inline]
    pub fn decode_msb(&self, r: &mut MsbBitReader<'_>) -> Result<u16, CodecError> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()?;
            if let Some(sym) = self.lookup(code, len) {
                return Ok(sym);
            }
        }
        Err(CodecError::Corrupt("invalid Huffman code"))
    }
}

/// Bits resolved by the primary lookup table of [`FastDecoder`].
pub const FAST_ROOT_BITS: u32 = 10;

#[derive(Debug, Clone, Copy, Default)]
struct FastEntry {
    /// Decoded symbol, or base index into the secondary table when
    /// `escape` is set.
    sym: u16,
    /// Bits to consume (full code length); 0 marks an unassigned slot
    /// of an incomplete code.
    len: u8,
    /// Slot requires a secondary-table lookup.
    escape: bool,
}

/// Table-driven canonical Huffman decoder for LSB-first (DEFLATE)
/// streams: one `2^10` primary lookup resolves codes up to 10 bits in a
/// single probe; longer codes (≤ 15 in DEFLATE) escape to per-prefix
/// secondary tables. This is the classic zlib `inflate` structure and
/// decodes several times faster than bit-at-a-time walking.
#[derive(Debug, Clone)]
pub struct FastDecoder {
    primary: Vec<FastEntry>,
    secondary: Vec<FastEntry>,
}

impl FastDecoder {
    /// Build from per-symbol code lengths (max length ≤ 15).
    ///
    /// Same validity rules as [`HuffmanDecoder::from_lengths`]:
    /// over-subscribed sets are rejected, incomplete sets decode to
    /// [`CodecError::Corrupt`] when a gap is hit.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, CodecError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len > 15 {
            return Err(CodecError::Corrupt("fast decoder supports ≤ 15-bit codes"));
        }
        // Reuse the validation logic (Kraft check) of the slow decoder.
        HuffmanDecoder::from_lengths(lengths)?;
        let codes = canonical_codes(lengths);

        let mut primary = vec![FastEntry::default(); 1 << FAST_ROOT_BITS];

        // Short codes: fill every primary slot whose low `len` bits
        // match the bit-reversed code.
        for (sym, (&len, &code)) in lengths.iter().zip(&codes).enumerate() {
            if len == 0 || len as u32 > FAST_ROOT_BITS {
                continue;
            }
            let rev = reverse_bits(code, len) as usize;
            let stride = 1usize << len;
            let mut slot = rev;
            while slot < primary.len() {
                primary[slot] = FastEntry {
                    sym: sym as u16,
                    len,
                    escape: false,
                };
                slot += stride;
            }
        }

        // Long codes: group by their first FAST_ROOT_BITS stream bits.
        let mut secondary: Vec<FastEntry> = Vec::new();
        let root_mask = (1usize << FAST_ROOT_BITS) - 1;
        let mut groups: std::collections::BTreeMap<usize, Vec<u16>> =
            std::collections::BTreeMap::new();
        for (sym, &len) in lengths.iter().enumerate() {
            if len as u32 > FAST_ROOT_BITS {
                let rev = reverse_bits(codes[sym], len) as usize;
                groups.entry(rev & root_mask).or_default().push(sym as u16);
            }
        }
        for (prefix, syms) in groups {
            let sub_bits = syms
                .iter()
                .map(|&s| lengths[s as usize] as u32 - FAST_ROOT_BITS)
                .max()
                .ok_or(CodecError::Corrupt("empty escape group"))?;
            let base = secondary.len();
            secondary.resize(base + (1usize << sub_bits), FastEntry::default());
            for &sym in &syms {
                let len = lengths[sym as usize];
                let rev = reverse_bits(codes[sym as usize], len) as usize;
                let high = rev >> FAST_ROOT_BITS; // bits after the root window
                let stride = 1usize << (len as u32 - FAST_ROOT_BITS);
                let mut slot = high;
                while slot < 1usize << sub_bits {
                    secondary[base + slot] = FastEntry {
                        sym,
                        len,
                        escape: false,
                    };
                    slot += stride;
                }
            }
            primary[prefix] = FastEntry {
                sym: base as u16,
                len: sub_bits as u8,
                escape: true,
            };
        }

        Ok(FastDecoder { primary, secondary })
    }

    /// Decode one symbol from an LSB-first stream.
    #[inline]
    pub fn decode_lsb(&self, r: &mut LsbBitReader<'_>) -> Result<u16, CodecError> {
        let window = r.peek_bits(FAST_ROOT_BITS) as usize;
        let entry = self.primary[window];
        if !entry.escape {
            if entry.len == 0 {
                // Unassigned slot: either an incomplete-code gap or a
                // truncated stream (peek zero-fills past the end).
                return Err(CodecError::Corrupt("invalid Huffman code"));
            }
            r.consume(entry.len as u32)?;
            return Ok(entry.sym);
        }
        let sub_bits = entry.len as u32;
        let long = r.peek_bits(FAST_ROOT_BITS + sub_bits) as usize;
        let sub = self.secondary[entry.sym as usize + (long >> FAST_ROOT_BITS)];
        if sub.len == 0 {
            return Err(CodecError::Corrupt("invalid Huffman code"));
        }
        r.consume(sub.len as u32)?;
        Ok(sub.sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraft_sum(lengths: &[u8]) -> f64 {
        lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 0.5f64.powi(l as i32))
            .sum()
    }

    #[test]
    fn package_merge_handles_trivial_alphabets() {
        assert_eq!(package_merge(&[], 15), Vec::<u8>::new());
        assert_eq!(package_merge(&[0, 0, 0], 15), vec![0, 0, 0]);
        assert_eq!(package_merge(&[0, 7, 0], 15), vec![0, 1, 0]);
        // Two symbols: one bit each regardless of skew.
        assert_eq!(package_merge(&[1, 1000], 15), vec![1, 1]);
    }

    #[test]
    fn package_merge_matches_unlimited_huffman_on_balanced_input() {
        // Uniform frequencies over a power-of-two alphabet: all lengths
        // equal log2(n).
        let lens = package_merge(&[5; 8], 15);
        assert!(lens.iter().all(|&l| l == 3));
    }

    #[test]
    fn package_merge_respects_length_limit() {
        // Fibonacci-ish frequencies force deep trees without a limit.
        let freqs: Vec<u64> = vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377];
        for limit in [4u8, 5, 8, 15] {
            let lens = package_merge(&freqs, limit);
            assert!(lens.iter().all(|&l| l <= limit), "limit {limit}: {lens:?}");
            let k = kraft_sum(&lens);
            assert!(k <= 1.0 + 1e-12, "limit {limit}: Kraft sum {k}");
        }
    }

    #[test]
    fn package_merge_is_optimal_against_entropy() {
        // The weighted length must be within 1 bit/symbol of entropy
        // when the limit is generous (standard Huffman bound).
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let total: u64 = freqs.iter().sum();
        let lens = package_merge(&freqs, 15);
        let avg_len: f64 = freqs
            .iter()
            .zip(&lens)
            .map(|(&f, &l)| f as f64 * l as f64)
            .sum::<f64>()
            / total as f64;
        let entropy: f64 = freqs
            .iter()
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        assert!(avg_len >= entropy - 1e-9);
        assert!(avg_len < entropy + 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn package_merge_rejects_impossible_limits() {
        package_merge(&[1; 9], 3);
    }

    #[test]
    fn rebuilt_encoder_matches_fresh_build_across_scratch_reuse() {
        // One scratch and one encoder carried across differently-shaped
        // alphabets must produce the same tables as fresh builds.
        let mut pm = PackageMergeScratch::new();
        let mut enc = HuffmanEncoder::default();
        let freq_sets: Vec<Vec<u64>> = vec![
            (0..64u64).map(|i| 1 + (i * 37) % 101).collect(),
            vec![0; 300],
            (0..286u64).map(|i| i % 5).collect(),
            vec![0, 42, 0],
            vec![1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144],
        ];
        for freqs in &freq_sets {
            enc.rebuild_from_freqs(freqs, 15, &mut pm);
            let fresh = HuffmanEncoder::from_freqs(freqs, 15);
            assert_eq!(enc.lengths(), fresh.lengths(), "freqs {freqs:?}");
            for sym in 0..freqs.len() {
                assert_eq!(enc.code(sym), fresh.code(sym), "sym {sym}");
            }
        }
    }

    #[test]
    fn canonical_codes_follow_rfc1951_example() {
        // RFC 1951 §3.2.2 worked example: lengths (3,3,3,3,3,2,4,4)
        // produce codes 010..111, 00, 1110, 1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn reverse_bits_matches_manual_reversal() {
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
    }

    #[test]
    fn encode_decode_round_trip_lsb_and_msb() {
        let freqs: Vec<u64> = (0..64u64).map(|i| 1 + (i * 37) % 101).collect();
        let enc = HuffmanEncoder::from_freqs(&freqs, 15);
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();

        let message: Vec<usize> = (0..4096).map(|i| (i * 17 + i / 7) % 64).collect();

        let mut lw = LsbBitWriter::new();
        let mut mw = MsbBitWriter::new();
        for &sym in &message {
            enc.write_lsb(&mut lw, sym);
            enc.write_msb(&mut mw, sym);
        }
        let lbytes = lw.finish();
        let mbytes = mw.finish();

        let mut lr = LsbBitReader::new(&lbytes);
        let mut mr = MsbBitReader::new(&mbytes);
        for &sym in &message {
            assert_eq!(dec.decode_lsb(&mut lr).unwrap() as usize, sym);
            assert_eq!(dec.decode_msb(&mut mr).unwrap() as usize, sym);
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed_lengths() {
        // Three 1-bit codes cannot coexist.
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decoder_accepts_incomplete_code_but_flags_gap() {
        // Single 2-bit code: valid (DEFLATE allows it for distances),
        // but a read hitting the unassigned space must error.
        let dec = HuffmanDecoder::from_lengths(&[2]).unwrap();
        let mut w = LsbBitWriter::new();
        w.write_bits(0b11, 2); // canonical code for the symbol is 00
        w.write_bits(0, 6);
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        assert!(dec.decode_lsb(&mut r).is_err());
    }

    #[test]
    fn cost_bits_matches_sum_of_lengths() {
        let freqs = [10u64, 1, 0, 5];
        let enc = HuffmanEncoder::from_freqs(&freqs, 15);
        let expected: u64 = freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * enc.len(s) as u64)
            .sum();
        assert_eq!(enc.cost_bits(&freqs), expected);
    }

    #[test]
    fn fast_decoder_matches_slow_decoder() {
        // Skewed frequencies over a large alphabet force code lengths
        // on both sides of the 10-bit root window.
        let freqs: Vec<u64> = (0..286u64).map(|i| 1 + (1 << (i % 14))).collect();
        let enc = HuffmanEncoder::from_freqs(&freqs, 15);
        assert!(
            enc.lengths().iter().any(|&l| l > 10),
            "need long codes to exercise the secondary tables"
        );
        assert!(enc.lengths().iter().any(|&l| (1..=10).contains(&l)));
        let slow = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let fast = FastDecoder::from_lengths(enc.lengths()).unwrap();

        let message: Vec<usize> = (0..20_000).map(|i| (i * 131 + i / 3) % 286).collect();
        let mut w = LsbBitWriter::new();
        for &sym in &message {
            enc.write_lsb(&mut w, sym);
        }
        let bytes = w.finish();

        let mut r1 = LsbBitReader::new(&bytes);
        let mut r2 = LsbBitReader::new(&bytes);
        for &sym in &message {
            assert_eq!(slow.decode_lsb(&mut r1).unwrap() as usize, sym);
            assert_eq!(fast.decode_lsb(&mut r2).unwrap() as usize, sym);
        }
    }

    #[test]
    fn fast_decoder_rejects_truncation_and_gaps() {
        let enc = HuffmanEncoder::from_freqs(&[5u64, 3, 2, 1, 1], 15);
        let fast = FastDecoder::from_lengths(enc.lengths()).unwrap();
        // Empty stream: the peek zero-fills, consume must fail (or the
        // zero pattern is an unassigned slot).
        let mut r = LsbBitReader::new(&[]);
        assert!(fast.decode_lsb(&mut r).is_err());

        // Incomplete code: single 2-bit code leaves gaps.
        let fast = FastDecoder::from_lengths(&[2]).unwrap();
        let mut w = LsbBitWriter::new();
        w.write_bits(0b11, 2);
        w.write_bits(0, 6);
        let bytes = w.finish();
        let mut r = LsbBitReader::new(&bytes);
        assert!(fast.decode_lsb(&mut r).is_err());
    }

    #[test]
    fn fast_decoder_rejects_unsupported_lengths() {
        // A 16-bit code is fine for the generic decoder but outside the
        // fast decoder's supported range.
        let mut lengths = vec![1u8];
        lengths.push(16);
        assert!(FastDecoder::from_lengths(&lengths).is_err());
        assert!(HuffmanDecoder::from_lengths(&lengths).is_ok());
    }

    #[test]
    fn single_symbol_alphabet_round_trips() {
        let enc = HuffmanEncoder::from_freqs(&[0, 42, 0], 15);
        assert_eq!(enc.len(1), 1);
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut w = MsbBitWriter::new();
        for _ in 0..17 {
            enc.write_msb(&mut w, 1);
        }
        let bytes = w.finish();
        let mut r = MsbBitReader::new(&bytes);
        for _ in 0..17 {
            assert_eq!(dec.decode_msb(&mut r).unwrap(), 1);
        }
    }
}
