//! Compaction of version-3 sharded stores.
//!
//! Generations only ever append: superseding an entry leaves the old
//! record's bytes in place, and a long-running checkpoint cycle
//! accumulates dead data. Compaction rewrites every *live* entry into
//! a fresh generation whose manifest references only the new segments,
//! commits it through the same two-phase protocol as a normal close,
//! and then deletes every file the new manifest does not reference —
//! old segments and any orphans a crashed writer left behind.
//!
//! Records are copied container-for-container (no decompress/
//! recompress round trip), verified against their index checksums on
//! the way through. A crash at any point leaves either the old
//! manifest (with all its segments still present) or the new one — the
//! deletes happen strictly after the manifest swap commits.

use crate::error::StoreError;
use crate::format::{is_segment_file_name, MANIFEST_FILE};
use crate::reader::StoreReader;
use crate::sharded::{ShardedOptions, ShardedStoreWriter};
use isobar::telemetry::{Counter, Recorder};
use isobar::IsobarOptions;
use std::path::{Path, PathBuf};

/// What one compaction pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Live entries carried into the new generation.
    pub entries_kept: usize,
    /// Superseded entries left behind.
    pub entries_dropped: usize,
    /// Old-generation segments and orphan files deleted after the new
    /// manifest committed.
    pub files_removed: usize,
    /// Bytes of dead record data reclaimed (sum of dropped entries'
    /// containers; directory metadata not counted).
    pub bytes_reclaimed: u64,
}

impl CompactReport {
    /// Whether the pass found anything to reclaim.
    pub fn reclaimed_anything(&self) -> bool {
        self.files_removed > 0 || self.bytes_reclaimed > 0
    }
}

/// Rewrite the version-3 store at `dir` down to its live entries.
///
/// `shards` controls the new generation's segment count (`None` keeps
/// the default). Returns what was kept, dropped, and reclaimed. Safe
/// against crashes at any point: the new generation commits before any
/// old file is unlinked.
pub fn compact_store(
    dir: impl AsRef<Path>,
    shards: Option<u16>,
) -> Result<CompactReport, StoreError> {
    let mut recorder = Recorder::new();
    compact_store_recorded(dir, shards, &mut recorder)
}

/// [`compact_store`], bumping [`Counter::StoreCompactionsRun`] (and the
/// sharded writer's commit counters) in `recorder`.
pub fn compact_store_recorded(
    dir: impl AsRef<Path>,
    shards: Option<u16>,
    recorder: &mut Recorder,
) -> Result<CompactReport, StoreError> {
    let dir = dir.as_ref();
    let _span = isobar::trace::span(
        isobar::trace::TraceTag::StoreCompact,
        isobar::trace::NO_CHUNK,
    );
    if !dir.is_dir() {
        return Err(StoreError::Corrupt(
            "compaction applies to sharded (v3) store directories",
        ));
    }
    let reader = StoreReader::open(dir)?;
    // Mark each index position live (last entry per (step, name) wins)
    // by identity, so identical-looking duplicates cannot confuse the
    // byte accounting.
    let mut seen = std::collections::HashSet::new();
    let mut live_at = vec![false; reader.entries().len()];
    for (i, e) in reader.entries().iter().enumerate().rev() {
        if seen.insert((e.step, e.name.clone())) {
            live_at[i] = true;
        }
    }
    let live: Vec<_> = reader
        .entries()
        .iter()
        .zip(&live_at)
        .filter(|(_, live)| **live)
        .map(|(e, _)| e.clone())
        .collect();
    let entries_dropped = reader.entries().len() - live.len();
    let bytes_reclaimed: u64 = reader
        .entries()
        .iter()
        .zip(&live_at)
        .filter(|(_, live)| !**live)
        .map(|(e, _)| e.container_len)
        .sum();

    let sharded = ShardedOptions {
        shards: shards.unwrap_or(ShardedOptions::default().shards),
        ..ShardedOptions::default()
    };
    let writer = ShardedStoreWriter::create(dir, IsobarOptions::default(), sharded)?;
    for entry in &live {
        let container = reader.get_container(entry)?;
        writer.put_container(
            entry.step,
            &entry.name,
            entry.width,
            container,
            entry.raw_len,
        )?;
    }
    drop(reader);

    // Commit the compacted generation, then rebuild its manifest to
    // reference only the new segments: close() appends to the prior
    // manifest, so compaction swaps in a pruned one.
    let report = writer.close()?;
    let pruned = prune_manifest_to_generation(dir, report.generation)?;

    // Only now is it safe to unlink: everything the pruned manifest
    // does not reference is dead, including orphans from old crashes.
    let files_removed = sweep_unreferenced(dir, &pruned)?;

    recorder.incr(Counter::StoreCompactionsRun);
    recorder.absorb_snapshot(&report.telemetry);

    Ok(CompactReport {
        entries_kept: live.len(),
        entries_dropped,
        files_removed,
        bytes_reclaimed,
    })
}

/// Run [`compact_store`] on a background thread, returning its handle.
/// The store stays fully readable while the pass runs; the manifest
/// swap is atomic, so readers opening mid-compaction see the old or
/// the new generation, never a mix.
pub fn compact_store_background(
    dir: impl AsRef<Path>,
    shards: Option<u16>,
) -> std::thread::JoinHandle<Result<CompactReport, StoreError>> {
    let dir = dir.as_ref().to_path_buf();
    std::thread::spawn(move || {
        let result = compact_store(&dir, shards);
        isobar::trace::flush_thread();
        result
    })
}

/// Drop every manifest row (segment or entry) that predates
/// `generation`, committing the pruned manifest via shadow write +
/// rename. Returns the file names the pruned manifest references.
fn prune_manifest_to_generation(dir: &Path, generation: u64) -> Result<Vec<String>, StoreError> {
    use crate::manifest::{Manifest, ManifestEntry, SegmentMeta};
    use crate::vfs::{RealFs, StoreFile, StoreFs};

    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest = Manifest::decode(&std::fs::read(&manifest_path)?, true)?;
    let keep_prefix = format!("g{generation:016x}-");
    let mut segments: Vec<SegmentMeta> = Vec::new();
    let mut ordinal_map = vec![None::<u16>; manifest.segments.len()];
    for (i, seg) in manifest.segments.iter().enumerate() {
        if seg.file_name.starts_with(&keep_prefix) {
            ordinal_map[i] = Some(segments.len() as u16);
            segments.push(seg.clone());
        }
    }
    let entries: Vec<ManifestEntry> = manifest
        .entries
        .into_iter()
        .filter_map(|me| {
            ordinal_map[me.segment as usize].map(|segment| ManifestEntry {
                segment,
                entry: me.entry,
            })
        })
        .collect();
    let pruned = Manifest {
        generation,
        segments,
        entries,
    };
    let referenced = pruned
        .segments
        .iter()
        .map(|s| s.file_name.clone())
        .collect();

    let fs = RealFs;
    let wip = crate::writer::wip_path(&manifest_path);
    {
        let mut file = fs.create(&wip)?;
        file.write_all(&pruned.encode())?;
        file.sync_data()?;
    }
    fs.rename(&wip, &manifest_path)?;
    fs.sync_dir(dir)?;
    Ok(referenced)
}

/// Delete every segment-shaped file (including `.wip` orphans) in
/// `dir` that `referenced` does not name. Returns how many went.
fn sweep_unreferenced(dir: &Path, referenced: &[String]) -> Result<usize, StoreError> {
    let mut removed = 0usize;
    let mut to_remove: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == MANIFEST_FILE {
            continue;
        }
        let stem = name.strip_suffix(".wip").unwrap_or(name);
        if is_segment_file_name(stem) && !referenced.iter().any(|r| r == name) {
            to_remove.push(entry.path());
        }
    }
    for path in to_remove {
        std::fs::remove_file(&path)?;
        removed += 1;
    }
    if removed > 0 {
        use crate::vfs::StoreFs;
        crate::vfs::RealFs.sync_dir(dir)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedOptions;
    use isobar::Preference;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("isobar-compact-{}-{name}", std::process::id()))
    }

    fn options() -> IsobarOptions {
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 10_000,
            ..Default::default()
        }
    }

    fn payload(len: usize, phase: u64) -> Vec<u8> {
        (0..len)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> (phase % 13)) & 0xFF) as u8)
            .collect()
    }

    #[test]
    fn compaction_drops_superseded_and_sweeps_old_segments() {
        let dir = tmp("drops");
        let _ = std::fs::remove_dir_all(&dir);
        let final_density = payload(16 * 1024, 11);

        // Three generations, each superseding density.
        for phase in [1u64, 5, 11] {
            let writer =
                ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
            let data = if phase == 11 {
                final_density.clone()
            } else {
                payload(16 * 1024, phase)
            };
            writer.put(0, "density", data, 8).unwrap();
            writer
                .put(phase as u32, "extra", payload(4 * 1024, phase), 8)
                .unwrap();
            writer.close().unwrap();
        }
        let before = StoreReader::open(&dir).unwrap();
        assert_eq!(before.entries().len(), 6);
        assert_eq!(before.superseded_count(), 2);
        let segment_files_before = std::fs::read_dir(&dir).unwrap().count();
        drop(before);

        let report = compact_store(&dir, Some(2)).unwrap();
        assert_eq!(report.entries_kept, 4);
        assert_eq!(report.entries_dropped, 2);
        assert!(report.reclaimed_anything());
        assert!(report.bytes_reclaimed > 0);
        assert!(report.files_removed > 0);

        let after = StoreReader::open(&dir).unwrap();
        assert_eq!(after.entries().len(), 4);
        assert_eq!(after.superseded_count(), 0);
        assert_eq!(after.get(0, "density").unwrap(), final_density);
        assert_eq!(after.get(1, "extra").unwrap(), payload(4 * 1024, 1));
        assert_eq!(after.get(11, "extra").unwrap(), payload(4 * 1024, 11));
        assert!(
            std::fs::read_dir(&dir).unwrap().count() < segment_files_before,
            "old segments swept"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_sweeps_orphan_wip_files() {
        let dir = tmp("orphans");
        let _ = std::fs::remove_dir_all(&dir);
        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        writer.put(0, "x", payload(8 * 1024, 2), 8).unwrap();
        writer.close().unwrap();
        // Simulate a crashed writer's droppings.
        std::fs::write(dir.join("g00000000000000ff-s000.seg.wip"), b"torn").unwrap();
        std::fs::write(dir.join("g00000000000000fe-s001.seg"), b"orphan").unwrap();

        let report = compact_store(&dir, None).unwrap();
        assert!(report.files_removed >= 2, "orphans swept: {report:?}");
        let reader = StoreReader::open(&dir).unwrap();
        assert_eq!(reader.get(0, "x").unwrap(), payload(8 * 1024, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compaction_joins_with_a_report() {
        let dir = tmp("background");
        let _ = std::fs::remove_dir_all(&dir);
        for phase in [1u64, 2] {
            let writer =
                ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
            writer.put(0, "v", payload(8 * 1024, phase), 8).unwrap();
            writer.close().unwrap();
        }
        let report = compact_store_background(&dir, None)
            .join()
            .unwrap()
            .unwrap();
        assert_eq!(report.entries_kept, 1);
        assert_eq!(report.entries_dropped, 1);
        assert_eq!(
            StoreReader::open(&dir).unwrap().get(0, "v").unwrap(),
            payload(8 * 1024, 2)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacting_a_single_file_store_is_an_error() {
        let path = tmp("notadir.isst");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"ISST").unwrap();
        assert!(matches!(
            compact_store(&path, None),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
