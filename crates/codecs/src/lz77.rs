//! LZ77 match finding with hash chains and lazy evaluation.
//!
//! This is the front half of the DEFLATE solver: it turns a byte stream
//! into a sequence of literals and back-references within a 32 KiB
//! window, using the same data structures as zlib (a head table indexed
//! by a 3-byte hash plus a prev-chain threaded through the window) and
//! the same lazy-matching heuristic (defer emitting a match by one
//! position if the next position matches longer).
//!
//! The matcher does not own its hash tables: they live in a
//! [`MatcherScratch`] that callers keep across invocations, so the
//! per-chunk steady state touches no allocator. The head table is
//! invalidated by bumping a generation counter instead of rewriting
//! 128 KiB of sentinel values per chunk; `prev` entries are only ever
//! read for positions inserted in the current generation, so they need
//! no reset at all.

use crate::codec::CompressionLevel;

/// DEFLATE window size: matches may reach back this far.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum back-reference length (shorter matches cost more than literals).
pub const MIN_MATCH: usize = 3;
/// Maximum back-reference length representable in DEFLATE.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Consecutive match-probe misses before the Fast matcher starts
/// blind-skipping positions (zlib's `deflate_fast` insertion degrade).
const SKIP_TRIGGER: u32 = 32;
/// Cap on how many positions a single blind skip may cover.
const MAX_SKIP: u32 = 16;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

/// Tuning knobs derived from [`CompressionLevel`], mirroring zlib's
/// per-level configuration table.
#[derive(Debug, Clone, Copy)]
struct MatcherParams {
    /// Upper bound on hash-chain links followed per position.
    max_chain: usize,
    /// Stop searching early once a match of this length is found.
    nice_len: usize,
    /// Only attempt lazy matching when the current match is shorter.
    lazy_threshold: usize,
    /// Enable lazy (one-step deferred) matching at all.
    lazy: bool,
    /// Degrade probe/insert frequency through long matchless stretches.
    run_skip: bool,
    /// Do not index the covered span of matches longer than this
    /// (zlib's `max_insert_length` fast-level behaviour). Long matches
    /// on repetitive data otherwise spend most of the matcher's time
    /// hashing positions that later searches rarely benefit from.
    max_insert: usize,
    /// Hash 4-byte grams instead of 3-byte grams (libdeflate's
    /// fast-level matchfinder). Preconditioned byte streams have tiny
    /// alphabets, so 3-grams collide into enormous chains; 4-grams cut
    /// the collision rate by the alphabet size at the cost of never
    /// finding length-3 matches.
    hash4: bool,
}

impl MatcherParams {
    fn for_level(level: CompressionLevel) -> Self {
        // Chain depths are tuned for ISOBAR's workload: preconditioned
        // scientific byte streams have tiny effective alphabets, so
        // 3-byte grams collide heavily and deep chains burn time for
        // almost no ratio. Fast follows libdeflate's level-1 recipe
        // (4-byte grams, near-greedy two-candidate probing, shallow
        // nice length, capped span indexing): on gts-like columns that
        // costs ~3% of C-stream ratio for a ~1.7x matcher speedup.
        //
        // Run-skip and the insert cap are Fast-only: Default and Best
        // promise a stable token stream (the container golden test pins
        // Default output).
        match level {
            CompressionLevel::Fast => MatcherParams {
                max_chain: 2,
                nice_len: 16,
                lazy_threshold: 0,
                lazy: false,
                run_skip: true,
                max_insert: 16,
                hash4: true,
            },
            CompressionLevel::Default => MatcherParams {
                max_chain: 32,
                nice_len: 64,
                lazy_threshold: 16,
                lazy: true,
                run_skip: false,
                max_insert: MAX_MATCH,
                hash4: false,
            },
            CompressionLevel::Best => MatcherParams {
                max_chain: 256,
                nice_len: MAX_MATCH,
                lazy_threshold: MAX_MATCH,
                lazy: true,
                run_skip: false,
                max_insert: MAX_MATCH,
                hash4: false,
            },
        }
    }
}

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    // Multiplicative hash of the next three bytes; constants chosen for
    // good dispersion of low-entropy scientific bytes.
    let v = u32::from(data[pos]) | u32::from(data[pos + 1]) << 8 | u32::from(data[pos + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable hash-chain tables for [`Matcher`].
///
/// A head entry is only trusted when its generation tag matches the
/// current generation, so starting a new buffer costs one counter bump
/// instead of a 32 768-entry rewrite. `prev` is indexed by position and
/// is written before it can be read within a generation (a chain only
/// reaches positions inserted this generation), so stale contents are
/// harmless.
#[derive(Default)]
pub struct MatcherScratch {
    /// Generation tag (high 32 bits) fused with the head position (low
    /// 32 bits): one cache line touched per probe instead of two
    /// parallel arrays.
    heads: Vec<u64>,
    generation: u32,
    prev: Vec<i32>,
}

impl MatcherScratch {
    /// Fresh, empty scratch; tables are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, data_len: usize) {
        if self.heads.is_empty() {
            self.heads = vec![0; HASH_SIZE];
            self.generation = 0;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // The 32-bit tag wrapped: ancient entries could alias the
            // new generation, so pay for one full reset every 2^32 uses.
            self.heads.fill(0);
            self.generation = 1;
        }
        if self.prev.len() < data_len {
            self.prev.resize(data_len, 0);
        }
    }

    /// Head of the chain for hash bucket `h`, or -1 if the bucket was
    /// last written in an earlier generation (i.e. for another buffer).
    #[inline]
    fn head(&self, h: usize) -> i32 {
        let entry = self.heads[h];
        if (entry >> 32) as u32 == self.generation {
            entry as i32
        } else {
            -1
        }
    }
}

/// Hash-chain match finder over a complete input buffer.
///
/// ISOBAR feeds each chunk's compressible bytes to the solver as one
/// buffer, so an in-memory (non-streaming) matcher fits the workload and
/// keeps indexing simple. Tokens stream out of [`Matcher::next_token`]
/// one at a time; the encoder consumes them directly into per-block
/// frequency counters without materializing a whole-input token vector.
pub struct Matcher<'a, 's> {
    data: &'a [u8],
    scratch: &'s mut MatcherScratch,
    params: MatcherParams,
    /// Kernel tier for the wide common-prefix compare, resolved once
    /// here so the inner loop pays no dispatch cost.
    tier: isobar_simd::KernelTier,
    pos: usize,
    /// Consecutive probed positions without a match (run-skip state).
    miss_run: u32,
    /// Positions left to emit blindly (no probe, no insert).
    blind: u32,
    /// Match found by the last lazy probe, valid for the current `pos`.
    /// When the matcher defers (emits a literal because `pos + 1`
    /// matches longer), that probe result is kept so the next call does
    /// not repeat the chain walk; no table insert happens between the
    /// probe and its reuse, so the cached result is exact.
    pending: Option<(usize, usize)>,
}

impl<'a, 's> Matcher<'a, 's> {
    /// Create a matcher for `data` at the given effort level, borrowing
    /// its hash tables from `scratch`.
    pub fn new(data: &'a [u8], level: CompressionLevel, scratch: &'s mut MatcherScratch) -> Self {
        scratch.begin(data.len());
        Matcher {
            data,
            scratch,
            params: MatcherParams::for_level(level),
            tier: isobar_simd::active_tier(),
            pos: 0,
            miss_run: 0,
            blind: 0,
            pending: None,
        }
    }

    /// Bytes a gram hash consumes — also the shortest findable match.
    #[inline]
    fn hash_len(&self) -> usize {
        if self.params.hash4 {
            4
        } else {
            MIN_MATCH
        }
    }

    #[inline]
    fn gram_hash(&self, pos: usize) -> usize {
        if self.params.hash4 {
            hash4(self.data, pos)
        } else {
            hash3(self.data, pos)
        }
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + self.hash_len() <= self.data.len() {
            let h = self.gram_hash(pos);
            let s = &mut *self.scratch;
            s.prev[pos] = s.head(h);
            s.heads[h] = (u64::from(s.generation) << 32) | pos as u64;
        }
    }

    /// Find the longest match at `pos`, returning `(len, dist)` or
    /// `None` when no match of at least [`MIN_MATCH`] exists.
    #[inline]
    fn longest_match(&self, pos: usize) -> Option<(usize, usize)> {
        self.longest_match_over(pos, MIN_MATCH - 1)
    }

    /// Find the longest match at `pos` strictly longer than `floor`, or
    /// `None` when nothing beats it. The chain is walked exactly as
    /// [`Matcher::longest_match`] would, so when a result is returned it
    /// is the overall longest match — the floor only lets the byte
    /// filter reject can't-improve candidates in one compare, which is
    /// what makes the lazy probe cheap.
    fn longest_match_over(&self, pos: usize, floor: usize) -> Option<(usize, usize)> {
        let data = self.data;
        if pos + self.hash_len() > data.len() {
            return None;
        }
        let max_len = (data.len() - pos).min(MAX_MATCH);
        // A 4-gram table can only surface matches of at least 4 bytes,
        // so raise the floor to keep the byte filter honest.
        let floor = floor.max(self.hash_len() - 1);
        if floor >= max_len {
            // No candidate can beat the floor in the room left.
            return None;
        }
        let window_start = pos.saturating_sub(WINDOW_SIZE);
        let mut best_len = floor;
        let mut best_dist = 0usize;
        let s = &*self.scratch;
        let h = self.gram_hash(pos);
        let mut candidate = s.head(h);
        let mut chain_left = self.params.max_chain;
        // Hoisted probe bytes: the byte just past the current best match
        // is the cheapest rejection test, and it only changes when the
        // best improves.
        let first = data[pos];
        let mut scan = data[pos + best_len];

        while candidate >= 0 && chain_left > 0 {
            let cand = candidate as usize;
            if cand < window_start {
                break;
            }
            debug_assert!(cand < pos);
            // Check the byte just past the current best first: cheapest
            // way to reject chains that cannot improve on it.
            if data[cand + best_len] == scan && data[cand] == first {
                let len = common_prefix(self.tier, data, cand, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= self.params.nice_len || len >= max_len {
                        // `nice_len` ends the search by policy; `max_len`
                        // ends it because no longer match can exist.
                        break;
                    }
                    scan = data[pos + best_len];
                }
            }
            candidate = s.prev[cand];
            chain_left -= 1;
        }

        if best_len > floor {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    /// Whether the whole input has been tokenized.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Produce the next token, or `None` once the input is exhausted.
    ///
    /// Every call advances by at least one byte and emits exactly one
    /// token, so `is_done()` is equivalent to "the next call returns
    /// `None`" — the encoder uses that to place the final-block bit.
    pub fn next_token(&mut self) -> Option<Token> {
        let data = self.data;
        let pos = self.pos;
        if pos >= data.len() {
            return None;
        }
        // Blind stretch: deep inside a matchless run the Fast profile
        // stops probing and indexing entirely for a few positions.
        if self.blind > 0 {
            self.blind -= 1;
            self.pos += 1;
            return Some(Token::Literal(data[pos]));
        }
        // A lazy probe from the previous call already searched this
        // position; reuse its result instead of walking the chain again.
        let found = match self.pending.take() {
            Some(m) => Some(m),
            None => self.longest_match(pos),
        };
        match found {
            None => {
                self.insert(pos);
                self.pos += 1;
                if self.params.run_skip {
                    self.miss_run += 1;
                    if self.miss_run >= SKIP_TRIGGER {
                        self.blind = ((self.miss_run - SKIP_TRIGGER) >> 5).min(MAX_SKIP);
                    }
                }
                Some(Token::Literal(data[pos]))
            }
            Some((len, dist)) => {
                self.miss_run = 0;
                // Lazy matching: if the next position holds a longer
                // match, emit this byte as a literal and defer.
                let defer = if self.params.lazy && len <= self.params.lazy_threshold {
                    self.insert(pos);
                    // Floored probe: only a strictly longer match at
                    // pos + 1 matters, and when one exists the probe
                    // returns the overall longest, which becomes the
                    // cached match for the deferred position.
                    match self.longest_match_over(pos + 1, len) {
                        Some(next) => {
                            self.pending = Some(next);
                            true
                        }
                        None => false,
                    }
                } else {
                    false
                };
                if defer {
                    self.pos += 1; // position already inserted above
                    return Some(Token::Literal(data[pos]));
                }
                // Index the covered positions so later matches can reach
                // into this span. Skip pos itself if the lazy probe
                // already inserted it; skip the whole span (beyond the
                // match head) when it is longer than the level's insert
                // budget — chains stay consistent because `prev` is only
                // ever read for inserted positions.
                let start = if self.params.lazy && len <= self.params.lazy_threshold {
                    pos + 1
                } else {
                    pos
                };
                let end = if len <= self.params.max_insert {
                    pos + len
                } else {
                    (start + 1).min(pos + len)
                };
                for p in start..end {
                    self.insert(p);
                }
                self.pos += len;
                Some(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                })
            }
        }
    }

    /// Tokenize the whole buffer into a vector (convenience for tests
    /// and benchmarks; the encoder streams via [`Matcher::next_token`]).
    pub fn tokenize(mut self) -> Vec<Token> {
        let mut tokens = Vec::with_capacity(self.data.len() / 4 + 16);
        while let Some(token) = self.next_token() {
            tokens.push(token);
        }
        tokens
    }
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `max_len`, via the dispatched wide-compare kernel (8-byte scalar,
/// 16-byte SSE2, or 32-byte AVX2 steps; the first differing lane's
/// trailing zeros locate the exact mismatch byte, so the result is
/// identical to a byte-at-a-time scan).
#[inline]
fn common_prefix(
    tier: isobar_simd::KernelTier,
    data: &[u8],
    a: usize,
    b: usize,
    max_len: usize,
) -> usize {
    isobar_simd::memcmp::common_prefix(tier, &data[a..a + max_len], &data[b..b + max_len])
}

/// Reconstruct the original bytes from a token stream (the LZ77 half of
/// the decoder; used directly by tests and indirectly via inflate).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                // Overlapping copies are semantically byte-at-a-time.
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokenize(data: &[u8], level: CompressionLevel) -> Vec<Token> {
        let mut scratch = MatcherScratch::new();
        Matcher::new(data, level, &mut scratch).tokenize()
    }

    fn round_trip(data: &[u8], level: CompressionLevel) -> Vec<Token> {
        let tokens = tokenize(data, level);
        assert_eq!(detokenize(&tokens), data, "level {level:?}");
        tokens
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for level in CompressionLevel::ALL {
            assert!(round_trip(b"", level).is_empty());
            round_trip(b"a", level);
            round_trip(b"ab", level);
            round_trip(b"abc", level);
        }
    }

    #[test]
    fn repeated_data_produces_matches() {
        let data = b"abcabcabcabcabcabcabcabc";
        let tokens = round_trip(data, CompressionLevel::Default);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match in {tokens:?}"
        );
        // The dominant match should have distance 3.
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 3, .. })));
    }

    #[test]
    fn run_of_identical_bytes_uses_distance_one() {
        let data = vec![0x42u8; 1000];
        let tokens = round_trip(&data, CompressionLevel::Default);
        // RLE via LZ77: literal + dist-1 matches.
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        assert!(tokens
            .iter()
            .any(|t| matches!(t, Token::Match { dist: 1, .. })));
    }

    #[test]
    fn incompressible_data_is_all_literals_but_round_trips() {
        // A linear-congruential byte stream with no 3-byte repeats in
        // range produces few or no matches; correctness is what matters.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        for level in CompressionLevel::ALL {
            round_trip(&data, level);
        }
    }

    #[test]
    fn matches_never_exceed_format_limits() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.extend_from_slice(&(i % 7).to_le_bytes());
        }
        for level in CompressionLevel::ALL {
            let tokens = round_trip(&data, level);
            for t in &tokens {
                if let Token::Match { len, dist } = t {
                    assert!((*len as usize) >= MIN_MATCH && (*len as usize) <= MAX_MATCH);
                    assert!((*dist as usize) >= 1 && (*dist as usize) <= WINDOW_SIZE);
                }
            }
        }
    }

    #[test]
    fn long_range_matches_stay_inside_window() {
        // Repeat a block at a distance beyond the window: the matcher
        // must not reference it.
        let block: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        let mut data = block.clone();
        data.extend(std::iter::repeat_n(0xAA, WINDOW_SIZE + 500));
        data.extend_from_slice(&block);
        round_trip(&data, CompressionLevel::Best);
    }

    #[test]
    fn lazy_matching_improves_or_equals_greedy_token_count() {
        // Classic lazy-match case: "abc" then "bcd..." where deferring
        // one literal yields a longer match.
        let data = b"xabcy_abcde_bcdef_abcdef_bcdefg".repeat(64);
        let fast = tokenize(&data, CompressionLevel::Fast);
        let best = tokenize(&data, CompressionLevel::Best);
        assert_eq!(detokenize(&fast), data.as_slice());
        assert_eq!(detokenize(&best), data.as_slice());
        assert!(best.len() <= fast.len());
    }

    #[test]
    fn reused_scratch_produces_identical_tokens() {
        // A dirty scratch (previous buffer's chains, bumped generation)
        // must not change the token stream of a later buffer.
        let poison: Vec<u8> = (0..60_000u32)
            .flat_map(|i| (i % 251).to_le_bytes())
            .collect();
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(300);
        for level in CompressionLevel::ALL {
            let mut dirty = MatcherScratch::new();
            let _ = Matcher::new(&poison, level, &mut dirty).tokenize();
            let reused = Matcher::new(&data, level, &mut dirty).tokenize();
            let fresh = tokenize(&data, level);
            assert_eq!(reused, fresh, "level {level:?}");
        }
    }

    #[test]
    fn streaming_matches_batch_tokenization() {
        let data = b"abcabcabc_noise_1234567_abcabcabc".repeat(100);
        for level in CompressionLevel::ALL {
            let mut scratch = MatcherScratch::new();
            let mut m = Matcher::new(&data, level, &mut scratch);
            let mut streamed = Vec::new();
            while let Some(t) = m.next_token() {
                streamed.push(t);
            }
            assert_eq!(streamed, tokenize(&data, level), "level {level:?}");
        }
    }

    #[test]
    fn run_skip_keeps_fast_output_decodable_on_noise() {
        // Pure noise drives the Fast matcher deep into its blind-skip
        // regime; the stream must still round-trip exactly.
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect();
        round_trip(&data, CompressionLevel::Fast);
    }

    #[test]
    fn overlapping_copy_semantics() {
        let tokens = vec![
            Token::Literal(b'a'),
            Token::Literal(b'b'),
            Token::Match { len: 6, dist: 2 },
        ];
        assert_eq!(detokenize(&tokens), b"abababab");
    }
}
