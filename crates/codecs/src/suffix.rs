//! Suffix array construction with SA-IS (induced sorting).
//!
//! The bzip2-class solver needs sorted suffixes to compute the
//! Burrows–Wheeler transform of each block. SA-IS runs in O(n) time and
//! O(n) space, which keeps the BWT cost linear in the 900 KiB blocks the
//! solver uses. The implementation follows Nong, Zhang & Chan (2009):
//! classify suffixes as S/L, induce from LMS positions, recurse on the
//! reduced string only when LMS substring names collide.

const EMPTY: u32 = u32::MAX;

/// Build the suffix array of `s` over alphabet `0..k`.
///
/// Requirements (checked with debug assertions): `s` is non-empty, every
/// value is `< k`, and `s[n-1]` is a unique, strictly smallest sentinel.
/// The returned array holds the start positions of all suffixes in
/// lexicographic order (the sentinel suffix comes first).
pub fn suffix_array(s: &[u32], k: usize) -> Vec<u32> {
    debug_assert!(!s.is_empty());
    debug_assert!(s.iter().all(|&c| (c as usize) < k));
    debug_assert_eq!(
        s.iter().filter(|&&c| c == s[s.len() - 1]).count(),
        1,
        "sentinel must be unique"
    );
    debug_assert!(s[..s.len() - 1].iter().all(|&c| c > s[s.len() - 1]));
    let mut sa = vec![EMPTY; s.len()];
    sais(s, k, &mut sa);
    sa
}

/// Convenience wrapper: suffix array of a byte string with an implicit
/// sentinel. Returns the SA of `bytes+1 ++ [0]` (length `bytes.len()+1`).
pub fn suffix_array_bytes(bytes: &[u8]) -> Vec<u32> {
    let mut s: Vec<u32> = Vec::with_capacity(bytes.len() + 1);
    s.extend(bytes.iter().map(|&b| b as u32 + 1));
    s.push(0);
    suffix_array(&s, 257)
}

fn sais(s: &[u32], k: usize, sa: &mut [u32]) {
    let n = s.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }

    // S/L classification; the sentinel is S-type by definition.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    let mut bucket_sizes = vec![0u32; k];
    for &c in s {
        bucket_sizes[c as usize] += 1;
    }

    // Pass 1: induce from LMS positions in text order to sort LMS
    // substrings.
    let lms_in_order: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    induce(s, sa, &bucket_sizes, &is_s, &lms_in_order);

    // Collect LMS positions in their induced (sorted-substring) order.
    let num_lms = lms_in_order.len();
    if num_lms == 0 {
        return; // only the sentinel is S-type; SA is fully induced
    }
    let mut lms_sorted: Vec<u32> = Vec::with_capacity(num_lms);
    for &pos in sa.iter() {
        if pos != EMPTY && is_lms(pos as usize) {
            lms_sorted.push(pos);
        }
    }

    // Name LMS substrings; equal substrings share a name.
    let mut names = vec![EMPTY; n];
    let mut current_name = 0u32;
    names[lms_sorted[0] as usize] = 0;
    for w in lms_sorted.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        if !lms_substring_eq(s, &is_s, a, b) {
            current_name += 1;
        }
        names[b] = current_name;
    }
    let num_names = current_name as usize + 1;

    // Order of LMS suffixes: direct if names are unique, else recurse.
    let lms_order: Vec<u32> = if num_names == num_lms {
        lms_sorted
    } else {
        // Reduced string: names of LMS substrings in text order.
        let reduced: Vec<u32> = lms_in_order
            .iter()
            .map(|&pos| names[pos as usize])
            .collect();
        let mut reduced_sa = vec![EMPTY; reduced.len()];
        sais(&reduced, num_names, &mut reduced_sa);
        reduced_sa
            .iter()
            .map(|&r| lms_in_order[r as usize])
            .collect()
    };

    // Pass 2: induce the final order from sorted LMS suffixes.
    induce(s, sa, &bucket_sizes, &is_s, &lms_order);
}

/// Induced sort: seed bucket ends with `lms` (in the given order), then
/// induce L-types left-to-right and S-types right-to-left.
fn induce(s: &[u32], sa: &mut [u32], bucket_sizes: &[u32], is_s: &[bool], lms: &[u32]) {
    let n = s.len();
    sa.fill(EMPTY);

    let mut tails = bucket_tails(bucket_sizes);
    for &pos in lms.iter().rev() {
        let c = s[pos as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = pos;
    }

    let mut heads = bucket_heads(bucket_sizes);
    for i in 0..n {
        let pos = sa[i];
        if pos != EMPTY && pos > 0 {
            let j = (pos - 1) as usize;
            if !is_s[j] {
                let c = s[j] as usize;
                sa[heads[c] as usize] = j as u32;
                heads[c] += 1;
            }
        }
    }

    let mut tails = bucket_tails(bucket_sizes);
    for i in (0..n).rev() {
        let pos = sa[i];
        if pos != EMPTY && pos > 0 {
            let j = (pos - 1) as usize;
            if is_s[j] {
                let c = s[j] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j as u32;
            }
        }
    }
}

fn bucket_heads(sizes: &[u32]) -> Vec<u32> {
    let mut heads = Vec::with_capacity(sizes.len());
    let mut sum = 0u32;
    for &size in sizes {
        heads.push(sum);
        sum += size;
    }
    heads
}

fn bucket_tails(sizes: &[u32]) -> Vec<u32> {
    let mut tails = Vec::with_capacity(sizes.len());
    let mut sum = 0u32;
    for &size in sizes {
        sum += size;
        tails.push(sum);
    }
    tails
}

/// Compare two LMS substrings (from their start to the next LMS
/// position, inclusive).
fn lms_substring_eq(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == b {
        return true;
    }
    // The sentinel LMS substring is unique.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0usize;
    loop {
        let (ai, bi) = (a + i, b + i);
        if ai >= n || bi >= n {
            return false;
        }
        if s[ai] != s[bi] || is_s[ai] != is_s[bi] {
            return false;
        }
        if i > 0 && (is_lms(ai) || is_lms(bi)) {
            return is_lms(ai) && is_lms(bi);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n² log n) reference for cross-checking.
    fn naive_suffix_array(s: &[u32]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..s.len() as u32).collect();
        sa.sort_by(|&a, &b| s[a as usize..].cmp(&s[b as usize..]));
        sa
    }

    fn check(bytes: &[u8]) {
        let mut s: Vec<u32> = bytes.iter().map(|&b| b as u32 + 1).collect();
        s.push(0);
        let got = suffix_array(&s, 257);
        let want = naive_suffix_array(&s);
        assert_eq!(got, want, "input {bytes:?}");
    }

    #[test]
    fn classic_textbook_strings() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"GTCCCGATGTCATGTCAGGA");
    }

    #[test]
    fn degenerate_inputs() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"aaaaaaaaaa");
        check(b"ab");
        check(b"ba");
        check(b"abababababab");
        check(&[0u8, 0, 0, 1, 0, 0]);
        check(&[255u8; 32]);
    }

    #[test]
    fn forces_recursion_with_repeated_lms_names() {
        // Periodic strings create identical LMS substrings, exercising
        // the recursive branch.
        check(b"abcabcabcabcabcabcabcabc");
        check(b"aabaabaabaabaab");
        check(b"xyzxyzxyxyzxyzxyxyzxyzxy");
    }

    #[test]
    fn pseudorandom_inputs_match_naive() {
        let mut state = 0xdeadbeefu32;
        for len in [2usize, 3, 5, 17, 64, 257, 1000] {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                    // Small alphabet stresses ties and recursion.
                    ((state >> 24) % 4) as u8
                })
                .collect();
            check(&bytes);
        }
    }

    #[test]
    fn byte_wrapper_places_sentinel_first() {
        let sa = suffix_array_bytes(b"banana");
        assert_eq!(sa.len(), 7);
        assert_eq!(sa[0], 6, "sentinel suffix must sort first");
        // banana suffix order: a, ana, anana, banana, na, nana
        assert_eq!(&sa[1..], &[5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn suffix_array_is_a_permutation() {
        let bytes: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let sa = suffix_array_bytes(&bytes);
        let mut seen = vec![false; sa.len()];
        for &p in &sa {
            assert!(!seen[p as usize], "duplicate position {p}");
            seen[p as usize] = true;
        }
        // Verify sortedness on a sample of adjacent pairs.
        let mut s: Vec<u32> = bytes.iter().map(|&b| b as u32 + 1).collect();
        s.push(0);
        for w in sa.windows(2).step_by(97) {
            assert!(s[w[0] as usize..] < s[w[1] as usize..]);
        }
    }
}
