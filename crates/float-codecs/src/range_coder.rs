//! Byte-oriented range coder with adaptive frequency models.
//!
//! This is the entropy back end of the fpzip-class codec: a 32-bit
//! range coder in the LZMA style, renormalizing one byte at a time.
//! Carries are handled with the classic cache + pending-0xFF scheme, so
//! a carry that propagates past already-settled bytes increments the
//! cached byte and flips the pending 0xFF run to 0x00 — emitted output
//! is never revisited.

use std::error::Error;
use std::fmt;

/// Error produced when a range-coded stream ends prematurely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeDecodeError;

impl fmt::Display for RangeDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "range-coded stream ended prematurely")
    }
}

impl Error for RangeDecodeError {}

const TOP: u32 = 1 << 24;
/// Total frequency budget for models (must stay below `TOP`).
pub const MAX_TOTAL_FREQ: u32 = 1 << 16;

/// Range encoder writing to an internal byte buffer.
pub struct RangeEncoder {
    /// Low bound; only the low 33 bits are ever set (bit 32 is carry).
    low: u64,
    range: u32,
    cache: u8,
    /// Bytes held back waiting for a possible carry: one cached byte
    /// plus `cache_size - 1` pending 0xFF bytes.
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Create an encoder with an empty output buffer.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Encode a symbol that occupies `[cum_freq, cum_freq + freq)` out
    /// of `total` in the model's cumulative distribution.
    #[inline]
    pub fn encode(&mut self, cum_freq: u32, freq: u32, total: u32) {
        debug_assert!(freq > 0 && cum_freq + freq <= total && total <= MAX_TOTAL_FREQ);
        let r = self.range / total;
        self.low += (r as u64) * (cum_freq as u64);
        self.range = r * freq;
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Encode `count` raw bits (for residual payloads the model does not
    /// predict). Most significant bit first.
    pub fn encode_raw_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        // Split into ≤16-bit slices so `total` stays within budget.
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(16);
            remaining -= take;
            let slice = ((value >> remaining) & ((1u64 << take) - 1)) as u32;
            self.encode(slice, 1, 1 << take);
        }
    }

    /// Flush the final state and return the encoded bytes.
    ///
    /// The stream starts with one padding byte (the initial cache),
    /// which the decoder skips.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder reading from a byte slice.
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Create a decoder over `data` produced by [`RangeEncoder`].
    pub fn new(data: &'a [u8]) -> Self {
        let mut dec = RangeDecoder {
            code: 0,
            range: u32::MAX,
            data,
            pos: 0,
        };
        dec.next_byte(); // skip the encoder's initial cache byte
        for _ in 0..4 {
            dec.code = (dec.code << 8) | dec.next_byte() as u32;
        }
        dec
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; truncation is caught by the
        // caller's structural checks (counts, checksums).
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Return the cumulative-frequency slot of the next symbol under a
    /// model with the given `total`. The caller locates the symbol and
    /// must then call [`RangeDecoder::decode_update`].
    #[inline]
    pub fn decode_freq(&mut self, total: u32) -> u32 {
        let r = self.range / total;
        let off = self.code / r;
        off.min(total - 1)
    }

    /// Complete the decode of a symbol spanning
    /// `[cum_freq, cum_freq + freq)` out of `total`.
    #[inline]
    pub fn decode_update(&mut self, cum_freq: u32, freq: u32, total: u32) {
        let r = self.range / total;
        self.code -= r * cum_freq;
        self.range = r * freq;
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
    }

    /// Bytes consumed past the end of the input slice.
    ///
    /// [`RangeDecoder`] zero-fills past the end (truncation is caught
    /// by the caller's structural checks), but `pos` keeps advancing —
    /// so a caller decoding an untrusted symbol count can poll this to
    /// notice it is running on fabricated zeros and stop, instead of
    /// producing output unbounded by the real input. The decoder
    /// legitimately reads a few bytes of encoder padding past the
    /// payload, so small values (≤ the 5 flush bytes) are normal.
    #[inline]
    pub fn overrun(&self) -> usize {
        self.pos.saturating_sub(self.data.len())
    }

    /// Decode `count` raw bits written by
    /// [`RangeEncoder::encode_raw_bits`].
    pub fn decode_raw_bits(&mut self, count: u32) -> u64 {
        let mut remaining = count;
        let mut value = 0u64;
        while remaining > 0 {
            let take = remaining.min(16);
            remaining -= take;
            let total = 1u32 << take;
            let slice = self.decode_freq(total);
            self.decode_update(slice, 1, total);
            value = (value << take) | slice as u64;
        }
        value
    }
}

/// Adaptive frequency model over a small alphabet.
///
/// Frequencies start uniform at 1 and increase by a fixed increment per
/// observation; when the total reaches the budget all frequencies are
/// halved (ageing). Alphabets here are ≤ 66 symbols, so linear scans
/// are cheaper than a Fenwick tree.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    freq: Vec<u32>,
    total: u32,
    increment: u32,
}

impl AdaptiveModel {
    /// Create a model over `n` symbols.
    pub fn new(n: usize) -> Self {
        AdaptiveModel {
            freq: vec![1; n],
            total: n as u32,
            increment: 32,
        }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.freq.len()
    }

    /// True when the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.freq.is_empty()
    }

    fn cum_freq(&self, sym: usize) -> u32 {
        self.freq[..sym].iter().sum()
    }

    fn bump(&mut self, sym: usize) {
        self.freq[sym] += self.increment;
        self.total += self.increment;
        if self.total >= MAX_TOTAL_FREQ {
            self.total = 0;
            for f in &mut self.freq {
                *f = (*f >> 1).max(1);
                self.total += *f;
            }
        }
    }

    /// Encode `sym` and update the model.
    pub fn encode(&mut self, enc: &mut RangeEncoder, sym: usize) {
        let cum = self.cum_freq(sym);
        enc.encode(cum, self.freq[sym], self.total);
        self.bump(sym);
    }

    /// Decode a symbol and update the model identically to the encoder.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> usize {
        let target = dec.decode_freq(self.total);
        let mut cum = 0u32;
        let mut sym = self.freq.len() - 1;
        for (i, &f) in self.freq.iter().enumerate() {
            if cum + f > target {
                sym = i;
                break;
            }
            cum += f;
        }
        dec.decode_update(cum, self.freq[sym], self.total);
        self.bump(sym);
        sym
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_bits_round_trip() {
        let mut enc = RangeEncoder::new();
        let values = [
            (0u64, 1u32),
            (1, 1),
            (0xff, 8),
            (0x1234_5678_9abc_def0, 64),
            (0, 0),
            (0x7fff, 15),
            (u64::MAX, 64),
        ];
        for &(v, n) in &values {
            enc.encode_raw_bits(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(dec.decode_raw_bits(n), v, "{n} bits");
        }
    }

    #[test]
    fn carry_heavy_streams_round_trip() {
        // All-ones payloads drive `low` towards 0xFFFF_FFFF, the regime
        // where the cache/pending-FF carry machinery matters.
        let mut enc = RangeEncoder::new();
        for _ in 0..10_000 {
            enc.encode_raw_bits(u64::MAX, 64);
            enc.encode(0xFFFE, 1, 0xFFFF);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for _ in 0..10_000 {
            assert_eq!(dec.decode_raw_bits(64), u64::MAX);
            let slot = dec.decode_freq(0xFFFF);
            assert_eq!(slot, 0xFFFE);
            dec.decode_update(slot, 1, 0xFFFF);
        }
    }

    #[test]
    fn adaptive_model_round_trips_skewed_stream() {
        let symbols: Vec<usize> = (0..20_000)
            .map(|i| if i % 17 == 0 { i % 5 } else { 0 })
            .collect();
        let mut enc_model = AdaptiveModel::new(5);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc_model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        // A heavily skewed stream must compress well below 1 byte/symbol.
        assert!(bytes.len() < symbols.len() / 4, "{} bytes", bytes.len());

        let mut dec_model = AdaptiveModel::new(5);
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec_model.decode(&mut dec), s);
        }
    }

    #[test]
    fn adaptive_model_round_trips_uniform_stream() {
        let mut state = 12345u64;
        let symbols: Vec<usize> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 64) as usize
            })
            .collect();
        let mut enc_model = AdaptiveModel::new(64);
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            enc_model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec_model = AdaptiveModel::new(64);
        let mut dec = RangeDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec_model.decode(&mut dec), s);
        }
    }

    #[test]
    fn interleaved_model_and_raw_bits() {
        // The fpzip codec interleaves model-coded bit lengths with raw
        // residual bits; exercise that interleaving.
        let items: Vec<(usize, u64)> = (0..5000)
            .map(|i| {
                let len = (i * 7) % 33;
                let mask = if len == 0 { 0 } else { (1u64 << len) - 1 };
                let payload = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) & mask;
                (len, payload)
            })
            .collect();
        let mut model = AdaptiveModel::new(33);
        let mut enc = RangeEncoder::new();
        for &(len, payload) in &items {
            model.encode(&mut enc, len);
            enc.encode_raw_bits(payload, len as u32);
        }
        let bytes = enc.finish();
        let mut model = AdaptiveModel::new(33);
        let mut dec = RangeDecoder::new(&bytes);
        for &(len, payload) in &items {
            assert_eq!(model.decode(&mut dec), len);
            assert_eq!(dec.decode_raw_bits(len as u32), payload);
        }
    }

    #[test]
    fn ageing_keeps_total_bounded() {
        let mut model = AdaptiveModel::new(3);
        let mut enc = RangeEncoder::new();
        for _ in 0..1_000_000 {
            model.encode(&mut enc, 1);
        }
        assert!(model.total < MAX_TOTAL_FREQ);
        assert!(model.freq.iter().all(|&f| f >= 1));
    }

    #[test]
    fn empty_stream_decodes_zeros() {
        let mut dec = RangeDecoder::new(&[]);
        assert_eq!(dec.decode_raw_bits(16), 0);
    }
}
