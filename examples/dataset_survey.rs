//! Survey the 24-dataset catalog: classification and compression.
//!
//! Run with: `cargo run --release --example dataset_survey`
//!
//! A compact version of the paper's Tables IV and V: for every dataset,
//! show the analyzer's verdict (hard-to-compress byte %, improvable?)
//! and compare standalone zlib against the full ISOBAR pipeline.

use isobar::{Analyzer, IsobarCompressor, IsobarOptions, Preference};
use isobar_codecs::{deflate::Deflate, Codec};
use isobar_datasets::catalog;

const ELEMENTS: usize = 120_000;

fn main() {
    let analyzer = Analyzer::default();
    let zlib = Deflate::default();
    let isobar = IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        ..Default::default()
    });

    println!(
        "{:<15} {:>5} {:>7} {:>11} {:>9} {:>11} {:>7}",
        "dataset", "width", "HTC %", "improvable", "zlib CR", "ISOBAR CR", "ΔCR %"
    );

    for spec in catalog::all() {
        let ds = spec.generate(ELEMENTS, 42);
        let selection = analyzer
            .analyze(&ds.bytes, ds.width())
            .expect("aligned data");

        let zlib_len = zlib.compress(&ds.bytes).len();
        let zlib_cr = ds.bytes.len() as f64 / zlib_len as f64;

        let (packed, report) = isobar
            .compress_with_report(&ds.bytes, ds.width())
            .expect("aligned data");
        assert_eq!(isobar.decompress(&packed).expect("container"), ds.bytes);
        let isobar_cr = report.ratio();

        let delta = (isobar_cr / zlib_cr - 1.0) * 100.0;
        println!(
            "{:<15} {:>5} {:>7.1} {:>11} {:>9.3} {:>11.3} {:>+7.1}",
            spec.name,
            ds.width(),
            selection.htc_pct(),
            if selection.is_improvable() {
                "yes"
            } else {
                "no"
            },
            zlib_cr,
            isobar_cr,
            delta,
        );
    }

    println!("\n(improvable datasets should show positive ΔCR; repetitive ones");
    println!(" pass through ISOBAR unchanged and land near ΔCR = 0)");
}
