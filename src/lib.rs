//! Umbrella crate for the ISOBAR reproduction workspace.
//!
//! This crate re-exports the public APIs of the member crates so the
//! workspace-level examples and integration tests have a single import
//! root. Library users should depend on the individual crates
//! ([`isobar`], [`isobar_codecs`], …) directly.

pub use isobar;
pub use isobar_codecs;
pub use isobar_datasets;
pub use isobar_float_codecs;
pub use isobar_linearize;
pub use isobar_store;
