#![warn(missing_docs)]

//! Data linearization strategies for the ISOBAR reproduction.
//!
//! ISOBAR's partitioner can hand byte-columns to the solver in two
//! orders (§II.B–C of the paper):
//!
//! * **row-wise** — for each element, its selected bytes in order
//!   (good when the selected bytes of one element correlate);
//! * **column-wise** — each selected byte-column contiguously
//!   (good when a column is self-similar across elements).
//!
//! The robustness experiments (§III.G, Figs. 9–10) additionally permute
//! whole *elements* before compression: original order, Hilbert
//! space-filling-curve order, and random order. Those orderings live
//! here too: [`hilbert`] and [`permute`].

pub mod gather;
pub mod hilbert;
pub mod permute;

pub use gather::{gather_columns, scatter_columns, Linearization};
pub use hilbert::{hilbert_d2xy, hilbert_order, hilbert_xy2d};
pub use permute::{apply_permutation, invert_permutation, random_permutation};
