//! Concurrent store stress: many producers and readers hammering one
//! sharded store on the real filesystem.
//!
//! The sharded writer's concurrency claims — any number of producer
//! threads may `put` into one writer, and any number of reader threads
//! may `get` from one reader without contending on a cursor — are easy
//! to state and easy to break with a misplaced lock or a shared seek
//! position. This module stress-tests both at once: N producer threads
//! write generation 1 *while* M reader threads replay random reads
//! against the committed generation 0, then every byte of both
//! generations is verified. Run under the harness's counting allocator
//! (the `--store-stress` flag of the fuzz binary), it also reports the
//! peak live-heap high-water mark of the whole storm.

use crate::rng::Rng;
use isobar::IsobarOptions;
use isobar_store::{ShardedOptions, ShardedStoreWriter, StoreReader};
use std::path::Path;

/// What one stress run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressOutcome {
    /// Variables written across both generations.
    pub puts: u64,
    /// Random reads replayed against generation 0 during the storm.
    pub gets: u64,
    /// Entries verified byte-for-byte after the final commit.
    pub verified: u64,
    /// Entries of generation 0 superseded by generation 1.
    pub superseded: u64,
}

/// Deterministic payload for `(producer, step, revision)` — every
/// thread and the final verifier regenerate the same bytes.
fn payload(seed: u64, producer: usize, step: u32, revision: u64, len: usize) -> Vec<u8> {
    let mut rng = Rng::new(
        seed ^ (producer as u64) << 40 ^ (step as u64) << 8 ^ revision.wrapping_mul(0x9E37),
    );
    let mut data = vec![0u8; len];
    // Half structured, half noise: exercise both codec outcomes.
    for (i, byte) in data.iter_mut().enumerate().take(len / 2) {
        *byte = (i / 5) as u8;
    }
    let tail = len / 2;
    rng.fill(&mut data[tail..]);
    data
}

fn var_name(producer: usize) -> String {
    format!("var{producer:02}")
}

/// Run the storm: `producers` threads × `steps` puts each for
/// generation 0, then generation 1 rewrites the first half of the
/// steps while `producers` reader threads replay `gets_per_reader`
/// random verified reads against generation 0. Returns counts or the
/// first violation.
pub fn store_stress(
    seed: u64,
    producers: usize,
    steps: u32,
    gets_per_reader: u64,
) -> Result<StressOutcome, String> {
    let dir = std::env::temp_dir().join(format!(
        "isobar-store-stress-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_in(&dir, seed, producers, steps, gets_per_reader);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_in(
    dir: &Path,
    seed: u64,
    producers: usize,
    steps: u32,
    gets_per_reader: u64,
) -> Result<StressOutcome, String> {
    let options = IsobarOptions {
        preference: isobar::Preference::Speed,
        chunk_elements: 4096,
        ..Default::default()
    };
    let sharded = ShardedOptions {
        shards: 4,
        queue_depth: 2,
    };
    let len = 8 * 1024;
    let mut outcome = StressOutcome {
        puts: 0,
        gets: 0,
        verified: 0,
        superseded: 0,
    };

    // Generation 0: every producer writes its own variable at every
    // step, all through one shared writer.
    let writer = ShardedStoreWriter::create(dir, options, sharded)
        .map_err(|e| format!("gen 0 create: {e}"))?;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..producers {
            let writer = &writer;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let name = var_name(p);
                for step in 0..steps {
                    writer
                        .put(step, &name, payload(seed, p, step, 0, len), 8)
                        .map_err(|e| format!("gen 0 put ({p}, {step}): {e}"))?;
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().map_err(|_| "gen 0 producer panicked")??;
        }
        Ok::<(), String>(())
    })?;
    outcome.puts += producers as u64 * steps as u64;
    writer.close().map_err(|e| format!("gen 0 close: {e}"))?;

    // The storm: reader threads replay random verified reads against
    // committed generation 0 while producer threads write generation 1
    // (first half of the steps, superseding).
    let reader = StoreReader::open(dir).map_err(|e| format!("gen 0 open: {e}"))?;
    let writer = ShardedStoreWriter::create(dir, options, sharded)
        .map_err(|e| format!("gen 1 create: {e}"))?;
    let rewrite_steps = steps / 2;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..producers {
            let writer = &writer;
            handles.push(scope.spawn(move || -> Result<u64, String> {
                let name = var_name(p);
                for step in 0..rewrite_steps {
                    writer
                        .put(step, &name, payload(seed, p, step, 1, len), 8)
                        .map_err(|e| format!("gen 1 put ({p}, {step}): {e}"))?;
                }
                Ok(0)
            }));
        }
        for r in 0..producers {
            let reader = &reader;
            handles.push(scope.spawn(move || -> Result<u64, String> {
                let mut rng = Rng::new(seed ^ 0xBEEF ^ (r as u64) << 16);
                let mut gets = 0u64;
                for _ in 0..gets_per_reader {
                    let p = (rng.next_u64() % producers as u64) as usize;
                    let step = (rng.next_u64() % steps as u64) as u32;
                    let got = reader
                        .get(step, &var_name(p))
                        .map_err(|e| format!("storm get ({p}, {step}): {e}"))?;
                    if got != payload(seed, p, step, 0, len) {
                        return Err(format!("storm get ({p}, {step}): wrong bytes"));
                    }
                    gets += 1;
                }
                Ok(gets)
            }));
        }
        for h in handles {
            outcome.gets += h.join().map_err(|_| "storm thread panicked")??;
        }
        Ok::<(), String>(())
    })?;
    outcome.puts += producers as u64 * rewrite_steps as u64;
    let report = writer.close().map_err(|e| format!("gen 1 close: {e}"))?;
    outcome.superseded = report.superseded_entries as u64;

    // Final verification: generation 1 wins on the rewritten steps,
    // generation 0 survives on the rest.
    let reader = StoreReader::open(dir).map_err(|e| format!("final open: {e}"))?;
    for p in 0..producers {
        let name = var_name(p);
        for step in 0..steps {
            let revision = if step < rewrite_steps { 1 } else { 0 };
            let got = reader
                .get(step, &name)
                .map_err(|e| format!("final get ({p}, {step}): {e}"))?;
            if got != payload(seed, p, step, revision, len) {
                return Err(format!(
                    "final get ({p}, {step}): wrong bytes (expected revision {revision})"
                ));
            }
            outcome.verified += 1;
        }
    }
    if outcome.superseded != producers as u64 * rewrite_steps as u64 {
        return Err(format!(
            "expected {} superseded entries, commit reported {}",
            producers as u64 * rewrite_steps as u64,
            outcome.superseded
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_round_trips() {
        let outcome = store_stress(42, 3, 6, 20).expect("stress run");
        assert_eq!(outcome.puts, 3 * 6 + 3 * 3);
        assert_eq!(outcome.gets, 3 * 20);
        assert_eq!(outcome.verified, 3 * 6);
        assert_eq!(outcome.superseded, 3 * 3);
    }
}
