//! Golden tests pinning the on-disk container formats.
//!
//! ISOBAR containers are storage formats: bytes written today must
//! decode forever. These tests freeze the exact output for fixed
//! inputs and fixed options; if an intentional format change bumps the
//! version byte, regenerate the constants below (instructions inline).
//! An *unintentional* diff here means a compatibility break.
//!
//! Version history pinned here:
//! - v1: checksum-less chunk records (29-byte chunk header).
//! - v2: 37-byte chunk header ending in an XXH64 checksum over the
//!   record (current).
//!
//! The `legacy_*` tests hold the back-compat line: version-1 bytes —
//! written before chunk checksums existed — must keep decoding.

use isobar::container::{
    ChunkMode, ChunkRecord, Header, CHECKSUM_SEED, HEADER_LEN, LEGACY_VERSION,
};
use isobar::{CodecId, IsobarCompressor, IsobarOptions, Linearization};
use isobar_codecs::xxhash::Xxh64;
use isobar_codecs::{codec_for, CompressionLevel};

/// Fixed input: 65 536 elements of width 4 — two predictable columns, two
/// noise-like columns — generated from a frozen xorshift sequence.
fn fixed_input() -> Vec<u8> {
    let mut state = 0x0123_4567_89AB_CDEFu64;
    (0..65_536u32)
        .flat_map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            [
                7u8,
                (i % 13) as u8,
                (state >> 48) as u8,
                (state >> 56) as u8,
            ]
        })
        .collect()
}

fn fixed_compressor() -> IsobarCompressor {
    IsobarCompressor::new(IsobarOptions {
        codec_override: Some(CodecId::Deflate),
        linearization_override: Some(Linearization::Row),
        level: CompressionLevel::Default,
        chunk_elements: 65_536,
        ..Default::default()
    })
}

/// FNV-1a over the container bytes: stable fingerprint without
/// embedding kilobytes of expected output.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[test]
fn container_header_layout_is_frozen() {
    let packed = fixed_compressor().compress(&fixed_input(), 4).unwrap();

    // Byte-level header layout (28 bytes, little-endian fields).
    assert_eq!(&packed[0..4], b"ISBR", "magic");
    assert_eq!(packed[4], 2, "version");
    assert_eq!(packed[5], 4, "width");
    assert_eq!(packed[6], CodecId::Deflate as u8, "codec id");
    assert_eq!(packed[7], 1, "level byte (Default)");
    assert_eq!(packed[8], Linearization::Row as u8, "linearization");
    assert_eq!(&packed[12..16], &65_536u32.to_le_bytes(), "chunk elements");
    assert_eq!(
        &packed[16..24],
        &(4 * 65_536u64).to_le_bytes(),
        "total length"
    );

    // The header must parse back to the same values.
    let header = Header::read(&packed).unwrap();
    assert_eq!(header.width, 4);
    assert_eq!(header.total_len, 4 * 65_536);
}

#[test]
fn chunk_record_layout_is_frozen() {
    let packed = fixed_compressor().compress(&fixed_input(), 4).unwrap();
    let (record, _) = ChunkRecord::read(&packed[HEADER_LEN..], 4).unwrap();
    assert_eq!(record.mode, ChunkMode::Partitioned);
    assert_eq!(record.elements, 65_536);
    // The analyzer must select exactly columns 0 and 1 for this input.
    assert_eq!(record.mask, 0b0011, "column selection mask");
    assert_eq!(record.incompressible.len(), 2 * 65_536);
}

#[test]
fn container_bytes_are_bit_stable() {
    // Full-output fingerprint. If this fails and the change was NOT an
    // intentional format/codec revision, you have broken compatibility.
    // If it was intentional: bump container::VERSION, then update this
    // constant with the printed value.
    let packed = fixed_compressor().compress(&fixed_input(), 4).unwrap();
    let fingerprint = fnv(&packed);
    let expected = 0x3d7f_6544_6f6b_806au64; // regenerate: see above
    assert_eq!(
        fingerprint,
        expected,
        "container fingerprint changed: {fingerprint:#018x} (len {})",
        packed.len()
    );
}

#[test]
fn container_matches_documented_offsets() {
    // Walk a real container using ONLY the offsets and field sizes
    // written in docs/FORMAT.md — no parser structs. If this fails,
    // either the format or the document changed; they must move
    // together.
    let input = fixed_input();
    let packed = fixed_compressor().compress(&input, 4).unwrap();

    // File header, 28 bytes (docs/FORMAT.md "File header" table).
    assert_eq!(&packed[0..4], b"ISBR", "offset 0: magic");
    assert_eq!(packed[4], 2, "offset 4: version");
    assert_eq!(packed[5], 4, "offset 5: width");
    assert_eq!(packed[6], 1, "offset 6: codec id (1 = zlib-class)");
    assert_eq!(packed[7], 1, "offset 7: level (1 = default)");
    assert_eq!(packed[8], 0, "offset 8: linearization (0 = row)");
    assert_eq!(packed[9], 0, "offset 9: preference (0 = ratio)");
    assert_eq!(&packed[10..12], &[0, 0], "offsets 10-11: reserved");
    assert_eq!(
        u32::from_le_bytes(packed[12..16].try_into().unwrap()),
        65_536,
        "offset 12: chunk_elements"
    );
    assert_eq!(
        u64::from_le_bytes(packed[16..24].try_into().unwrap()),
        input.len() as u64,
        "offset 16: total_len"
    );
    let documented_checksum = u32::from_le_bytes(packed[24..28].try_into().unwrap());
    assert_eq!(
        documented_checksum,
        isobar_codecs::deflate::adler32(&input),
        "offset 24: Adler-32 of the original bytes"
    );

    // Chunk record at offset 28 (docs/FORMAT.md "Chunk record" table).
    let rec = &packed[28..];
    assert_eq!(rec[0], 1, "record offset 0: mode (1 = partitioned)");
    let elements = u32::from_le_bytes(rec[1..5].try_into().unwrap());
    assert_eq!(elements, 65_536, "record offset 1: elements");
    let mask = u64::from_le_bytes(rec[5..13].try_into().unwrap());
    assert_eq!(mask, 0b0011, "record offset 5: column mask");
    let comp_len = u64::from_le_bytes(rec[13..21].try_into().unwrap()) as usize;
    let incomp_len = u64::from_le_bytes(rec[21..29].try_into().unwrap()) as usize;
    assert_eq!(
        incomp_len,
        elements as usize * (4 - mask.count_ones() as usize),
        "incomp_len = elements x incompressible columns"
    );
    // Payloads: C' then I, and together they end the container.
    assert_eq!(
        28 + 37 + comp_len + incomp_len,
        packed.len(),
        "header + chunk header + payloads account for every byte"
    );

    // Record offset 29: XXH64 (seed 0) over the 29 non-checksum header
    // bytes followed by both payloads, exactly as documented.
    let stored = u64::from_le_bytes(rec[29..37].try_into().unwrap());
    let mut hasher = Xxh64::new(CHECKSUM_SEED);
    hasher.update(&rec[..29]);
    hasher.update(&rec[37..37 + comp_len + incomp_len]);
    assert_eq!(
        stored,
        hasher.digest(),
        "record offset 29: chunk XXH64 checksum"
    );

    // The verbatim section is the incompressible columns (2 and 3)
    // column-major: all of column 2, then all of column 3.
    let verbatim = &rec[37 + comp_len..37 + comp_len + incomp_len];
    let n = elements as usize;
    assert!(
        (0..n).all(|i| verbatim[i] == input[i * 4 + 2]),
        "first verbatim run is byte-column 2"
    );
    assert!(
        (0..n).all(|i| verbatim[n + i] == input[i * 4 + 3]),
        "second verbatim run is byte-column 3"
    );
}

// ---------------------------------------------------------------------
// Back-compat: version-1 (pre-checksum) bytes must keep decoding
// ---------------------------------------------------------------------

/// A version-1 container built with the frozen legacy emitters: 64
/// elements of width 2, passthrough mode, zlib-class payload — the
/// exact byte layout the pre-checksum release wrote.
fn legacy_container_fixture() -> (Vec<u8>, Vec<u8>) {
    let original: Vec<u8> = (0..128u8).collect();
    let codec = codec_for(CodecId::Deflate, CompressionLevel::Default);
    let header = Header {
        version: LEGACY_VERSION,
        width: 2,
        codec: CodecId::Deflate,
        level: CompressionLevel::Default,
        linearization: Linearization::Row,
        preference: 0,
        chunk_elements: 64,
        total_len: original.len() as u64,
        checksum: isobar_codecs::deflate::adler32(&original),
    };
    let record = ChunkRecord {
        mode: ChunkMode::Passthrough,
        elements: 64,
        mask: 0,
        compressed: codec.compress(&original),
        incompressible: Vec::new(),
    };
    let mut bytes = Vec::new();
    header.write(&mut bytes);
    record.write_legacy(&mut bytes);
    (bytes, original)
}

#[test]
fn legacy_container_bytes_are_bit_stable() {
    // The legacy emitters themselves are frozen: this fingerprint was
    // taken when version 2 landed and must never drift, or the
    // back-compat tests stop proving anything.
    let (bytes, _) = legacy_container_fixture();
    let fingerprint = fnv(&bytes);
    let expected = 0x78f6_5dc3_1870_dc73u64; // regenerate only with a v1 layout change (never)
    assert_eq!(
        fingerprint,
        expected,
        "legacy fixture drifted: {fingerprint:#018x} (len {})",
        bytes.len()
    );
}

#[test]
fn legacy_container_still_decodes() {
    let (bytes, original) = legacy_container_fixture();
    assert_eq!(bytes[4], 1, "fixture is version 1");
    // Default decode (verification on): v1 carries no chunk checksums
    // to verify, but the whole-stream Adler-32 still checks out.
    let out = IsobarCompressor::default()
        .decompress(&bytes)
        .expect("pre-checksum container must keep decoding");
    assert_eq!(out, original);
}

#[test]
fn legacy_stream_still_decodes() {
    // A version-1 stream, hand-framed: 9-byte header, one chunk frame
    // with the 29-byte legacy record, 13-byte trailer.
    let (container, original) = legacy_container_fixture();
    let record = &container[HEADER_LEN..];

    let mut s = Vec::new();
    s.extend_from_slice(b"ISBS");
    s.push(1); // version
    s.push(2); // width
    s.push(CodecId::Deflate as u8);
    s.push(1); // level (default)
    s.push(Linearization::Row as u8);
    s.push(0x01); // chunk frame marker
    s.extend_from_slice(record);
    s.push(0x00); // end marker
    s.extend_from_slice(&(original.len() as u64).to_le_bytes());
    s.extend_from_slice(&isobar_codecs::deflate::adler32(&original).to_le_bytes());

    let out = isobar::IsobarReader::new(&s[..])
        .expect("v1 stream header must parse")
        .read_to_vec()
        .expect("pre-checksum stream must keep decoding");
    assert_eq!(out, original);
}
