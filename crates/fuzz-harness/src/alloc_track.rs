//! Peak-allocation tracking for the fuzz harness.
//!
//! Corrupt input must never cost more memory than a small multiple of
//! its own size: a decoder that trusts a length field enough to
//! pre-allocate gigabytes is a denial-of-service bug even if it later
//! returns `Err`. The harness enforces this with a counting global
//! allocator: the fuzz binary and the smoke test install [`PeakAlloc`]
//! via `#[global_allocator]`, and the layer runner resets the peak
//! before every decode call and checks the high-water mark after.
//!
//! The counters are module-level statics so measurement works from any
//! binary that installed the allocator; when it is not installed (for
//! example in the library's own unit tests) [`installed`] reports
//! `false` and callers skip the bound check.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A [`System`]-backed allocator that maintains the number of live
/// heap bytes and their high-water mark since the last [`reset_peak`].
pub struct PeakAlloc;

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(true, Relaxed);
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            bump(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !ptr.is_null() {
            CURRENT.fetch_sub(layout.size(), Relaxed);
            bump(new_size);
        }
        ptr
    }
}

fn bump(size: usize) {
    let now = CURRENT.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(now, Relaxed);
}

/// Live heap bytes right now.
pub fn current() -> usize {
    CURRENT.load(Relaxed)
}

/// High-water mark of live heap bytes since the last [`reset_peak`].
pub fn peak() -> usize {
    PEAK.load(Relaxed)
}

/// Restart peak tracking from the current live size.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Relaxed), Relaxed);
}

/// Whether [`PeakAlloc`] is this process's global allocator (detected
/// by having seen at least one allocation).
pub fn installed() -> bool {
    INSTALLED.load(Relaxed)
}
