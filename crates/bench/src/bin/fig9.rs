//! Figure 9 — ΔCR under different data linearizations.
//!
//! Compresses several datasets in their original element order, in
//! Hilbert space-filling-curve order, and in random order, and reports
//! ISOBAR's ΔCR (vs standalone zlib) for each ordering. The paper's
//! claim: the improvement barely moves, because byte-column statistics
//! are permutation invariant.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{deflate::Deflate, Codec};
use isobar_datasets::catalog;
use isobar_linearize::{apply_permutation, hilbert_order, random_permutation};

const DATASETS: [&str; 6] = [
    "gts_chkp_zion",
    "xgc_iphase",
    "flash_velx",
    "msg_sweep3d",
    "num_brain",
    "obs_temp",
];

fn main() {
    banner("Figure 9: ΔCR(%) under original / Hilbert / random element order");
    println!(
        "{:<15} {:>10} {:>10} {:>10}",
        "Dataset", "original", "Hilbert", "random"
    );
    let zlib = Deflate::default();
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let n = ds.element_count();
        let orders: [(&str, Vec<u8>); 3] = [
            ("original", ds.bytes.clone()),
            (
                "hilbert",
                apply_permutation(&ds.bytes, ds.width(), &hilbert_order(n)),
            ),
            (
                "random",
                apply_permutation(&ds.bytes, ds.width(), &random_permutation(n, SEED)),
            ),
        ];
        print!("{name:<15}");
        for (_, data) in &orders {
            let standalone = zlib.compress(data);
            let standalone_cr = data.len() as f64 / standalone.len() as f64;
            let isobar = run_isobar(data, ds.width(), Preference::Speed);
            print!("{:>10.2}", delta_cr_pct(isobar.ratio, standalone_cr));
        }
        println!();
    }
    println!();
    println!("paper shape: the three columns are nearly equal per dataset; even the");
    println!("fully random ordering keeps a ~10%+ improvement on improvable data.");
}
