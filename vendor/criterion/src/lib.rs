//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmark surface its `harness = false` benches use:
//! groups, throughput annotation, `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is deliberately simple — per benchmark it runs
//! a short warm-up, then `sample_size` timed samples (each sample
//! auto-batched to at least ~5 ms), and reports the median sample with
//! min/max spread and, when a `Throughput` is set, MB/s. No plotting,
//! no statistics beyond the median, no saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Collects iteration timings for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time the routine: warm up, choose a batch size so one sample
    /// lasts at least ~5 ms, then record `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = Instant::now();
        std::hint::black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));

        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(
                start
                    .elapsed()
                    .div_f64(batch as f64)
                    .max(Duration::from_nanos(1)),
            );
        }
        self.samples.sort_unstable();
    }

    fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let median = bencher.median();
    let lo = bencher.samples.first().copied().unwrap_or_default();
    let hi = bencher.samples.last().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.1} MB/s",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        None => String::new(),
    };
    println!("{label:<45} {median:>12.3?}  [{lo:.3?} .. {hi:.3?}]{rate}");
}

/// A named set of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, label),
            &bencher,
            self.throughput,
        );
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) {
        self.run(label, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.run(label, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filter args) to
            // `harness = false` binaries; this simple runner always
            // runs everything.
            $($group();)+
        }
    };
}
