//! The merged output container (§II.D, Fig. 7).
//!
//! The merger concatenates: a file header carrying the EUPA decision
//! and chunking parameters, then per chunk its analyzer metadata, the
//! solver-compressed bytes C′, and the verbatim incompressible bytes I.
//! Everything is little-endian and self-describing so decompression
//! needs no out-of-band information; a whole-stream Adler-32 of the
//! original data guards reassembly.

use crate::analyzer::ColumnSelection;
use crate::error::IsobarError;
use isobar_codecs::{CodecId, CompressionLevel};
use isobar_linearize::Linearization;

/// Container magic: "ISBR".
pub const MAGIC: [u8; 4] = *b"ISBR";
/// Container format version.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Fixed per-chunk metadata size in bytes.
pub const CHUNK_HEADER_LEN: usize = 29;

/// File header fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Header {
    /// Element width ω in bytes.
    pub width: u8,
    /// EUPA-chosen solver.
    pub codec: CodecId,
    /// Solver effort level.
    pub level: CompressionLevel,
    /// EUPA-chosen linearization for compressible columns.
    pub linearization: Linearization,
    /// Preference byte (for provenance only; not needed to decode).
    pub preference: u8,
    /// Chunk size in elements.
    pub chunk_elements: u32,
    /// Original (uncompressed) length in bytes.
    pub total_len: u64,
    /// Adler-32 of the original bytes.
    pub checksum: u32,
}

impl Header {
    /// Serialize into the output buffer.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.width);
        out.push(self.codec as u8);
        out.push(level_to_u8(self.level));
        out.push(self.linearization as u8);
        out.push(self.preference);
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&self.chunk_elements.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    /// Parse from the front of `data`.
    pub fn read(data: &[u8]) -> Result<Header, IsobarError> {
        if data.len() < HEADER_LEN {
            return Err(IsobarError::Truncated);
        }
        if data[..4] != MAGIC {
            return Err(IsobarError::Corrupt("bad magic"));
        }
        if data[4] != VERSION {
            return Err(IsobarError::Corrupt("unsupported version"));
        }
        let width = data[5];
        if width == 0 || width as usize > 64 {
            return Err(IsobarError::Corrupt("bad element width"));
        }
        let codec = CodecId::from_u8(data[6]).map_err(IsobarError::Codec)?;
        let level = level_from_u8(data[7]).ok_or(IsobarError::Corrupt("bad level byte"))?;
        let linearization =
            Linearization::from_u8(data[8]).ok_or(IsobarError::Corrupt("bad linearization"))?;
        let preference = data[9];
        let chunk_elements = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes"));
        if chunk_elements == 0 {
            return Err(IsobarError::Corrupt("zero chunk size"));
        }
        let total_len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
        let checksum = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
        Ok(Header {
            width,
            codec,
            level,
            linearization,
            preference,
            chunk_elements,
            total_len,
            checksum,
        })
    }
}

/// How one chunk was encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ChunkMode {
    /// Undetermined chunk: the whole chunk went through the solver
    /// (Algorithm 1, lines 2–3).
    Passthrough = 0,
    /// Improvable chunk: compressible columns solved, incompressible
    /// stored (Algorithm 1, lines 5–7).
    Partitioned = 1,
}

/// Per-chunk record: metadata + payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Encoding mode.
    pub mode: ChunkMode,
    /// Elements in this chunk.
    pub elements: u32,
    /// Analyzer column mask (bit c set = column c compressible); 0 for
    /// passthrough chunks.
    pub mask: u64,
    /// Solver output C′.
    pub compressed: Vec<u8>,
    /// Verbatim incompressible bytes I (column-major).
    pub incompressible: Vec<u8>,
}

impl ChunkRecord {
    /// Serialize into the output buffer.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.mode as u8);
        out.extend_from_slice(&self.elements.to_le_bytes());
        out.extend_from_slice(&self.mask.to_le_bytes());
        out.extend_from_slice(&(self.compressed.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.incompressible.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.compressed);
        out.extend_from_slice(&self.incompressible);
    }

    /// Parse one record from the front of `data`; returns the record
    /// and the number of bytes consumed.
    ///
    /// Equivalent to [`ChunkRecord::read_bounded`] with no element
    /// ceiling; callers that know the header's `chunk_elements` should
    /// prefer the bounded form.
    pub fn read(data: &[u8], width: usize) -> Result<(ChunkRecord, usize), IsobarError> {
        Self::read_bounded(data, width, u32::MAX)
    }

    /// Parse one record from the front of `data`, rejecting records
    /// that claim more than `max_elements` elements (a valid container
    /// never exceeds the header's `chunk_elements`); returns the record
    /// and the number of bytes consumed.
    pub fn read_bounded(
        data: &[u8],
        width: usize,
        max_elements: u32,
    ) -> Result<(ChunkRecord, usize), IsobarError> {
        let header = ChunkHeader::validate(data, width, max_elements)?;
        let total = CHUNK_HEADER_LEN
            .checked_add(header.comp_len)
            .and_then(|t| t.checked_add(header.incomp_len))
            .ok_or(IsobarError::Corrupt("chunk length overflow"))?;
        if data.len() < total {
            return Err(IsobarError::Truncated);
        }
        Ok((
            ChunkRecord {
                mode: header.mode,
                elements: header.elements,
                mask: header.mask,
                compressed: data[CHUNK_HEADER_LEN..CHUNK_HEADER_LEN + header.comp_len].to_vec(),
                incompressible: data[CHUNK_HEADER_LEN + header.comp_len..total].to_vec(),
            },
            total,
        ))
    }

    /// The analyzer selection this record encodes. Errors on widths
    /// > 64, which no valid header can carry.
    pub fn selection(&self, width: usize) -> Result<ColumnSelection, IsobarError> {
        ColumnSelection::from_mask(self.mask, width)
    }
}

/// The validated fixed part of a chunk record.
///
/// Produced by [`ChunkHeader::validate`], which performs every
/// structural check *before the caller allocates anything* — the
/// streaming reader uses it to vet the 29 fixed bytes before deciding
/// how much payload to pull off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Encoding mode.
    pub mode: ChunkMode,
    /// Elements in the chunk.
    pub elements: u32,
    /// Analyzer column mask.
    pub mask: u64,
    /// Solver payload length C′.
    pub comp_len: usize,
    /// Verbatim payload length I.
    pub incomp_len: usize,
}

impl ChunkHeader {
    /// Parse and validate the fixed 29-byte chunk header at the front
    /// of `data`, without touching (or requiring) any payload bytes.
    ///
    /// Checks, in order: header completeness, mode byte, element count
    /// against `max_elements`, mask width, passthrough mask, and the
    /// incompressible-length consistency equation. Allocation-free.
    pub fn validate(
        data: &[u8],
        width: usize,
        max_elements: u32,
    ) -> Result<ChunkHeader, IsobarError> {
        if data.len() < CHUNK_HEADER_LEN {
            return Err(IsobarError::Truncated);
        }
        let mode = match data[0] {
            0 => ChunkMode::Passthrough,
            1 => ChunkMode::Partitioned,
            _ => return Err(IsobarError::Corrupt("bad chunk mode")),
        };
        let elements = u32::from_le_bytes(data[1..5].try_into().expect("4 bytes"));
        let mask = u64::from_le_bytes(data[5..13].try_into().expect("8 bytes"));
        let comp_len = u64::from_le_bytes(data[13..21].try_into().expect("8 bytes")) as usize;
        let incomp_len = u64::from_le_bytes(data[21..29].try_into().expect("8 bytes")) as usize;

        if elements > max_elements {
            return Err(IsobarError::Corrupt("chunk exceeds header chunk size"));
        }
        if mask >> width != 0 {
            return Err(IsobarError::Corrupt("column mask wider than element"));
        }
        if mode == ChunkMode::Passthrough && mask != 0 {
            return Err(IsobarError::Corrupt("passthrough chunk with column mask"));
        }
        let incompressible_cols = width - (mask & mask_low(width)).count_ones() as usize;
        let expected_incomp = match mode {
            ChunkMode::Passthrough => 0,
            ChunkMode::Partitioned => elements as usize * incompressible_cols,
        };
        if incomp_len != expected_incomp {
            return Err(IsobarError::Corrupt("incompressible length mismatch"));
        }
        Ok(ChunkHeader {
            mode,
            elements,
            mask,
            comp_len,
            incomp_len,
        })
    }
}

#[inline]
fn mask_low(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Map a compression level to its metadata byte.
pub fn level_to_u8(level: CompressionLevel) -> u8 {
    match level {
        CompressionLevel::Fast => 0,
        CompressionLevel::Default => 1,
        CompressionLevel::Best => 2,
    }
}

/// Inverse of [`level_to_u8`].
pub fn level_from_u8(raw: u8) -> Option<CompressionLevel> {
    match raw {
        0 => Some(CompressionLevel::Fast),
        1 => Some(CompressionLevel::Default),
        2 => Some(CompressionLevel::Best),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_header() -> Header {
        Header {
            width: 8,
            codec: CodecId::Deflate,
            level: CompressionLevel::Default,
            linearization: Linearization::Row,
            preference: 1,
            chunk_elements: 375_000,
            total_len: 12345,
            checksum: 0xDEADBEEF,
        }
    }

    #[test]
    fn header_round_trips() {
        let mut buf = Vec::new();
        demo_header().write(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::read(&buf).unwrap(), demo_header());
    }

    #[test]
    fn header_rejects_corruption() {
        let mut buf = Vec::new();
        demo_header().write(&mut buf);
        assert!(matches!(
            Header::read(&buf[..10]),
            Err(IsobarError::Truncated)
        ));

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[4] = 99; // version
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[6] = 77; // codec id
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[7] = 9; // level
        assert!(Header::read(&bad).is_err());

        let mut bad = buf;
        bad[12..16].copy_from_slice(&0u32.to_le_bytes()); // chunk size 0
        assert!(Header::read(&bad).is_err());
    }

    #[test]
    fn chunk_record_round_trips() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 100,
            mask: 0b1100_0011, // 4 compressible columns of 8
            compressed: vec![1, 2, 3, 4, 5],
            incompressible: vec![9; 400],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        buf.extend_from_slice(&[0xFF; 7]); // trailing data must be left alone
        let (parsed, consumed) = ChunkRecord::read(&buf, 8).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len() - 7);
    }

    #[test]
    fn passthrough_record_round_trips() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 50,
            mask: 0,
            compressed: vec![7; 64],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        let (parsed, consumed) = ChunkRecord::read(&buf, 8).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn chunk_record_rejects_inconsistent_lengths() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 100,
            mask: 0b0000_1111,
            compressed: vec![],
            incompressible: vec![0; 400], // correct for 4 incompressible cols
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        // Claim a different element count → expected incompressible
        // length no longer matches.
        buf[1..5].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt(_))
        ));
    }

    #[test]
    fn chunk_record_rejects_wide_mask_and_truncation() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 10,
            mask: 0b1_0000_0000, // bit 8 set but width is 8
            compressed: vec![],
            incompressible: vec![0; 80],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        assert!(matches!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt(_))
        ));

        let ok = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 10,
            mask: 0,
            compressed: vec![5; 100],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        ok.write(&mut buf);
        assert!(matches!(
            ChunkRecord::read(&buf[..buf.len() - 1], 8),
            Err(IsobarError::Truncated)
        ));
    }

    #[test]
    fn passthrough_record_rejects_nonzero_mask() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 10,
            mask: 0,
            compressed: vec![5; 16],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        // A passthrough record must carry mask == 0; set a bit.
        buf[5] = 0b0000_0001;
        assert_eq!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt("passthrough chunk with column mask"))
        );
    }

    #[test]
    fn bounded_read_rejects_oversized_element_count() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 1000,
            mask: 0,
            compressed: vec![5; 16],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        assert!(ChunkRecord::read_bounded(&buf, 8, 1000).is_ok());
        assert_eq!(
            ChunkRecord::read_bounded(&buf, 8, 999),
            Err(IsobarError::Corrupt("chunk exceeds header chunk size"))
        );
    }

    #[test]
    fn level_bytes_round_trip() {
        for level in CompressionLevel::ALL {
            assert_eq!(level_from_u8(level_to_u8(level)), Some(level));
        }
        assert_eq!(level_from_u8(3), None);
    }
}
