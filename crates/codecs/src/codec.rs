//! The [`Codec`] trait and common codec plumbing.
//!
//! ISOBAR is a *preconditioner*: it can drive any byte-oriented lossless
//! compressor. This module defines the solver interface that the
//! preconditioner (and the benchmark harness) programs against, the
//! identifiers used in container metadata, and the error type shared by
//! all decoders.

use std::error::Error;
use std::fmt;

/// Errors produced while decoding a compressed stream.
///
/// Compression itself is infallible for all codecs in this workspace:
/// any byte stream can be compressed (in the worst case into stored
/// blocks slightly larger than the input). Decompression validates the
/// stream and reports corruption instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the decoder finished.
    UnexpectedEof,
    /// A structural invariant of the format was violated.
    Corrupt(&'static str),
    /// An integrity checksum did not match the decoded payload.
    ChecksumMismatch {
        /// Checksum stored in the stream.
        expected: u32,
        /// Checksum computed over the decoded bytes.
        actual: u32,
    },
    /// The stream header names a codec this build does not provide.
    UnknownCodec(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: stream says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
        }
    }
}

impl Error for CodecError {}

/// Effort knob shared by both solvers, mirroring zlib's level argument.
///
/// The paper's EUPA-selector trades compression ratio against
/// throughput; exposing the same axis per codec lets the selector (and
/// the ablation benches) explore intermediate points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum CompressionLevel {
    /// Greedy matching, short hash chains: maximum throughput.
    Fast,
    /// Lazy matching with moderate chain depth (zlib level ≈ 6).
    #[default]
    Default,
    /// Deep chains and aggressive lazy matching (zlib level ≈ 9).
    Best,
}

impl CompressionLevel {
    /// All levels, in increasing-effort order. Useful for sweeps.
    pub const ALL: [CompressionLevel; 3] = [
        CompressionLevel::Fast,
        CompressionLevel::Default,
        CompressionLevel::Best,
    ];
}

impl fmt::Display for CompressionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CompressionLevel::Fast => "fast",
            CompressionLevel::Default => "default",
            CompressionLevel::Best => "best",
        };
        f.write_str(name)
    }
}

/// Stable identifier for a codec, stored in ISOBAR container metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// DEFLATE in a zlib wrapper — the paper's "zlib" solver.
    Deflate = 1,
    /// The BWT block codec — the paper's "bzlib2" solver.
    Bzip2Like = 2,
}

impl CodecId {
    /// Parse a codec id byte from container metadata.
    pub fn from_u8(raw: u8) -> Result<Self, CodecError> {
        match raw {
            1 => Ok(CodecId::Deflate),
            2 => Ok(CodecId::Bzip2Like),
            other => Err(CodecError::UnknownCodec(other)),
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Deflate => "zlib",
            CodecId::Bzip2Like => "bzlib2",
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reusable working memory for the allocation-free codec entry points
/// ([`Codec::compress_into`] / [`Codec::decompress_into`]).
///
/// One scratch serves every codec: each implementation uses its own
/// compartment and ignores the rest, so a caller can hold a single
/// scratch per worker (or per serial loop) and reuse it across chunks
/// regardless of which solver EUPA picked. All buffers start empty and
/// grow to their steady-state capacity during the first chunk.
#[derive(Default)]
pub struct CodecScratch {
    pub(crate) deflate: crate::deflate::encoder::DeflateScratch,
}

impl CodecScratch {
    /// Fresh, empty scratch; compartments are populated on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A byte-oriented lossless compressor: the "solver" in the paper's
/// preconditioner/solver framing.
///
/// Implementations must round-trip exactly: for every `data`,
/// `decompress(&compress(data)) == data`. The `*_into` methods must be
/// byte-identical to their allocating counterparts for the same input —
/// scratch state carried over from earlier buffers must never change
/// the output (the `scratch_reuse` property suite enforces this).
pub trait Codec: Send + Sync {
    /// Stable identifier for container metadata.
    fn id(&self) -> CodecId;

    /// Compress `data`. Infallible; worst case the output is slightly
    /// larger than the input (stored blocks).
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompress a stream produced by [`Codec::compress`].
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError>;

    /// Compress `data`, replacing the contents of `out` and borrowing
    /// working memory from `scratch`.
    ///
    /// The default delegates to [`Codec::compress`]; codecs with native
    /// support reuse both `out` and `scratch` so a warm steady state
    /// performs no allocations at all.
    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>, scratch: &mut CodecScratch) {
        let _ = scratch;
        out.clear();
        out.extend_from_slice(&self.compress(data));
    }

    /// Decompress a stream produced by [`Codec::compress`], replacing
    /// the contents of `out`.
    ///
    /// The default delegates to [`Codec::decompress`]; codecs with
    /// native support decode straight into the reused `out` buffer.
    fn decompress_into(
        &self,
        data: &[u8],
        out: &mut Vec<u8>,
        scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        let _ = scratch;
        let bytes = self.decompress(data)?;
        out.clear();
        out.extend_from_slice(&bytes);
        Ok(())
    }

    /// Human-readable name (defaults to the id's name).
    fn name(&self) -> &'static str {
        self.id().name()
    }
}

/// Construct the codec registered under `id` at the given level.
pub fn codec_for(id: CodecId, level: CompressionLevel) -> Box<dyn Codec> {
    match id {
        CodecId::Deflate => Box::new(crate::deflate::Deflate::new(level)),
        CodecId::Bzip2Like => Box::new(crate::bwt::Bzip2Like::new(level)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_round_trips_through_u8() {
        for id in [CodecId::Deflate, CodecId::Bzip2Like] {
            assert_eq!(CodecId::from_u8(id as u8).unwrap(), id);
        }
    }

    #[test]
    fn unknown_codec_id_is_rejected() {
        assert_eq!(CodecId::from_u8(0), Err(CodecError::UnknownCodec(0)));
        assert_eq!(CodecId::from_u8(200), Err(CodecError::UnknownCodec(200)));
    }

    #[test]
    fn codec_names_match_paper_terminology() {
        assert_eq!(CodecId::Deflate.name(), "zlib");
        assert_eq!(CodecId::Bzip2Like.name(), "bzlib2");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = CodecError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("0x00000001"));
        assert!(msg.contains("0x00000002"));
        assert!(CodecError::UnexpectedEof.to_string().contains("end"));
    }

    #[test]
    fn levels_are_ordered_by_effort() {
        assert!(CompressionLevel::Fast < CompressionLevel::Default);
        assert!(CompressionLevel::Default < CompressionLevel::Best);
        assert_eq!(CompressionLevel::default(), CompressionLevel::Default);
    }

    #[test]
    fn codec_factory_builds_both_solvers() {
        for id in [CodecId::Deflate, CodecId::Bzip2Like] {
            let codec = codec_for(id, CompressionLevel::Default);
            assert_eq!(codec.id(), id);
        }
    }
}
