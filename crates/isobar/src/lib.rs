#![warn(missing_docs)]

//! ISOBAR-compress: a byte-column preconditioner for general-purpose
//! lossless compressors.
//!
//! Reproduction of Schendel, Jin, Shah, et al., *ISOBAR Preconditioner
//! for Effective and High-throughput Lossless Data Compression*
//! (ICDE 2012). ISOBAR treats an array of fixed-width elements
//! (doubles, floats, 64-bit integers) as a byte matrix and observes
//! that in hard-to-compress scientific data only *some* byte-columns
//! are noise; the rest are highly predictable. The workflow (paper
//! Fig. 2):
//!
//! 1. [`analyzer`] builds a byte-value frequency histogram per
//!    byte-column and classifies each column as compressible or
//!    incompressible against the tolerance `τ·N/256` (τ = 1.42).
//! 2. [`partitioner`] routes compressible columns to the solver and
//!    stores incompressible columns verbatim (Algorithm 1).
//! 3. [`eupa`] (End User's Preference Adaptive selector) picks the
//!    solver (zlib-class or bzlib2-class) and the linearization (row
//!    or column) by trial compression of random samples, optimizing
//!    the user's preference: compression ratio or throughput.
//! 4. [`chunk`]/[`container`] process the input in ~3 MB chunks and
//!    merge metadata, compressed bytes, and incompressible bytes into
//!    a self-describing output stream (Fig. 7).
//!
//! The top-level entry points are [`IsobarCompressor::compress`] and
//! [`IsobarCompressor::decompress`] in [`pipeline`]; round-trips are
//! byte-exact. Every stage records into the [`telemetry`] substrate
//! (free when compiled out — see the `docs/FORMAT.md` and README
//! "Observability" notes): [`CompressionReport::telemetry`] carries the
//! per-call snapshot, and the `*_recorded` variants
//! ([`IsobarCompressor::compress_recorded`],
//! [`Analyzer::analyze_recorded`], [`EupaSelector::select_recorded`])
//! accumulate into a caller-held [`Recorder`]. The on-disk container
//! layouts (batch `ISBR`, streaming `ISBS`, store `ISST`) are specified
//! byte-by-byte in `docs/FORMAT.md`.
//!
//! # Example
//!
//! ```
//! use isobar::{IsobarCompressor, IsobarOptions, Preference};
//!
//! // 8-byte elements: top half predictable, bottom half noise.
//! let data: Vec<u8> = (0..4000u64)
//!     .flat_map(|i| ((i / 7) << 32 | (i.wrapping_mul(0x9E3779B9) & 0xFFFF_FFFF)).to_le_bytes())
//!     .collect();
//!
//! let isobar = IsobarCompressor::new(IsobarOptions {
//!     preference: Preference::Speed,
//!     ..Default::default()
//! });
//! let packed = isobar.compress(&data, 8).unwrap();
//! assert_eq!(isobar.decompress(&packed).unwrap(), data);
//! ```

pub mod analyzer;
pub mod bit_analyzer;
pub mod chunk;
pub mod container;
pub mod error;
pub mod eupa;
pub mod partitioner;
pub mod pipeline;
pub mod salvage;
pub mod stream;

pub use analyzer::{Analyzer, ColumnSelection, DEFAULT_TAU};
pub use error::IsobarError;
pub use eupa::{EupaDecision, EupaSelector, Preference};
pub use pipeline::{
    throughput_mbps, ChunkDecision, CompressionReport, IsobarCompressor, IsobarOptions,
    PipelineScratch,
};
pub use salvage::{FsckReport, SalvageReport};
pub use stream::{IsobarReader, IsobarWriter};

pub use isobar_codecs::{Codec, CodecId, CompressionLevel};
pub use isobar_linearize::Linearization;
pub use isobar_simd::{
    active_tier as active_kernel_tier, set_kernels, KernelSelection, KernelTier,
};

/// Re-export of the telemetry substrate so downstream crates can name
/// counters, stages, and snapshots without a direct dependency. See
/// [`isobar_telemetry`] for the recording model and the telemetry-off
/// build configuration.
pub use isobar_telemetry as telemetry;
pub use isobar_telemetry::{Recorder, TelemetrySnapshot};

/// Re-export of the tracing crate, so downstream crates can record
/// spans, activate tracing, and drain Chrome-trace output without a
/// direct dependency. See [`isobar_trace`] for the recording model and
/// the trace-off build configuration.
pub use isobar_trace as trace;
