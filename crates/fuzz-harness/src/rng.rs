//! Deterministic pseudo-random numbers for reproducible fuzzing.
//!
//! A fixed seed must reproduce the exact same mutation sequence on any
//! machine, so the harness carries its own tiny generator instead of
//! depending on an external crate or on any ambient entropy source
//! (no time, no addresses, no thread ids).

/// An xorshift64* generator (Vigna 2016): 64 bits of state, full
/// period, and more than enough statistical quality for choosing
/// mutation sites.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from `seed`. A zero seed (which xorshift
    /// cannot accept) is remapped to a fixed non-zero constant.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        // One scramble round so that nearby seeds diverge immediately.
        let mut rng = Rng { state };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// True once in `n` calls on average. `n` must be non-zero.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n) == 0
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = Rng::new(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = Rng::new(7);
        for n in [1usize, 2, 3, 17, 256, 1 << 20] {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
    }
}
