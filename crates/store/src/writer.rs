//! Appending store writer.

use crate::error::StoreError;
use crate::format::{IndexEntry, MAGIC, TRAILER_MAGIC, VERSION};
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, IsobarOptions, PipelineScratch, Recorder, TelemetrySnapshot};
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes a checkpoint store file, compressing each variable through
/// the ISOBAR pipeline as it arrives.
///
/// Records are appended in arrival order; the index and trailer are
/// written by [`StoreWriter::close`]. A store that was not closed is
/// detectable (no trailer) and rejected by the reader — half-written
/// checkpoints must not be restorable by accident.
pub struct StoreWriter {
    sink: BufWriter<File>,
    compressor: IsobarCompressor,
    /// Pipeline working memory, warm across every `put` call.
    scratch: PipelineScratch,
    index: Vec<IndexEntry>,
    seen: HashSet<(u32, String)>,
    offset: u64,
    /// Telemetry accumulated across every `put` on this store.
    recorder: Recorder,
}

impl StoreWriter {
    /// Create (truncate) a store at `path`.
    pub fn create(path: impl AsRef<Path>, options: IsobarOptions) -> Result<Self, StoreError> {
        let mut sink = BufWriter::new(File::create(path)?);
        sink.write_all(&MAGIC)?;
        sink.write_all(&[VERSION])?;
        Ok(StoreWriter {
            sink,
            compressor: IsobarCompressor::new(options),
            scratch: PipelineScratch::new(),
            index: Vec::new(),
            seen: HashSet::new(),
            offset: (MAGIC.len() + 1) as u64,
            recorder: Recorder::new(),
        })
    }

    /// Compress and append one variable for one time step.
    ///
    /// `data` must be a whole number of `width`-byte elements. Each
    /// `(step, name)` pair may be written once.
    pub fn put(
        &mut self,
        step: u32,
        name: &str,
        data: &[u8],
        width: usize,
    ) -> Result<&IndexEntry, StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::NameTooLong(name.len()));
        }
        if !self.seen.insert((step, name.to_string())) {
            return Err(StoreError::Duplicate {
                step,
                name: name.to_string(),
            });
        }
        let _span = isobar::trace::span(isobar::trace::TraceTag::StorePut, isobar::trace::NO_CHUNK);
        let container = self.compressor.compress_recorded(
            data,
            width,
            &mut self.scratch,
            &mut self.recorder,
        )?;
        self.recorder.incr(Counter::StorePuts);
        self.recorder.add(Counter::StoreRawBytes, data.len() as u64);
        self.recorder
            .add(Counter::StoreContainerBytes, container.len() as u64);

        let name_bytes = name.as_bytes();
        self.sink
            .write_all(&(name_bytes.len() as u16).to_le_bytes())?;
        self.sink.write_all(name_bytes)?;
        self.sink.write_all(&step.to_le_bytes())?;
        self.sink.write_all(&[width as u8])?;
        self.sink
            .write_all(&(container.len() as u64).to_le_bytes())?;
        let record_header = 2 + name_bytes.len() as u64 + 4 + 1 + 8;
        let container_offset = self.offset + record_header;
        self.sink.write_all(&container)?;
        self.offset = container_offset + container.len() as u64;

        self.index.push(IndexEntry {
            name: name.to_string(),
            step,
            width: width as u8,
            offset: container_offset,
            container_len: container.len() as u64,
            raw_len: data.len() as u64,
        });
        Ok(self.index.last().expect("just pushed"))
    }

    /// Entries written so far (in arrival order).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// Snapshot of the telemetry recorded so far. The index-byte
    /// accounting only lands once [`StoreWriter::close`] runs; use
    /// [`StoreWriter::close_with_telemetry`] for the complete picture.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Write the index and trailer, flush, and close the file.
    pub fn close(self) -> Result<(), StoreError> {
        self.close_with_telemetry().map(|_| ())
    }

    /// [`StoreWriter::close`], also returning the store's complete
    /// telemetry (including index and trailer bytes).
    pub fn close_with_telemetry(mut self) -> Result<TelemetrySnapshot, StoreError> {
        let index_offset = self.offset;
        let mut encoded = Vec::new();
        for entry in &self.index {
            entry.write(&mut encoded);
        }
        self.sink.write_all(&encoded)?;
        self.sink.write_all(&index_offset.to_le_bytes())?;
        self.sink
            .write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.sink.write_all(&TRAILER_MAGIC)?;
        self.sink.flush()?;
        self.recorder.add(
            Counter::StoreIndexBytes,
            encoded.len() as u64 + crate::format::TRAILER_LEN as u64,
        );
        Ok(self.recorder.snapshot())
    }
}
