//! Generator primitives for the synthetic dataset families.
//!
//! Each generator controls, per byte-column of the element
//! representation, whether that column looks like noise (near-uniform
//! over 0..=255, so its maximum bin stays below ISOBAR's tolerance
//! τ·N/256) or like signal (skewed enough to clear it). The concrete
//! recipes mirror how the real files get their structure: exponent
//! locality from smooth physical fields, uniform low mantissa bits from
//! measurement/rounding noise, value pools from quantized sensors, and
//! run structure from checkpoint dumps.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How a dataset's elements are synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenKind {
    /// Smooth f64 field: narrow exponent band, slowly varying top
    /// mantissa bits, `hard_bytes` uniform-noise low bytes. If
    /// `unique_fraction < 1`, values are drawn from a pool of that
    /// relative size with temporal locality.
    DoubleField {
        /// Number of trailing noise bytes (0..=6).
        hard_bytes: usize,
        /// Fraction of distinct values (1.0 = all unique).
        unique_fraction: f64,
    },
    /// Smooth f32 field with `hard_bytes` uniform low bytes (0..=2).
    FloatField {
        /// Number of trailing noise bytes.
        hard_bytes: usize,
    },
    /// 64-bit integer particle IDs: uniform low `hard_bytes`, constant
    /// high bytes, drawn from a pool sized by `unique_fraction`.
    IntIds {
        /// Number of trailing noise bytes.
        hard_bytes: usize,
        /// Fraction of distinct IDs.
        unique_fraction: f64,
    },
    /// Small value pool with Markov run structure: every byte-column is
    /// heavily skewed (0% hard-to-compress bytes), overall redundancy
    /// high. Models msg_sppm / num_plasma / obs_spitzer.
    Repetitive {
        /// Fraction of distinct values.
        unique_fraction: f64,
        /// Probability of repeating the previous element.
        repeat_prob: f64,
    },
    /// High-entropy doubles whose every byte-column carries a mild
    /// spike (e.g. a preferred byte value), so no column is classified
    /// incompressible yet generic compressors gain little. Models
    /// msg_bt / obs_error.
    SkewedNoise {
        /// Probability that any mantissa byte is the preferred value.
        spike_prob: f64,
        /// Fraction of distinct values.
        unique_fraction: f64,
    },
}

/// Generate `n` elements of the given kind into a byte buffer
/// (little-endian element encoding), deterministically from `seed`.
pub fn generate(kind: GenKind, n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        GenKind::DoubleField {
            hard_bytes,
            unique_fraction,
        } => double_field(n, hard_bytes, unique_fraction, &mut rng),
        GenKind::FloatField { hard_bytes } => float_field(n, hard_bytes, &mut rng),
        GenKind::IntIds {
            hard_bytes,
            unique_fraction,
        } => int_ids(n, hard_bytes, unique_fraction, &mut rng),
        GenKind::Repetitive {
            unique_fraction,
            repeat_prob,
        } => repetitive(n, unique_fraction, repeat_prob, &mut rng),
        GenKind::SkewedNoise {
            spike_prob,
            unique_fraction,
        } => skewed_noise(n, spike_prob, unique_fraction, &mut rng),
    }
}

/// Assemble one f64 bit pattern: fixed sign, an exponent from a slow
/// walk, predictable top mantissa bits, uniform low `hard_bytes` bytes.
fn make_double(walk: &FieldWalk, hard_bytes: usize, rng: &mut StdRng) -> u64 {
    let noise_bits = 8 * hard_bytes as u32;
    let noise = if noise_bits == 0 {
        0
    } else {
        rng.gen::<u64>() & ((1u64 << noise_bits) - 1)
    };
    make_double_with_noise(walk, hard_bytes, noise)
}

/// [`make_double`] with caller-supplied noise bits (pool generators use
/// a Weyl sequence here to keep small pools byte-balanced).
fn make_double_with_noise(walk: &FieldWalk, hard_bytes: usize, noise: u64) -> u64 {
    debug_assert!(hard_bytes <= 6);
    let noise_bits = 8 * hard_bytes as u32;
    // Predictable mantissa bits above the noise: derived from the
    // smooth walk but confined to 64 distinct values per byte, so every
    // covered byte-column is strongly skewed (max bin ≥ N/64, well
    // above the analyzer's τ·N/256 tolerance).
    let pred_bits = 52 - noise_bits;
    let w = walk.mantissa;
    let pred16 = (((w >> 6) & 0x3F) << 8) | (w & 0x3F);
    let pred = if pred_bits == 0 {
        0
    } else {
        (pred16 & ((1u64 << pred_bits.min(16)) - 1)) << noise_bits
    };
    let mantissa = pred | noise;
    let exponent = walk.exponent as u64;
    (exponent << 52) | (mantissa & ((1u64 << 52) - 1))
}

/// Slowly varying field state shared by consecutive elements: models
/// the spatial locality of simulation output.
struct FieldWalk {
    exponent: u16,
    mantissa: u64,
    exp_lo: u16,
    exp_hi: u16,
}

impl FieldWalk {
    fn new(exp_lo: u16, exp_hi: u16) -> Self {
        FieldWalk {
            exponent: (exp_lo + exp_hi) / 2,
            mantissa: 0,
            exp_lo,
            exp_hi,
        }
    }

    fn step(&mut self, rng: &mut StdRng) {
        // Exponent drifts rarely; top mantissa bits drift smoothly.
        if rng.gen::<f64>() < 0.02 {
            let up = rng.gen::<bool>();
            self.exponent = if up {
                (self.exponent + 1).min(self.exp_hi)
            } else {
                self.exponent.saturating_sub(1).max(self.exp_lo)
            };
        }
        self.mantissa = self
            .mantissa
            .wrapping_add(rng.gen_range(0..7))
            .wrapping_sub(3)
            & 0xFFFF;
    }
}

/// Above this uniqueness, value repeats are so sparse that at paper
/// scale no solver window could exploit them; small-scale instances
/// generate fresh values instead, because reproducing "99% unique" at
/// 60 k elements would place the few duplicates close enough for a
/// 32 KiB window — redundancy the real datasets do not offer.
const POOL_UNIQUENESS_THRESHOLD: f64 = 0.85;

fn double_field(n: usize, hard_bytes: usize, unique_fraction: f64, rng: &mut StdRng) -> Vec<u8> {
    let mut walk = FieldWalk::new(1020, 1026);
    if unique_fraction >= POOL_UNIQUENESS_THRESHOLD {
        let mut out = Vec::with_capacity(n * 8);
        for _ in 0..n {
            walk.step(rng);
            out.extend_from_slice(&make_double(&walk, hard_bytes, rng).to_le_bytes());
        }
        out
    } else {
        // Draw from a pool with temporal locality (runs of repeats).
        // Pool noise bytes come from a Weyl sequence so the noise
        // columns stay byte-balanced despite the small pool.
        let pool_size = ((n as f64 * unique_fraction) as usize).max(1);
        let pool: Vec<u64> = (0..pool_size as u64)
            .map(|i| {
                walk.step(rng);
                make_double_with_noise(&walk, hard_bytes, weyl(i, 8 * hard_bytes as u32))
            })
            .collect();
        // Distant repeats, never adjacent runs: scientific fields with
        // low uniqueness (xgc_iphase, obs_info) repeat values across
        // far-apart records, not consecutively.
        pooled_sequence(&pool, n, 1, rng)
    }
}

/// Emit `n` values drawn from `pool` with temporal run structure but
/// *exact* per-value multiplicity: every pool value occurs the same
/// number of times (±1), split into runs of up to `run_len`. This keeps
/// the byte-column histograms tight — plain Markov resampling has
/// enough multiplicity variance to flip the analyzer's τ-test on
/// noise columns at test sizes.
///
/// Runs are scheduled in shuffled *passes* over the pool, so two
/// occurrences of the same value are separated by roughly the whole
/// pool span. This mirrors the paper-scale datasets, where repeated
/// values are tens of megabytes apart and therefore invisible to any
/// solver window; a global shuffle would instead scatter repeats at
/// geometric gaps, many of them inside a 32 KiB LZ77 window.
fn pooled_sequence(pool: &[u64], n: usize, run_len: usize, rng: &mut StdRng) -> Vec<u8> {
    debug_assert!(!pool.is_empty() && run_len >= 1);
    let per_value = n.div_ceil(pool.len());
    let passes = per_value.div_ceil(run_len);
    let mut order: Vec<u32> = (0..pool.len() as u32).collect();
    let mut out = Vec::with_capacity(n * 8);
    let mut emitted_per_value = 0usize;
    'emit: for _ in 0..passes {
        order.shuffle(rng);
        let this_pass = run_len.min(per_value - emitted_per_value);
        for &idx in &order {
            for _ in 0..this_pass {
                if out.len() == n * 8 {
                    break 'emit;
                }
                out.extend_from_slice(&pool[idx as usize].to_le_bytes());
            }
        }
        emitted_per_value += this_pass;
    }
    out
}

fn float_field(n: usize, hard_bytes: usize, rng: &mut StdRng) -> Vec<u8> {
    debug_assert!(hard_bytes <= 2);
    let mut walk = FieldWalk::new(124, 132); // f32 bias 127 ± a few
    let noise_bits = 8 * hard_bytes as u32;
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        walk.step(rng);
        let noise = if noise_bits == 0 {
            0
        } else {
            rng.gen::<u32>() & ((1u32 << noise_bits) - 1)
        };
        let pred_bits = 23 - noise_bits;
        let w = walk.mantissa as u32;
        let pred16 = (((w >> 6) & 0x3F) << 8) | (w & 0x3F);
        let pred = if pred_bits == 0 {
            0
        } else {
            (pred16 & ((1u32 << pred_bits.min(16)) - 1)) << noise_bits
        };
        let bits = ((walk.exponent as u32) << 23) | ((pred | noise) & ((1u32 << 23) - 1));
        out.extend_from_slice(&bits.to_le_bytes());
    }
    out
}

/// Low-discrepancy (Weyl) sequence: `i·K mod 2^bits` with K odd is a
/// bijection whose byte marginals are near-perfectly balanced. Pool
/// values built from it keep noise byte-columns uniform even when the
/// pool is small — plain `rng.gen()` pools have enough per-byte
/// coverage variance to flip the analyzer's verdict at test sizes.
#[inline]
fn weyl(i: u64, bits: u32) -> u64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask
}

fn int_ids(n: usize, hard_bytes: usize, unique_fraction: f64, rng: &mut StdRng) -> Vec<u8> {
    debug_assert!(hard_bytes <= 7);
    let span_bits = 8 * hard_bytes as u32;
    let base: u64 = 0x0000_7A31_0000_0000 & !((1u64 << span_bits) - 1);
    let pool_size = ((n as f64 * unique_fraction) as usize)
        .max(1)
        .min(1usize << span_bits.min(63));
    // Each ID appears (nearly) the same number of times — particle IDs
    // recur once per recorded time slice — and the dump order is a
    // shuffle of the population.
    let mut ids: Vec<u64> = (0..n as u64)
        .map(|j| base | weyl(j % pool_size as u64, span_bits))
        .collect();
    ids.shuffle(rng);
    ids.iter().flat_map(|id| id.to_le_bytes()).collect()
}

fn repetitive(n: usize, unique_fraction: f64, repeat_prob: f64, rng: &mut StdRng) -> Vec<u8> {
    let pool_size = ((n as f64 * unique_fraction) as usize).max(2);
    let mut walk = FieldWalk::new(1021, 1024);
    let pool: Vec<u64> = (0..pool_size)
        .map(|_| {
            walk.step(rng);
            // No uniform noise bytes: the pool values themselves are
            // drawn from small per-byte alphabets, so every column is
            // strongly skewed (0% hard-to-compress, like msg_sppm).
            make_double(&walk, 0, rng)
        })
        .collect();
    // Mean run length 1/(1−p), as a Markov chain with repeat
    // probability p would produce.
    let run_len = (1.0 / (1.0 - repeat_prob.clamp(0.0, 0.95))).round() as usize;
    pooled_sequence(&pool, n, run_len.max(1), rng)
}

fn skewed_noise(n: usize, spike_prob: f64, unique_fraction: f64, rng: &mut StdRng) -> Vec<u8> {
    let mut walk = FieldWalk::new(1019, 1027);
    let emit = |rng: &mut StdRng, walk: &mut FieldWalk| -> u64 {
        walk.step(rng);
        // Every mantissa byte individually spiked: uniform unless the
        // spike fires, in which case a preferred per-column value.
        let mut mantissa = 0u64;
        for byte_idx in 0..6u32 {
            let byte = if rng.gen::<f64>() < spike_prob {
                0x80 | byte_idx as u64 // per-column preferred value
            } else {
                rng.gen::<u64>() & 0xFF
            };
            mantissa |= byte << (8 * byte_idx);
        }
        ((walk.exponent as u64) << 52) | (mantissa & ((1u64 << 52) - 1))
    };
    if unique_fraction >= POOL_UNIQUENESS_THRESHOLD {
        let mut out = Vec::with_capacity(n * 8);
        for _ in 0..n {
            let v = emit(rng, &mut walk);
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    } else {
        let pool_size = ((n as f64 * unique_fraction) as usize).max(1);
        let pool: Vec<u64> = (0..pool_size).map(|_| emit(rng, &mut walk)).collect();
        pooled_sequence(&pool, n, 1, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-column max-bin frequency relative to the τ·N/256 tolerance
    /// with τ = 1.42 (the analyzer's test, §II.A).
    fn column_is_noise(data: &[u8], width: usize, col: usize) -> bool {
        let n = data.len() / width;
        let mut hist = [0u32; 256];
        for e in data.chunks_exact(width) {
            hist[e[col] as usize] += 1;
        }
        let tolerance = 1.42 * n as f64 / 256.0;
        hist.iter().all(|&c| (c as f64) <= tolerance)
    }

    fn noise_columns(data: &[u8], width: usize) -> Vec<bool> {
        (0..width)
            .map(|c| column_is_noise(data, width, c))
            .collect()
    }

    const N: usize = 100_000;

    #[test]
    fn double_field_hard_byte_count_is_exact() {
        for hard in [0usize, 3, 5, 6] {
            let data = generate(
                GenKind::DoubleField {
                    hard_bytes: hard,
                    unique_fraction: 1.0,
                },
                N,
                7,
            );
            let noise = noise_columns(&data, 8);
            let count = noise.iter().filter(|&&x| x).count();
            assert_eq!(count, hard, "hard={hard}: noise map {noise:?}");
            // The noise columns must be exactly the low `hard` bytes.
            for (c, &is_noise) in noise.iter().enumerate() {
                assert_eq!(is_noise, c < hard, "column {c}");
            }
        }
    }

    #[test]
    fn float_field_hard_byte_count_is_exact() {
        for hard in [1usize, 2] {
            let data = generate(GenKind::FloatField { hard_bytes: hard }, N, 11);
            let noise = noise_columns(&data, 4);
            assert_eq!(noise.iter().filter(|&&x| x).count(), hard, "map {noise:?}");
        }
    }

    #[test]
    fn int_ids_have_low_noise_bytes_and_constant_top() {
        let data = generate(
            GenKind::IntIds {
                hard_bytes: 3,
                unique_fraction: 0.226,
            },
            N,
            3,
        );
        let noise = noise_columns(&data, 8);
        assert_eq!(
            noise,
            vec![true, true, true, false, false, false, false, false]
        );
    }

    #[test]
    fn repetitive_data_has_no_noise_columns() {
        let data = generate(
            GenKind::Repetitive {
                unique_fraction: 0.01,
                repeat_prob: 0.7,
            },
            N,
            5,
        );
        assert!(noise_columns(&data, 8).iter().all(|&x| !x));
    }

    #[test]
    fn skewed_noise_has_no_noise_columns_but_high_diversity() {
        let data = generate(
            GenKind::SkewedNoise {
                spike_prob: 0.02,
                unique_fraction: 1.0,
            },
            N,
            9,
        );
        assert!(
            noise_columns(&data, 8).iter().all(|&x| !x),
            "map {:?}",
            noise_columns(&data, 8)
        );
        // Still nearly all-unique values (high entropy).
        let distinct: std::collections::HashSet<&[u8]> = data.chunks_exact(8).collect();
        assert!(distinct.len() as f64 > 0.95 * N as f64);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let kind = GenKind::DoubleField {
            hard_bytes: 6,
            unique_fraction: 1.0,
        };
        assert_eq!(generate(kind, 1000, 42), generate(kind, 1000, 42));
        assert_ne!(generate(kind, 1000, 42), generate(kind, 1000, 43));
    }

    #[test]
    fn unique_fraction_is_respected() {
        let data = generate(
            GenKind::DoubleField {
                hard_bytes: 6,
                unique_fraction: 0.1,
            },
            N,
            21,
        );
        let distinct: std::collections::HashSet<&[u8]> = data.chunks_exact(8).collect();
        let frac = distinct.len() as f64 / N as f64;
        assert!((0.02..=0.12).contains(&frac), "unique fraction {frac}");
    }

    #[test]
    fn doubles_are_finite_normal_numbers() {
        let data = generate(
            GenKind::DoubleField {
                hard_bytes: 6,
                unique_fraction: 1.0,
            },
            1000,
            1,
        );
        for chunk in data.chunks_exact(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!(v.is_finite() && v != 0.0);
        }
    }

    #[test]
    fn empty_generation() {
        for kind in [
            GenKind::DoubleField {
                hard_bytes: 6,
                unique_fraction: 1.0,
            },
            GenKind::FloatField { hard_bytes: 1 },
        ] {
            assert!(generate(kind, 0, 0).is_empty());
        }
    }
}
