//! Analyzer histogram kernel: one 256-bin count per byte-column.
//!
//! The analyzer's frequency test only needs exact per-column byte
//! counts, so any accumulation order is legal. The scalar oracle uses
//! the dual-bank trick (even/odd elements in separate banks, halving
//! the store-to-load dependency on hot counters). The SIMD tiers go
//! further: each block of elements is transposed with the
//! [`crate::transpose`] unpack-tree kernel so every column becomes
//! contiguous, then scanned into **four** interleaved banks — turning
//! the strided, dependency-bound loop into sequential loads with four
//! independent counter chains. Counts are u32 sums either way, so the
//! result is bit-identical across tiers.

use crate::{transpose, KernelTier};

/// Fill one exact 256-bin histogram per byte-column of `data`
/// (`data.len() / width` elements of `width` bytes). `out` is cleared
/// and resized to `width` histograms.
///
/// # Panics
///
/// Panics if `width == 0` or `data.len()` is not a multiple of `width`.
pub fn byte_column_histograms(
    tier: KernelTier,
    data: &[u8],
    width: usize,
    out: &mut Vec<[u32; 256]>,
) {
    assert!(width > 0 && data.len().is_multiple_of(width));
    out.clear();
    out.resize(width, [0u32; 256]);
    if data.is_empty() {
        return;
    }
    let simd = cfg!(target_arch = "x86_64")
        && matches!(tier, KernelTier::Sse2 | KernelTier::Avx2)
        && (2..=8).contains(&width);
    if simd {
        transposed_hist(tier, data, width, out);
    } else {
        scalar_hist(data, width, out);
    }
}

/// Dual-bank scalar accumulation (the oracle).
fn scalar_hist(data: &[u8], width: usize, out: &mut [[u32; 256]]) {
    let mut odd = vec![[0u32; 256]; width];
    let mut pairs = data.chunks_exact(width * 2);
    for pair in pairs.by_ref() {
        for c in 0..width {
            out[c][pair[c] as usize] += 1;
            odd[c][pair[width + c] as usize] += 1;
        }
    }
    for (hist, &b) in out.iter_mut().zip(pairs.remainder()) {
        hist[b as usize] += 1;
    }
    for (hist, bank) in out.iter_mut().zip(&odd) {
        for (h, &b) in hist.iter_mut().zip(bank.iter()) {
            *h += b;
        }
    }
}

/// Elements per transpose block: width ≤ 8 keeps the column scratch at
/// or under 32 KiB, L1-resident alongside one column's four banks.
const BLOCK_ROWS: usize = 4096;

/// Transpose-then-scan accumulation for the SIMD tiers.
/// Independent counter banks per column. A compressible column is
/// nearly constant, so consecutive increments hit the *same* bin; with
/// B banks the same-address store→load dependency recurs only every B
/// increments, and eight banks is enough to hide the ~5-cycle
/// forwarding latency entirely (measured ~2x over four banks on the
/// paper's skewed checkpoint columns).
const BANKS: usize = 8;

/// Transpose-then-scan accumulation for the SIMD tiers.
fn transposed_hist(tier: KernelTier, data: &[u8], width: usize, out: &mut [[u32; 256]]) {
    let n = data.len() / width;
    let mut scratch = vec![0u8; BLOCK_ROWS.min(n) * width];
    let mut banks = vec![[0u32; 256]; width * BANKS];
    let mut start = 0usize;
    while start < n {
        let m = (n - start).min(BLOCK_ROWS);
        let scr = &mut scratch[..m * width];
        transpose::shuffle_into(tier, &data[start * width..(start + m) * width], width, scr);
        for (c, bank) in banks.chunks_exact_mut(BANKS).enumerate() {
            accumulate8(&scr[c * m..(c + 1) * m], bank);
        }
        start += m;
    }
    for (hist, bank) in out.iter_mut().zip(banks.chunks_exact(BANKS)) {
        for bin in 0..256 {
            hist[bin] = bank.iter().map(|b| b[bin]).sum();
        }
    }
}

/// Scan one contiguous column into eight interleaved banks.
///
/// A compressible column is dominated by long runs of one value (the
/// high bytes of a smooth field barely move), so each 32-byte block is
/// first tested for being a single-value run — four u64 compares — and
/// counted with one `+= 32` when it is. Only blocks that fail the test
/// pay the per-byte increments; a uniformly random (incompressible)
/// column costs four extra compares per 32 bytes, in the noise.
fn accumulate8(col: &[u8], banks: &mut [[u32; 256]]) {
    let [b0, b1, b2, b3, b4, b5, b6, b7] = banks else {
        unreachable!("exactly BANKS banks per column");
    };
    let word =
        |blk: &[u8], o: usize| u64::from_ne_bytes(blk[o..o + 8].try_into().expect("8 bytes"));
    let mut blocks = col.chunks_exact(32);
    for blk in blocks.by_ref() {
        // Short-circuit so a noise column pays one load + compare per
        // block, not four: the first mismatching word bails out.
        let bcast = u64::from_ne_bytes([blk[0]; 8]);
        if word(blk, 0) == bcast
            && word(blk, 8) == bcast
            && word(blk, 16) == bcast
            && word(blk, 24) == bcast
        {
            b0[blk[0] as usize] += 32;
            continue;
        }
        for o in blk.chunks_exact(8) {
            b0[o[0] as usize] += 1;
            b1[o[1] as usize] += 1;
            b2[o[2] as usize] += 1;
            b3[o[3] as usize] += 1;
            b4[o[4] as usize] += 1;
            b5[o[5] as usize] += 1;
            b6[o[6] as usize] += 1;
            b7[o[7] as usize] += 1;
        }
    }
    for &b in blocks.remainder() {
        b0[b as usize] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable_tiers;

    fn naive(data: &[u8], width: usize) -> Vec<[u32; 256]> {
        let mut out = vec![[0u32; 256]; width];
        for row in data.chunks_exact(width) {
            for (c, &b) in row.iter().enumerate() {
                out[c][b as usize] += 1;
            }
        }
        out
    }

    fn pattern(len: usize) -> Vec<u8> {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if i % 3 == 0 {
                    7
                } else {
                    (state >> 53) as u8
                }
            })
            .collect()
    }

    #[test]
    fn counts_match_naive_across_tiers() {
        for tier in testable_tiers() {
            for width in [1usize, 2, 3, 5, 8, 12] {
                for n in [0usize, 1, 3, 16, 17, 4095, 4096, 4097, 9000] {
                    let data = pattern(n * width);
                    let mut got = Vec::new();
                    byte_column_histograms(tier, &data, width, &mut got);
                    assert_eq!(got, naive(&data, width), "{tier} w{width} n{n}");
                }
            }
        }
    }

    #[test]
    fn output_vector_is_reset_between_calls() {
        let mut out = vec![[7u32; 256]; 3];
        byte_column_histograms(KernelTier::Scalar, &[1, 2, 1, 2], 2, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][1], 2);
        assert_eq!(out[1][2], 2);
        assert_eq!(out[0][7], 0);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        byte_column_histograms(KernelTier::Scalar, &[], 0, &mut Vec::new());
    }
}
