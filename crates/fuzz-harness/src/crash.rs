//! Crash-injection harness for the store's commit protocol.
//!
//! The store writer claims ("old or new, never torn"): a reader
//! opening the store path after a crash at *any* point during a
//! rewrite sees either the previously committed store or the fully
//! committed new one — never a hybrid, never a partial. That claim
//! cannot be proven on a real filesystem, which crashes on nobody's
//! schedule; this module proves it on a simulated one.
//!
//! # Fault model
//!
//! [`FaultFs`] implements the writer's [`StoreFs`] interface over an
//! in-memory disk that distinguishes, per file, *written* bytes from
//! *durable* (fsynced) bytes, and per directory, *live* name bindings
//! from *committed* (dir-fsynced) ones — because on a real kernel,
//! data you did not fsync and renames you did not fsync may or may not
//! survive a crash, independently.
//!
//! # Sweep strategy
//!
//! The writer's operation stream is deterministic, so the sweep
//! records it once from a real [`StoreWriter`] run and then *replays*
//! it against a snapshot of the committed disk, once per operation
//! boundary, killing the replay exactly there. A killed `write` may
//! leave a torn prefix of seeded length — the bytes the kernel
//! happened to flush. At sampled kill points the sweep additionally
//! runs the real writer with an armed budget and asserts its
//! post-crash disk equals the replayed one, so the cheap replays are
//! anchored to real writer behavior.
//!
//! After each kill, the harness materializes **every** combination of
//! {unsynced data survived, lost} × {unsynced renames survived, lost}
//! to a real temporary file and opens it with the verifying
//! [`StoreReader`]. Each view must byte-match the old store or the new
//! store, and decode accordingly.

use crate::rng::Rng;
use isobar::IsobarOptions;
use isobar_store::{StoreFile, StoreFs, StoreReader, StoreWriter};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One recorded filesystem operation, with enough payload to replay
/// it bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// File creation (a directory mutation).
    Create(PathBuf),
    /// A `write_all` on the file created `id`-th.
    Write {
        /// Arena index of the target file.
        id: usize,
        /// The exact bytes written.
        data: Vec<u8>,
    },
    /// An fdatasync on the file created `id`-th.
    SyncData {
        /// Arena index of the target file.
        id: usize,
    },
    /// An atomic rename (a directory mutation).
    Rename(PathBuf, PathBuf),
    /// A file removal (a directory mutation).
    Remove(PathBuf),
    /// A directory fsync, committing pending directory mutations.
    SyncDir,
    /// A whole-file read (no state change, but a kill boundary: the
    /// sharded writer reads the prior manifest before writing).
    ReadFile(PathBuf),
    /// Directory creation (modeled as a no-op in the flat namespace,
    /// but recorded as a kill boundary).
    CreateDirAll(PathBuf),
    /// A directory listing (no state change, but a kill boundary: the
    /// serve daemon's WAL replay enumerates journal files on startup).
    ListDir(PathBuf),
}

#[derive(Debug, Clone, Default)]
struct FileData {
    /// Everything written so far (durable prefix + unsynced tail).
    content: Vec<u8>,
    /// Length of the durable (fsynced) prefix.
    synced: usize,
}

/// One simulated disk: a single-directory namespace with per-file
/// durability and crash-at-operation-N fault injection.
#[derive(Debug, Clone, Default)]
struct DiskState {
    /// Every file object ever created; bindings refer in here, so a
    /// rename moves a binding without touching content, and an
    /// uncommitted unlink cannot destroy bytes an older binding may
    /// still resurrect after a crash.
    arena: Vec<FileData>,
    /// Current name bindings, as running code observes them.
    live: BTreeMap<PathBuf, usize>,
    /// Bindings as of the last directory fsync — what a crash
    /// guarantees.
    committed: BTreeMap<PathBuf, usize>,
    /// After a crash every operation fails and mutates nothing.
    dead: bool,
    /// Operations remaining before the injected crash (`None`: never).
    remaining: Option<u64>,
    /// Seeds the torn-prefix length when the dying op is a write.
    torn_seed: u64,
    /// Operations observed, for dry-run enumeration and replay.
    record: Vec<Op>,
}

impl DiskState {
    /// Gate an operation: count down the kill budget and report
    /// whether the op may proceed. `Err` means the crash happened (or
    /// already had); the op must have no effect beyond what the caller
    /// was explicitly told to tear.
    fn enter(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("disk is dead after injected crash"));
        }
        if let Some(rem) = self.remaining.as_mut() {
            if *rem == 0 {
                self.dead = true;
                return Err(io::Error::other("injected crash"));
            }
            *rem -= 1;
        }
        Ok(())
    }

    /// Apply one recorded operation, unconditionally (replay path).
    fn apply(&mut self, op: &Op) {
        match op {
            Op::Create(path) => {
                let id = self.arena.len();
                self.arena.push(FileData::default());
                self.live.insert(path.clone(), id);
            }
            Op::Write { id, data } => self.arena[*id].content.extend_from_slice(data),
            Op::SyncData { id } => {
                let file = &mut self.arena[*id];
                file.synced = file.content.len();
            }
            Op::Rename(from, to) => {
                let id = self.live.remove(from).expect("replayed rename source");
                self.live.insert(to.clone(), id);
            }
            Op::Remove(path) => {
                self.live.remove(path);
            }
            Op::SyncDir => self.committed = self.live.clone(),
            Op::ReadFile(_) | Op::CreateDirAll(_) | Op::ListDir(_) => {}
        }
    }

    /// Apply the crash-time partial effect of the dying operation: a
    /// write may leave a torn, never-synced prefix; everything else
    /// dies without a trace.
    fn apply_torn(&mut self, op: &Op, torn_seed: u64) {
        if let Op::Write { id, data } = op {
            if !data.is_empty() {
                let torn = (torn_seed % (data.len() as u64 + 1)) as usize;
                self.arena[*id].content.extend_from_slice(&data[..torn]);
            }
        }
        self.dead = true;
    }
}

/// The fault-injecting filesystem handed to [`StoreWriter`].
#[derive(Debug, Clone)]
pub struct FaultFs {
    state: Arc<Mutex<DiskState>>,
}

/// Lock the shared disk, recovering from poison. This filesystem is
/// deliberately handed to writers whose worker threads die mid-flight
/// (that is the whole point of fault injection), and a thread that
/// panics while touching the disk poisons this mutex for every later
/// operation. Each operation mutates the [`DiskState`] under a single
/// lock hold, so the state a poisoned guard exposes is the state some
/// completed operation left — safe to keep simulating against.
/// Propagating the poison instead would cascade one injected worker
/// panic into an unwrap panic in the harness's own accounting.
fn locked(state: &Mutex<DiskState>) -> std::sync::MutexGuard<'_, DiskState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// An open file on a [`FaultFs`].
#[derive(Debug)]
pub struct FaultFile {
    state: Arc<Mutex<DiskState>>,
    id: usize,
}

impl FaultFs {
    /// A fresh, empty disk with no fault armed.
    pub fn new() -> Self {
        FaultFs {
            state: Arc::new(Mutex::new(DiskState::default())),
        }
    }

    /// An independent copy of this disk's current state, with the
    /// operation record cleared and no fault armed.
    pub fn fork(&self) -> Self {
        let mut st = locked(&self.state).clone();
        st.record.clear();
        st.remaining = None;
        st.dead = false;
        FaultFs {
            state: Arc::new(Mutex::new(st)),
        }
    }

    /// Arm the disk to crash on the `kill_at`-th operation (0-based).
    /// If that operation is a write, a torn prefix of seeded length
    /// may land before the crash.
    pub fn arm(&self, kill_at: u64, torn_seed: u64) {
        let mut st = locked(&self.state);
        st.remaining = Some(kill_at);
        st.torn_seed = torn_seed;
    }

    /// Operations recorded so far, in order, with payloads.
    pub fn recorded_ops(&self) -> Vec<Op> {
        locked(&self.state).record.clone()
    }

    /// Whether the armed crash has fired.
    pub fn crashed(&self) -> bool {
        locked(&self.state).dead
    }

    /// The durable bytes currently committed under `path`, if any —
    /// the fully-synced view, ignoring anything volatile.
    pub fn committed_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        let st = locked(&self.state);
        let id = *st.committed.get(path)?;
        let file = &st.arena[id];
        Some(file.content[..file.synced].to_vec())
    }

    /// Every post-crash state the simulated disk admits for `path`:
    /// the cross product of {unsynced file data lost, survived} and
    /// {unsynced directory mutations lost, survived}. Deduplicated.
    pub fn crash_views(&self, path: &Path) -> Vec<Option<Vec<u8>>> {
        let st = locked(&self.state);
        let mut views = Vec::new();
        for bindings in [&st.committed, &st.live] {
            for full_content in [false, true] {
                let view = bindings.get(path).map(|&id| {
                    let file = &st.arena[id];
                    let len = if full_content {
                        file.content.len()
                    } else {
                        file.synced
                    };
                    file.content[..len].to_vec()
                });
                if !views.contains(&view) {
                    views.push(view);
                }
            }
        }
        views
    }

    /// Every post-crash state of the *whole namespace*: the cross
    /// product of {unsynced file data lost, survived} × {unsynced
    /// directory mutations lost, survived}, as full file maps.
    /// Deduplicated. This is the directory-store analogue of
    /// [`FaultFs::crash_views`].
    pub fn crash_dir_views(&self) -> Vec<BTreeMap<PathBuf, Vec<u8>>> {
        let st = locked(&self.state);
        let mut views = Vec::new();
        for bindings in [&st.committed, &st.live] {
            for full_content in [false, true] {
                let view: BTreeMap<PathBuf, Vec<u8>> = bindings
                    .iter()
                    .map(|(path, &id)| {
                        let file = &st.arena[id];
                        let len = if full_content {
                            file.content.len()
                        } else {
                            file.synced
                        };
                        (path.clone(), file.content[..len].to_vec())
                    })
                    .collect();
                if !views.contains(&view) {
                    views.push(view);
                }
            }
        }
        views
    }

    /// Fork `base` and replay `ops[..kill_at]` against it, then apply
    /// the torn partial effect of `ops[kill_at]` — the disk exactly as
    /// an armed real run killed at that boundary leaves it.
    pub fn replay_killed(base: &FaultFs, ops: &[Op], kill_at: usize, torn_seed: u64) -> FaultFs {
        let fs = base.fork();
        {
            let mut st = locked(&fs.state);
            for op in &ops[..kill_at] {
                st.apply(op);
            }
            st.apply_torn(&ops[kill_at], torn_seed);
        }
        fs
    }
}

impl Default for FaultFs {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = locked(&self.state);
        match st.enter() {
            Ok(()) => {
                let op = Op::Write {
                    id: self.id,
                    data: buf.to_vec(),
                };
                st.apply(&op);
                st.record.push(op);
                Ok(())
            }
            Err(e) => {
                // The kernel may have flushed part of this write
                // before the crash: leave a torn, never-synced prefix.
                if st.dead && !buf.is_empty() {
                    let torn = (st.torn_seed % (buf.len() as u64 + 1)) as usize;
                    let id = self.id;
                    st.arena[id].content.extend_from_slice(&buf[..torn]);
                }
                Err(e)
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = locked(&self.state);
        st.enter()?;
        let op = Op::SyncData { id: self.id };
        st.apply(&op);
        st.record.push(op);
        Ok(())
    }
}

impl StoreFs for FaultFs {
    type File = FaultFile;

    fn create(&self, path: &Path) -> io::Result<FaultFile> {
        let mut st = locked(&self.state);
        st.enter()?;
        let id = st.arena.len();
        let op = Op::Create(path.to_path_buf());
        st.apply(&op);
        st.record.push(op);
        Ok(FaultFile {
            state: Arc::clone(&self.state),
            id,
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = locked(&self.state);
        st.enter()?;
        if !st.live.contains_key(from) {
            return Err(io::Error::from(io::ErrorKind::NotFound));
        }
        let op = Op::Rename(from.to_path_buf(), to.to_path_buf());
        st.apply(&op);
        st.record.push(op);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = locked(&self.state);
        st.enter()?;
        if !st.live.contains_key(path) {
            return Err(io::Error::from(io::ErrorKind::NotFound));
        }
        let op = Op::Remove(path.to_path_buf());
        st.apply(&op);
        st.record.push(op);
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut st = locked(&self.state);
        st.enter()?;
        st.apply(&Op::SyncDir);
        st.record.push(Op::SyncDir);
        Ok(())
    }

    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = locked(&self.state);
        st.enter()?;
        let op = Op::ReadFile(path.to_path_buf());
        st.record.push(op);
        let id = *st
            .live
            .get(path)
            .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))?;
        Ok(st.arena[id].content.clone())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = locked(&self.state);
        st.enter()?;
        let op = Op::CreateDirAll(path.to_path_buf());
        st.apply(&op);
        st.record.push(op);
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut st = locked(&self.state);
        st.enter()?;
        let op = Op::ListDir(dir.to_path_buf());
        st.record.push(op);
        Ok(st
            .live
            .keys()
            .filter(|path| path.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

/// Outcome of one full crash sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSweepOutcome {
    /// Operation boundaries the writer was killed at — one injected
    /// crash (plus all its disk views) per point.
    pub kill_points: u64,
    /// Post-crash disk views opened and checked across all kill
    /// points.
    pub views_checked: u64,
    /// Views in which the reader saw the pre-rewrite store.
    pub saw_old: u64,
    /// Views in which the reader saw the fully committed new store.
    pub saw_new: u64,
    /// Kill points where the real armed writer was run and its disk
    /// compared against the replay.
    pub real_runs: u64,
}

/// Number of variables each store revision writes. Sized so a sweep
/// exercises well over 200 kill points (6 filesystem operations per
/// record, plus the head and the commit tail).
pub const CRASH_SWEEP_ENTRIES: u32 = 35;

/// Every this-many kill points, the sweep runs the real armed writer
/// and asserts its post-crash disk equals the replayed one.
pub(crate) const REAL_RUN_STRIDE: usize = 37;

pub(crate) fn payload(rng: &mut Rng, len: usize) -> Vec<u8> {
    // Half structured (compressible), half noise, so containers carry
    // both compressed and incompressible regions through the crash.
    let mut data = vec![0u8; len];
    for (i, byte) in data.iter_mut().enumerate().take(len / 2) {
        *byte = (i / 7) as u8;
    }
    let tail_start = len / 2;
    rng.fill(&mut data[tail_start..]);
    data
}

/// Write one store revision: `CRASH_SWEEP_ENTRIES` variables whose
/// contents are derived from `revision` (so old and new stores differ
/// in every record).
fn write_revision(fs: &FaultFs, path: &Path, revision: u64, seed: u64) -> Result<(), String> {
    let mut rng = Rng::new(seed ^ revision.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut writer = StoreWriter::create_in(fs.clone(), path, IsobarOptions::default())
        .map_err(|e| format!("create: {e}"))?;
    for step in 0..CRASH_SWEEP_ENTRIES {
        let data = payload(&mut rng, 1024);
        writer
            .put(step, "density", &data, 8)
            .map_err(|e| format!("put step {step}: {e}"))?;
    }
    writer.close().map_err(|e| format!("close: {e}"))?;
    Ok(())
}

/// Check one materialized crash view: it must byte-match the old or
/// the new store, and the verifying reader must open and decode it.
fn check_view(
    view: &[u8],
    old_bytes: &[u8],
    new_bytes: &[u8],
    scratch_path: &Path,
    kill_at: usize,
    view_index: usize,
) -> Result<bool, String> {
    let is_old = view == old_bytes;
    let is_new = view == new_bytes;
    if !is_old && !is_new {
        return Err(format!(
            "kill point {kill_at} view {view_index}: store bytes match neither the \
             old nor the new revision (len {}, old {}, new {})",
            view.len(),
            old_bytes.len(),
            new_bytes.len()
        ));
    }
    std::fs::write(scratch_path, view)
        .map_err(|e| format!("kill point {kill_at}: scratch write: {e}"))?;
    let reader = StoreReader::open(scratch_path).map_err(|e| {
        format!("kill point {kill_at} view {view_index}: verifying open failed: {e}")
    })?;
    if reader.entries().len() != CRASH_SWEEP_ENTRIES as usize {
        return Err(format!(
            "kill point {kill_at} view {view_index}: {} entries, expected {}",
            reader.entries().len(),
            CRASH_SWEEP_ENTRIES
        ));
    }
    reader
        .get(0, "density")
        .map_err(|e| format!("kill point {kill_at} view {view_index}: decode failed: {e}"))?;
    Ok(is_new)
}

/// Kill the store writer at every operation boundary of a full
/// rewrite and prove that every admissible post-crash disk state
/// still reads as exactly the old or the new store.
///
/// Deterministic in `seed`. Returns the sweep outcome or the first
/// violation, formatted with enough detail to replay.
pub fn crash_sweep(seed: u64) -> Result<CrashSweepOutcome, String> {
    let path = Path::new("store.isst");

    // Baseline: revision 0 committed cleanly through the real writer.
    let base = FaultFs::new();
    write_revision(&base, path, 0, seed)?;
    let old_bytes = base
        .committed_bytes(path)
        .ok_or("baseline commit left nothing at the store path")?;
    let base = base.fork(); // clear the baseline's op record

    // Record the rewrite's full operation stream once, and snapshot
    // the new store's bytes.
    let recorder = base.fork();
    write_revision(&recorder, path, 1, seed)?;
    let ops = recorder.recorded_ops();
    let new_bytes = recorder
        .committed_bytes(path)
        .ok_or("recording commit left nothing at the store path")?;
    if new_bytes == old_bytes {
        return Err("revisions are identical; the sweep would prove nothing".into());
    }

    let scratch = std::env::temp_dir().join(format!(
        "isobar-crash-sweep-{}-{seed:016x}.isst",
        std::process::id()
    ));
    let mut outcome = CrashSweepOutcome {
        kill_points: 0,
        views_checked: 0,
        saw_old: 0,
        saw_new: 0,
        real_runs: 0,
    };
    let mut torn_rng = Rng::new(seed ^ 0xC4A5_11F1_A57E_D000);

    for kill_at in 0..ops.len() {
        let torn_seed = torn_rng.next_u64();
        let fs = FaultFs::replay_killed(&base, &ops, kill_at, torn_seed);

        // Anchor the replay to reality: at sampled points (and at both
        // ends), run the real writer with an armed budget and demand
        // the identical post-crash disk.
        if kill_at % REAL_RUN_STRIDE == 0 || kill_at == ops.len() - 1 {
            let real = base.fork();
            real.arm(kill_at as u64, torn_seed);
            if write_revision(&real, path, 1, seed).is_ok() {
                return Err(format!(
                    "kill point {kill_at}: writer survived an armed crash ({} ops total)",
                    ops.len()
                ));
            }
            if !real.crashed() {
                return Err(format!(
                    "kill point {kill_at}: writer failed before the armed crash fired"
                ));
            }
            if real.crash_views(path) != fs.crash_views(path) {
                return Err(format!(
                    "kill point {kill_at}: replayed disk diverges from the real armed run"
                ));
            }
            outcome.real_runs += 1;
        }

        outcome.kill_points += 1;
        for (view_index, view) in fs.crash_views(path).into_iter().enumerate() {
            let view = view.ok_or_else(|| {
                format!(
                    "kill point {kill_at} view {view_index}: the store path vanished — \
                     a crashed rewrite destroyed the committed store"
                )
            })?;
            let is_new = check_view(&view, &old_bytes, &new_bytes, &scratch, kill_at, view_index)?;
            outcome.views_checked += 1;
            if is_new {
                outcome.saw_new += 1;
            } else {
                outcome.saw_old += 1;
            }
        }
    }
    let _ = std::fs::remove_file(&scratch);

    // A sweep that never reached the commit point, or whose kills all
    // landed after it, would vacuously pass — demand both outcomes.
    if outcome.saw_old == 0 || outcome.saw_new == 0 {
        return Err(format!(
            "degenerate sweep: {} old views, {} new views — kills missed the commit point",
            outcome.saw_old, outcome.saw_new
        ));
    }
    Ok(outcome)
}

/// Variables per generation in the sharded sweep. Smaller than the
/// single-file sweep's count because a v3 kill point costs a whole
/// directory materialization and a manifest decode per view.
pub const SHARDED_SWEEP_ENTRIES: u32 = 12;

/// Write one sharded-store generation: `SHARDED_SWEEP_ENTRIES`
/// variables whose contents derive from `revision`, so generation 1
/// supersedes every key of generation 0 with different bytes.
fn write_revision_sharded(
    fs: &FaultFs,
    dir: &Path,
    revision: u64,
    seed: u64,
) -> Result<(), String> {
    use isobar_store::{ShardedOptions, ShardedStoreWriter};
    let mut rng = Rng::new(seed ^ revision.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let writer = ShardedStoreWriter::create_in(
        fs.clone(),
        dir,
        IsobarOptions::default(),
        ShardedOptions {
            shards: 2,
            queue_depth: 2,
        },
    )
    .map_err(|e| format!("create: {e}"))?;
    for step in 0..SHARDED_SWEEP_ENTRIES {
        let data = payload(&mut rng, 1024);
        writer
            .put(step, "density", data, 8)
            .map_err(|e| format!("put step {step}: {e}"))?;
    }
    writer.close().map_err(|e| format!("close: {e}"))?;
    Ok(())
}

/// The live logical content of a materialized store directory:
/// `(step, variable) → decompressed bytes`, via the verifying reader.
pub(crate) fn logical_content(dir: &Path) -> Result<BTreeMap<(u32, String), Vec<u8>>, String> {
    let reader = StoreReader::open(dir).map_err(|e| format!("verifying open failed: {e}"))?;
    let mut map = BTreeMap::new();
    for entry in reader.live_entries() {
        let data = reader
            .get(entry.step, &entry.name)
            .map_err(|e| format!("decode ({}, {}) failed: {e}", entry.step, entry.name))?;
        map.insert((entry.step, entry.name.clone()), data);
    }
    Ok(map)
}

/// Write one namespace view into `scratch` as a real directory, for
/// the real [`StoreReader`] to open. All simulated paths live directly
/// under the store directory, so only file names are kept.
pub(crate) fn materialize_dir(view: &BTreeMap<PathBuf, Vec<u8>>, scratch: &Path) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).map_err(|e| format!("scratch mkdir: {e}"))?;
    for (path, content) in view {
        let name = path
            .file_name()
            .ok_or_else(|| format!("unnameable simulated path {}", path.display()))?;
        std::fs::write(scratch.join(name), content).map_err(|e| format!("scratch write: {e}"))?;
    }
    Ok(())
}

/// [`crash_sweep`] for the version-3 sharded store: kill the
/// two-phase manifest commit at every recorded filesystem-operation
/// boundary and prove each admissible post-crash directory still reads
/// as exactly the old generation's content or exactly the new one's.
///
/// Segment writes from different shards interleave nondeterministically
/// across threads, so (unlike the single-file sweep) views are compared
/// by *logical content* — the `(step, variable) → bytes` map the
/// verifying reader serves — rather than byte-for-byte, and the sampled
/// real armed runs are checked the same way instead of being compared
/// against the replayed disk.
pub fn crash_sweep_sharded(seed: u64) -> Result<CrashSweepOutcome, String> {
    let dir = Path::new("store.v3");
    let scratch = std::env::temp_dir().join(format!(
        "isobar-crash-sweep-v3-{}-{seed:016x}",
        std::process::id()
    ));

    // Baseline: generation 0 committed cleanly through the real writer.
    let base = FaultFs::new();
    write_revision_sharded(&base, dir, 0, seed)?;
    let committed = base
        .crash_dir_views()
        .into_iter()
        .next()
        .ok_or("baseline commit left no committed view")?;
    materialize_dir(&committed, &scratch)?;
    let old_content =
        logical_content(&scratch).map_err(|e| format!("baseline generation unreadable: {e}"))?;
    let base = base.fork(); // clear the baseline's op record

    // Record generation 1's full operation stream once.
    let recorder = base.fork();
    write_revision_sharded(&recorder, dir, 1, seed)?;
    let ops = recorder.recorded_ops();
    let committed = recorder
        .crash_dir_views()
        .into_iter()
        .next()
        .ok_or("recording commit left no committed view")?;
    materialize_dir(&committed, &scratch)?;
    let new_content =
        logical_content(&scratch).map_err(|e| format!("recorded generation unreadable: {e}"))?;
    if new_content == old_content {
        return Err("generations are identical; the sweep would prove nothing".into());
    }

    let mut outcome = CrashSweepOutcome {
        kill_points: 0,
        views_checked: 0,
        saw_old: 0,
        saw_new: 0,
        real_runs: 0,
    };
    let mut torn_rng = Rng::new(seed ^ 0xC4A5_11F1_A57E_D000);

    // Check every admissible post-crash view of `fs`: each must read
    // as exactly the old or the new generation. Counting into the
    // outcome is optional so sampled real runs don't double-count.
    fn check_views(
        fs: &FaultFs,
        kill_at: usize,
        scratch: &Path,
        old_content: &BTreeMap<(u32, String), Vec<u8>>,
        new_content: &BTreeMap<(u32, String), Vec<u8>>,
        outcome: Option<&mut CrashSweepOutcome>,
    ) -> Result<(), String> {
        let mut old_seen = 0u64;
        let mut new_seen = 0u64;
        for (view_index, view) in fs.crash_dir_views().into_iter().enumerate() {
            materialize_dir(&view, scratch)?;
            let content = logical_content(scratch).map_err(|e| {
                format!(
                    "kill point {kill_at} view {view_index} ({} files): {e}",
                    view.len()
                )
            })?;
            let is_old = &content == old_content;
            let is_new = &content == new_content;
            if !is_old && !is_new {
                return Err(format!(
                    "kill point {kill_at} view {view_index}: store content matches neither \
                     generation ({} live keys, old {}, new {})",
                    content.len(),
                    old_content.len(),
                    new_content.len()
                ));
            }
            if is_new {
                new_seen += 1;
            } else {
                old_seen += 1;
            }
        }
        if let Some(outcome) = outcome {
            outcome.views_checked += old_seen + new_seen;
            outcome.saw_old += old_seen;
            outcome.saw_new += new_seen;
        }
        Ok(())
    }

    for kill_at in 0..ops.len() {
        let torn_seed = torn_rng.next_u64();
        let fs = FaultFs::replay_killed(&base, &ops, kill_at, torn_seed);
        outcome.kill_points += 1;
        check_views(
            &fs,
            kill_at,
            &scratch,
            &old_content,
            &new_content,
            Some(&mut outcome),
        )?;

        // At sampled points (and both ends), run the real writer with
        // an armed budget. Its op interleaving is its own, so only the
        // old-or-new invariant is asserted — not disk equality.
        if kill_at % REAL_RUN_STRIDE == 0 || kill_at == ops.len() - 1 {
            let real = base.fork();
            real.arm(kill_at as u64, torn_seed);
            if write_revision_sharded(&real, dir, 1, seed).is_ok() {
                return Err(format!(
                    "kill point {kill_at}: sharded writer survived an armed crash ({} ops total)",
                    ops.len()
                ));
            }
            if !real.crashed() {
                return Err(format!(
                    "kill point {kill_at}: sharded writer failed before the armed crash fired"
                ));
            }
            check_views(&real, kill_at, &scratch, &old_content, &new_content, None)?;
            outcome.real_runs += 1;
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if outcome.saw_old == 0 || outcome.saw_new == 0 {
        return Err(format!(
            "degenerate sharded sweep: {} old views, {} new views — kills missed the commit point",
            outcome.saw_old, outcome.saw_new
        ));
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_fs_separates_durable_from_volatile() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        let mut f = fs.create(p).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"def").unwrap();
        // Name never dir-synced: committed view has no file at all.
        let views = fs.crash_views(p);
        assert!(views.contains(&None), "uncommitted creation can vanish");
        assert!(views.contains(&Some(b"abc".to_vec())), "synced data only");
        assert!(views.contains(&Some(b"abcdef".to_vec())), "volatile tail");
        fs.sync_dir(Path::new(".")).unwrap();
        assert_eq!(fs.committed_bytes(p).unwrap(), b"abc");
    }

    #[test]
    fn poisoned_disk_lock_recovers() {
        // A worker thread dying while it holds the disk lock (exactly
        // what fault injection provokes) must not wedge every later
        // FaultFs operation behind a PoisonError.
        let fs = FaultFs::new();
        let clone = fs.clone();
        let poisoner = std::thread::spawn(move || {
            let _guard = clone.state.lock().unwrap();
            panic!("die while holding the disk lock");
        });
        assert!(poisoner.join().is_err(), "poisoner must have panicked");
        assert!(fs.state.lock().is_err(), "lock is actually poisoned");

        // The full public surface still works on the poisoned lock.
        let p = Path::new("f");
        let mut f = fs.create(p).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_data().unwrap();
        fs.sync_dir(Path::new(".")).unwrap();
        assert_eq!(fs.committed_bytes(p).unwrap(), b"abc");
        assert!(!fs.crashed());
        assert_eq!(fs.recorded_ops().len(), 4);
        assert!(!fs.crash_views(p).is_empty());
        assert!(!fs.crash_dir_views().is_empty());
        let fork = fs.fork();
        assert_eq!(fork.recorded_ops().len(), 0);
        assert_eq!(fork.committed_bytes(p).unwrap(), b"abc");
    }

    #[test]
    fn armed_write_tears_at_seeded_length() {
        let fs = FaultFs::new();
        let p = Path::new("f");
        let mut f = fs.create(p).unwrap();
        fs.sync_dir(Path::new(".")).unwrap();
        fs.arm(0, 2); // next op dies; torn prefix = 2 % (len+1)
        assert!(f.write_all(b"abcd").is_err());
        assert!(fs.crashed());
        let views = fs.crash_views(p);
        assert!(views.contains(&Some(b"ab".to_vec())), "torn prefix kept");
        // After death, everything fails and nothing changes.
        assert!(f.write_all(b"x").is_err());
        assert!(fs.remove_file(p).is_err());
    }

    #[test]
    fn rename_is_volatile_until_dir_sync() {
        let fs = FaultFs::new();
        let a = Path::new("a");
        let b = Path::new("b");
        let mut f = fs.create(a).unwrap();
        f.write_all(b"xy").unwrap();
        f.sync_data().unwrap();
        fs.sync_dir(Path::new(".")).unwrap();
        fs.rename(a, b).unwrap();
        // Crash now: b exists only in the live namespace.
        let at_b = fs.crash_views(b);
        assert!(at_b.contains(&None), "unsynced rename can be lost");
        assert!(at_b.contains(&Some(b"xy".to_vec())));
        let at_a = fs.crash_views(a);
        assert!(at_a.contains(&Some(b"xy".to_vec())), "old name can persist");
        fs.sync_dir(Path::new(".")).unwrap();
        assert_eq!(fs.committed_bytes(b).unwrap(), b"xy");
        assert!(fs.committed_bytes(a).is_none());
    }

    #[test]
    fn replay_matches_armed_run() {
        // The sweep's core soundness assumption, in miniature: a
        // replayed kill must leave the identical disk to a real armed
        // writer run killed at the same boundary.
        let path = Path::new("store.isst");
        let base = FaultFs::new();
        write_revision(&base, path, 0, 5).unwrap();
        let base = base.fork();
        let recorder = base.fork();
        write_revision(&recorder, path, 1, 5).unwrap();
        let ops = recorder.recorded_ops();
        for kill_at in [0usize, 3, 17, ops.len() / 2, ops.len() - 1] {
            let replay = FaultFs::replay_killed(&base, &ops, kill_at, 0xABCD);
            let real = base.fork();
            real.arm(kill_at as u64, 0xABCD);
            assert!(write_revision(&real, path, 1, 5).is_err());
            assert_eq!(
                real.crash_views(path),
                replay.crash_views(path),
                "kill point {kill_at}"
            );
        }
    }

    #[test]
    fn single_kill_point_yields_old_store() {
        let path = Path::new("store.isst");
        let fs = FaultFs::new();
        write_revision(&fs, path, 0, 1).unwrap();
        let old = fs.committed_bytes(path).unwrap();
        let armed = fs.fork();
        armed.arm(10, 0);
        assert!(write_revision(&armed, path, 1, 1).is_err());
        for view in armed.crash_views(path) {
            assert_eq!(view.unwrap(), old, "kill point 10 is long before commit");
        }
    }
}
