//! End-to-end pipeline throughput benchmark with a JSON trajectory.
//!
//! Measures ISOBAR compression/decompression throughput on the paper's
//! headline workload — chunks of 375 000 eight-byte elements (≈ 3 MB)
//! of a hard-to-compress double field — and writes the numbers to a
//! JSON file (default `BENCH_pipeline.json`) so future changes have a
//! recorded baseline to regress against.
//!
//! Usage:
//!
//! ```text
//! bench_pipeline [--label NAME] [--out FILE] [--trace FILE]
//!                [--kernels scalar|auto]
//!                [--baseline-label NAME --baseline-mbps X ...]
//! ```
//!
//! `--baseline-mbps` takes `key=value` pairs (repeatable) naming a
//! prior run's results; each is embedded in the output together with
//! the speedup of this run over it. `--trace` writes a Chrome
//! trace-event timeline of one serial round trip (the same run that
//! feeds the stage breakdown), loadable in Perfetto.

use isobar::telemetry::{Stage, ENABLED};
use isobar::{CodecId, IsobarCompressor, IsobarOptions, Linearization, Preference, Recorder};
use isobar_codecs::CompressionLevel;
use isobar_datasets::catalog;
use std::fmt::Write as _;
use std::time::Instant;

/// Version of the JSON layout written by this benchmark. Bumped when
/// fields are added, renamed, or change meaning.
const BENCH_SCHEMA_VERSION: u32 = 2;

/// One paper chunk: 375 000 doubles ≈ 3 MB.
const CHUNK_ELEMENTS: usize = 375_000;
/// Whole workload: 8 chunks ≈ 24 MB.
const CHUNKS: usize = 8;
/// Timed repetitions per configuration (median reported).
const ITERS: usize = 5;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN throughputs"));
    samples[samples.len() / 2]
}

/// Median throughput of `f` over [`ITERS`] runs, in MB/s of `bytes`
/// (same sub-resolution clamp as every other harness number).
fn throughput_mbps(bytes: usize, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let start = Instant::now();
        f();
        samples.push(isobar_bench::mbps(bytes, start.elapsed().as_secs_f64()));
    }
    median(&mut samples)
}

fn options(level: CompressionLevel, parallel: bool) -> IsobarOptions {
    IsobarOptions {
        level,
        chunk_elements: CHUNK_ELEMENTS,
        codec_override: Some(CodecId::Deflate),
        linearization_override: Some(Linearization::Row),
        parallel,
        ..Default::default()
    }
}

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut trace_path: Option<String> = None;
    let mut baseline_label = String::new();
    let mut baseline: Vec<(String, f64)> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label NAME"),
            "--out" => out_path = args.next().expect("--out FILE"),
            "--trace" => trace_path = Some(args.next().expect("--trace FILE")),
            "--kernels" => {
                let raw = args.next().expect("--kernels scalar|auto");
                let selection =
                    isobar::KernelSelection::parse(&raw).expect("--kernels takes scalar or auto");
                isobar::set_kernels(selection);
            }
            "--baseline-label" => baseline_label = args.next().expect("--baseline-label NAME"),
            "--baseline-mbps" => {
                let pair = args.next().expect("--baseline-mbps key=value");
                let (key, value) = pair.split_once('=').expect("key=value");
                baseline.push((key.to_string(), value.parse().expect("numeric value")));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let kernel_tier = isobar::active_kernel_tier();
    let ds = catalog::spec("gts_chkp_zion")
        .expect("catalog entry")
        .generate(CHUNKS * CHUNK_ELEMENTS, 7);
    let bytes = ds.bytes.len();
    let width = ds.width();
    eprintln!(
        "workload: gts_chkp_zion, {} elements x {width} bytes = {:.1} MB, {CHUNKS} chunks, kernels {kernel_tier}",
        CHUNKS * CHUNK_ELEMENTS,
        bytes as f64 / 1e6
    );

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, mbps: f64| {
        eprintln!("{name:<28} {mbps:>9.1} MB/s");
        results.push((name.to_string(), mbps));
    };

    // Headline: serial end-to-end compression (analyze + partition +
    // deflate + merge) at both solver effort levels.
    for (name, level) in [
        ("compress_serial_fast", CompressionLevel::Fast),
        ("compress_serial_default", CompressionLevel::Default),
    ] {
        let isobar = IsobarCompressor::new(options(level, false));
        record(
            name,
            throughput_mbps(bytes, || {
                isobar.compress(&ds.bytes, width).expect("aligned input");
            }),
        );
    }

    // Parallel chunk pipeline.
    let isobar = IsobarCompressor::new(options(CompressionLevel::Fast, true));
    record(
        "compress_parallel_fast",
        throughput_mbps(bytes, || {
            isobar.compress(&ds.bytes, width).expect("aligned input");
        }),
    );

    // EUPA-driven end-to-end path (no overrides).
    let isobar = IsobarCompressor::new(IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: CHUNK_ELEMENTS,
        ..Default::default()
    });
    record(
        "compress_eupa_speed",
        throughput_mbps(bytes, || {
            isobar.compress(&ds.bytes, width).expect("aligned input");
        }),
    );

    // Decompression of the default-level container.
    let isobar = IsobarCompressor::new(options(CompressionLevel::Default, false));
    let packed = isobar.compress(&ds.bytes, width).expect("aligned input");
    let ratio = bytes as f64 / packed.len() as f64;
    record(
        "decompress_serial_default",
        throughput_mbps(bytes, || {
            isobar.decompress(&packed).expect("own container");
        }),
    );

    // Checksum-verification cost: the same container decoded with the
    // `verify` knob cleared. The pair quantifies what the default-on
    // integrity checking costs, and the regression gate holds both
    // paths — a change that slows verification itself shows up here
    // even if plain decode throughput is unchanged.
    let no_verify = IsobarCompressor::new(IsobarOptions {
        verify: false,
        ..options(CompressionLevel::Default, false)
    });
    record(
        "decompress_verify_off",
        throughput_mbps(bytes, || {
            no_verify.decompress(&packed).expect("own container");
        }),
    );

    // Checkpoint-store put: the serial single-file writer (compress,
    // then write, then fdatasync, one entry at a time) against the
    // sharded writer whose per-shard codec/io pipelines overlap
    // compression with `fdatasync`. Same bytes, same codec settings;
    // the gap is the overlap. Each timed run builds a fresh store and
    // includes the full create-to-commit wall time.
    let store_scratch =
        std::env::temp_dir().join(format!("isobar-bench-store-{}", std::process::id()));
    let chunk_bytes = CHUNK_ELEMENTS * width;
    let store_options = options(CompressionLevel::Fast, false);
    record(
        "store_put_serial",
        throughput_mbps(bytes, || {
            let path = store_scratch.with_extension("isst");
            let _ = std::fs::remove_file(&path);
            let mut writer =
                isobar_store::StoreWriter::create(&path, store_options).expect("create store");
            for (step, chunk) in ds.bytes.chunks(chunk_bytes).enumerate() {
                writer
                    .put(step as u32, "field", chunk, width)
                    .expect("store put");
            }
            writer.close().expect("store close");
            let _ = std::fs::remove_file(&path);
        }),
    );
    // One codec thread per core (capped at the default shard count):
    // extra shards on a narrow machine just evict each other's cache
    // working sets. See docs/STORE.md for the tuning rationale.
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4) as u16;
    eprintln!("store shards: {shards}");
    record(
        "store_put_sharded",
        throughput_mbps(bytes, || {
            let _ = std::fs::remove_dir_all(&store_scratch);
            let writer = isobar_store::ShardedStoreWriter::create(
                &store_scratch,
                store_options,
                isobar_store::ShardedOptions {
                    shards,
                    queue_depth: 2,
                },
            )
            .expect("create sharded store");
            for (step, chunk) in ds.bytes.chunks(chunk_bytes).enumerate() {
                writer
                    .put(step as u32, "field", chunk.to_vec(), width)
                    .expect("store put");
            }
            writer.close().expect("store commit");
            let _ = std::fs::remove_dir_all(&store_scratch);
        }),
    );

    // Verified random access against a committed sharded store: every
    // chunk read back (pread, checksum verified, decompressed) once
    // per timed run.
    {
        let _ = std::fs::remove_dir_all(&store_scratch);
        let writer = isobar_store::ShardedStoreWriter::create(
            &store_scratch,
            store_options,
            isobar_store::ShardedOptions {
                shards,
                queue_depth: 2,
            },
        )
        .expect("create sharded store");
        for (step, chunk) in ds.bytes.chunks(chunk_bytes).enumerate() {
            writer
                .put(step as u32, "field", chunk.to_vec(), width)
                .expect("store put");
        }
        writer.close().expect("store commit");
        let reader = isobar_store::StoreReader::open(&store_scratch).expect("open store");
        record(
            "store_get_sharded",
            throughput_mbps(bytes, || {
                for step in 0..CHUNKS {
                    let out = reader.get(step as u32, "field").expect("store get");
                    assert_eq!(out.len(), chunk_bytes);
                }
            }),
        );
    }
    let _ = std::fs::remove_dir_all(&store_scratch);

    // Daemon round-trip throughput: an in-process `isobar serve` on a
    // loopback socket, driven by concurrent mixed put/get clients (the
    // serve-soak harness at bench scale). Unlike the store rows this
    // includes the wire protocol, admission control, and tenancy
    // prefixing, so a slowdown anywhere on the network path lands in
    // the regression gate. Median of the usual ITERS runs; a soak that
    // reports any error is a hard failure, not a slow result.
    {
        let soak_config = isobar_bench::soak::SoakConfig {
            clients: 8,
            iters: 4,
            payload_bytes: chunk_bytes,
            server: isobar_server::ServeOptions {
                shards,
                ..Default::default()
            },
            chaos: None,
        };
        let mut samples = Vec::with_capacity(ITERS);
        for _ in 0..ITERS {
            let _ = std::fs::remove_dir_all(&store_scratch);
            let report =
                isobar_bench::soak::run_soak(&store_scratch, &soak_config).expect("serve soak run");
            assert!(report.errors.is_empty(), "soak errors: {:?}", report.errors);
            assert_eq!(report.server.protocol_errors, 0, "soak protocol errors");
            samples.push(report.mbps);
            let _ = std::fs::remove_dir_all(&store_scratch);
        }
        record("serve_soak_mixed", median(&mut samples));
    }

    // One instrumented round trip (serial default, outside the timed
    // loops) yielding the telemetry per-stage wall-time breakdown and,
    // with `--trace`, the span timeline of the same run.
    let stage_breakdown = if ENABLED || trace_path.is_some() {
        if trace_path.is_some() {
            if !isobar::trace::ENABLED {
                eprintln!("note: this binary was built without tracing; the trace will be empty");
            }
            isobar::trace::reset();
            isobar::trace::set_active(true);
        }
        let mut recorder = Recorder::new();
        let mut scratch = isobar::PipelineScratch::new();
        isobar
            .compress_recorded(&ds.bytes, width, &mut scratch, &mut recorder)
            .expect("aligned input");
        isobar
            .decompress_recorded(&packed, &mut scratch, &mut recorder)
            .expect("own container");
        if let Some(path) = &trace_path {
            isobar::trace::set_active(false);
            let trace = isobar::trace::drain();
            std::fs::write(path, trace.to_chrome_json()).expect("write trace JSON");
            eprintln!("trace: {} events -> {path}", trace.event_count());
        }
        let snap = recorder.snapshot();
        let lines: Vec<String> = Stage::ALL
            .iter()
            .filter(|&&s| snap.stage(s).count > 0)
            .map(|&s| {
                let stats = snap.stage(s);
                format!(
                    "    \"{}\": {{\"count\": {}, \"total_ms\": {:.3}, \"mean_us\": {:.3}}}",
                    s.name(),
                    stats.count,
                    stats.total_nanos as f64 / 1e6,
                    stats.mean_nanos() as f64 / 1e3,
                )
            })
            .collect();
        // A trace-only run (telemetry compiled out) has no breakdown.
        ENABLED.then_some(lines)
    } else {
        None
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"kernel_tier\": \"{kernel_tier}\",");
    let _ = writeln!(json, "  \"dataset\": \"gts_chkp_zion\",");
    let _ = writeln!(json, "  \"chunk_elements\": {CHUNK_ELEMENTS},");
    let _ = writeln!(json, "  \"chunks\": {CHUNKS},");
    let _ = writeln!(json, "  \"element_width\": {width},");
    let _ = writeln!(json, "  \"input_bytes\": {bytes},");
    let _ = writeln!(json, "  \"ratio_default\": {ratio:.4},");
    let _ = writeln!(json, "  \"iters_per_result\": {ITERS},");
    json.push_str("  \"results_mbps\": {\n");
    for (i, (name, mbps)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{name}\": {mbps:.1}{comma}");
    }
    json.push_str("  }");
    if let Some(lines) = &stage_breakdown {
        // Per-stage wall time from one instrumented serial round trip;
        // the throughput numbers above come from uninstrumented runs.
        json.push_str(",\n  \"stage_breakdown\": {\n");
        json.push_str(&lines.join(",\n"));
        json.push_str("\n  }");
    }
    if !baseline.is_empty() {
        json.push_str(",\n  \"baseline\": {\n");
        let _ = writeln!(json, "    \"label\": \"{baseline_label}\",");
        json.push_str("    \"results_mbps\": {\n");
        for (i, (name, mbps)) in baseline.iter().enumerate() {
            let comma = if i + 1 < baseline.len() { "," } else { "" };
            let _ = writeln!(json, "      \"{name}\": {mbps:.1}{comma}");
        }
        json.push_str("    }\n  },\n  \"speedup_vs_baseline\": {\n");
        let speedups: Vec<(usize, String)> = baseline
            .iter()
            .filter_map(|(name, base)| {
                results
                    .iter()
                    .position(|(n, _)| n == name)
                    .map(|i| (i, format!("    \"{name}\": {:.3}", results[i].1 / base)))
            })
            .collect();
        for (i, (_, line)) in speedups.iter().enumerate() {
            let comma = if i + 1 < speedups.len() { "," } else { "" };
            json.push_str(line);
            json.push_str(comma);
            json.push('\n');
        }
        json.push_str("  }");
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write bench JSON");
    eprintln!("wrote {out_path}");
}
