//! Table VII — improvement under the ISOBAR-CR (ratio) preference.
//!
//! Same 16 datasets as Table VI: chosen linearization, ΔCR relative to
//! the alternative with the *best compression ratio*, and the speed-up
//! against that alternative.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

const TABLE7_DATASETS: [&str; 16] = [
    "gts_chkp_zeon",
    "gts_chkp_zion",
    "gts_phi_l",
    "gts_phi_nl",
    "xgc_iphase",
    "flash_gamc",
    "flash_velx",
    "flash_vely",
    "msg_lu",
    "msg_sp",
    "msg_sweep3d",
    "num_brain",
    "num_comet",
    "num_control",
    "obs_info",
    "obs_temp",
];

fn main() {
    banner("Table VII: improvement of ISOBAR-CR preference");
    println!(
        "{:<15} {:>7} {:>8} {:>8} {:>8}",
        "Dataset", "Codec", "LS", "ΔCR(%)", "Sp"
    );
    for name in TABLE7_DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);
        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Ratio);

        // ΔCR and Sp vs the alternative with the best ratio (Table VII
        // footnote 2).
        let best = if zlib.ratio >= bzip2.ratio {
            zlib
        } else {
            bzip2
        };
        println!(
            "{:<15} {:>7} {:>8} {:>8.2} {:>8.3}",
            name,
            isobar.report.codec.name(),
            isobar.report.linearization,
            delta_cr_pct(isobar.ratio, best.ratio),
            speedup(isobar.comp_mbps, best.comp_mbps),
        );
    }
    println!();
    println!("paper: ΔCR in [5.2%, 22.8%]; Sp straddles 1 (ratio mode may be slower");
    println!("than the fastest standard compressor — it optimizes size, not speed).");
}
