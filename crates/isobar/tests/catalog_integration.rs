//! Integration: the full ISOBAR pipeline against all 24 synthetic
//! catalog datasets.
//!
//! These tests check the paper's *classification* results (Table IV)
//! and the headline *improvement* claim (Table V) end to end: the
//! analyzer must reach the paper's verdict on every dataset, every
//! container must round-trip exactly, and on improvable datasets the
//! preconditioner must beat the standalone solver.

use isobar::container::ChunkMode;
use isobar::{Analyzer, CodecId, EupaSelector, IsobarCompressor, IsobarOptions, Preference};
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate, Codec};
use isobar_datasets::catalog;

/// Elements per test dataset: one analyzer-stable chunk.
const N: usize = 60_000;
const SEED: u64 = 0xC0FFEE;

/// True when a dataset's generator draws from a value pool (repeated
/// whole elements) — those repeats are unexploitable at paper scale
/// but land inside solver windows at test scale.
fn uses_value_pool(spec: &isobar_datasets::DatasetSpec) -> bool {
    use isobar_datasets::gen::GenKind;
    match spec.kind {
        GenKind::IntIds { .. } | GenKind::Repetitive { .. } => true,
        GenKind::DoubleField {
            unique_fraction, ..
        }
        | GenKind::SkewedNoise {
            unique_fraction, ..
        } => unique_fraction < 0.85,
        GenKind::FloatField { .. } => false,
    }
}

fn small_chunk_compressor(pref: Preference) -> IsobarCompressor {
    IsobarCompressor::new(IsobarOptions {
        preference: pref,
        chunk_elements: 30_000,
        eupa: EupaSelector {
            sample_elements: 4096,
            sample_blocks: 2,
            ..Default::default()
        },
        ..Default::default()
    })
}

#[test]
fn analyzer_reproduces_table_iv_on_all_24_datasets() {
    let analyzer = Analyzer::default();
    for spec in catalog::all() {
        let ds = spec.generate(N, SEED);
        let sel = analyzer.analyze(&ds.bytes, ds.width()).unwrap();
        assert_eq!(
            sel.is_improvable(),
            spec.paper_improvable,
            "{}: improvable mismatch (selection {:?})",
            spec.name,
            sel.bits()
        );
        assert_eq!(
            sel.htc_pct(),
            spec.paper_htc_pct,
            "{}: HTC byte %% mismatch (selection {:?})",
            spec.name,
            sel.bits()
        );
    }
}

#[test]
fn all_24_datasets_round_trip_speed_preference() {
    let isobar = small_chunk_compressor(Preference::Speed);
    for spec in catalog::all() {
        let ds = spec.generate(N, SEED);
        let packed = isobar.compress(&ds.bytes, ds.width()).unwrap();
        assert_eq!(
            isobar.decompress(&packed).unwrap(),
            ds.bytes,
            "{} round trip",
            spec.name
        );
    }
}

#[test]
fn all_24_datasets_round_trip_ratio_preference() {
    let isobar = small_chunk_compressor(Preference::Ratio);
    for spec in catalog::all() {
        let ds = spec.generate(N, SEED);
        let packed = isobar.compress(&ds.bytes, ds.width()).unwrap();
        assert_eq!(
            isobar.decompress(&packed).unwrap(),
            ds.bytes,
            "{} round trip",
            spec.name
        );
    }
}

#[test]
fn improvable_datasets_beat_standalone_zlib() {
    // The paper's core claim (Table V): on every improvable dataset,
    // ISOBAR + solver achieves a better ratio than the solver alone.
    let isobar = IsobarCompressor::new(IsobarOptions {
        codec_override: Some(CodecId::Deflate),
        linearization_override: Some(isobar::Linearization::Row),
        chunk_elements: 30_000,
        ..Default::default()
    });
    let zlib = Deflate::default();
    for spec in catalog::all().into_iter().filter(|s| s.paper_improvable) {
        // xgc_iphase's 7.7%-unique value pool spans ~37 KB at the
        // default test size — right at zlib's 32 KiB window, letting
        // standalone zlib reach repeats that are 94 MB apart at paper
        // scale. Size it so the pool clears the window, as in reality.
        let n = if spec.name == "xgc_iphase" { 4 * N } else { N };
        let ds = spec.generate(n, SEED);
        let (packed, report) = isobar.compress_with_report(&ds.bytes, ds.width()).unwrap();
        let standalone = zlib.compress(&ds.bytes);
        assert!(report.improvable(), "{} should partition", spec.name);
        assert!(
            packed.len() < standalone.len(),
            "{}: isobar {} vs zlib {}",
            spec.name,
            packed.len(),
            standalone.len()
        );
    }
}

#[test]
fn improvable_datasets_beat_standalone_bzip2() {
    let isobar = IsobarCompressor::new(IsobarOptions {
        codec_override: Some(CodecId::Bzip2Like),
        linearization_override: Some(isobar::Linearization::Row),
        chunk_elements: 30_000,
        ..Default::default()
    });
    let bzip2 = Bzip2Like::default();
    for spec in catalog::all().into_iter().filter(|s| s.paper_improvable) {
        // Pool-based datasets are scale-sensitive against a BWT
        // solver: at test size their repeated values all fall inside
        // one BWT block, which the paper-scale datasets (value pools
        // spanning 4–94 MB) do not allow. The full-scale bench covers
        // them; see `igid_beats_bzip2_at_representative_scale` below.
        if uses_value_pool(&spec) {
            continue;
        }
        let ds = spec.generate(N, SEED);
        let packed = isobar.compress(&ds.bytes, ds.width()).unwrap();
        let standalone = bzip2.compress(&ds.bytes);
        assert!(
            packed.len() < standalone.len(),
            "{}: isobar {} vs bzlib2 {}",
            spec.name,
            packed.len(),
            standalone.len()
        );
    }
}

#[test]
#[ignore = "slow in debug builds; run with --ignored or via the bench harness"]
fn igid_beats_bzip2_at_representative_scale() {
    // Large enough that the ID pool spans several BWT blocks, as at
    // paper scale.
    let ds = catalog::spec("xgc_igid").unwrap().generate(400_000, SEED);
    let isobar = IsobarCompressor::new(IsobarOptions {
        codec_override: Some(CodecId::Bzip2Like),
        linearization_override: Some(isobar::Linearization::Row),
        ..Default::default()
    });
    let packed = isobar.compress(&ds.bytes, 8).unwrap();
    let standalone = Bzip2Like::default().compress(&ds.bytes);
    assert!(
        packed.len() < standalone.len(),
        "isobar {} vs bzlib2 {}",
        packed.len(),
        standalone.len()
    );
}

#[test]
fn non_improvable_datasets_pass_through_whole() {
    let isobar = small_chunk_compressor(Preference::Ratio);
    for spec in catalog::all().into_iter().filter(|s| !s.paper_improvable) {
        let ds = spec.generate(N, SEED);
        let (_, report) = isobar.compress_with_report(&ds.bytes, ds.width()).unwrap();
        assert!(
            report
                .chunks
                .iter()
                .all(|c| c.mode == ChunkMode::Passthrough),
            "{}: expected passthrough chunks, got {:?}",
            spec.name,
            report.chunks
        );
    }
}

#[test]
fn repetitive_datasets_still_compress_well_via_passthrough() {
    // msg_sppm/num_plasma are not improvable but are easy: the solver
    // alone must reach a high ratio through the undetermined path.
    let isobar = small_chunk_compressor(Preference::Ratio);
    for name in ["msg_sppm", "num_plasma"] {
        let ds = catalog::spec(name).unwrap().generate(N, SEED);
        let (_, report) = isobar.compress_with_report(&ds.bytes, ds.width()).unwrap();
        assert!(
            report.ratio() > 3.0,
            "{name}: passthrough ratio {}",
            report.ratio()
        );
    }
}

#[test]
fn speed_preference_is_not_slower_than_ratio_preference() {
    // On a representative improvable dataset the Sp-preferred pipeline
    // must have at least the Ratio-preferred pipeline's throughput
    // (they may tie when one combination dominates both axes).
    let ds = catalog::spec("gts_chkp_zion").unwrap().generate(N, SEED);
    let (_, speed) = small_chunk_compressor(Preference::Speed)
        .compress_with_report(&ds.bytes, 8)
        .unwrap();
    let (_, ratio) = small_chunk_compressor(Preference::Ratio)
        .compress_with_report(&ds.bytes, 8)
        .unwrap();
    // Compare the EUPA sample evidence rather than wall time (wall time
    // of two separate runs is noisy in CI).
    let speed_sample = speed
        .eupa
        .as_ref()
        .unwrap()
        .samples
        .iter()
        .find(|s| s.codec == speed.codec && s.linearization == speed.linearization)
        .unwrap()
        .throughput_mbps;
    let ratio_sample = ratio
        .eupa
        .as_ref()
        .unwrap()
        .samples
        .iter()
        .find(|s| s.codec == ratio.codec && s.linearization == ratio.linearization)
        .unwrap()
        .throughput_mbps;
    assert!(
        speed_sample >= ratio_sample * 0.99,
        "speed pick {speed_sample} MB/s vs ratio pick {ratio_sample} MB/s"
    );
}

#[test]
fn single_precision_datasets_work_with_width_4() {
    // §III.E: ISOBAR applies to single-precision data too.
    for name in ["s3d_temp", "s3d_vmag"] {
        let spec = catalog::spec(name).unwrap();
        let ds = spec.generate(N, SEED);
        assert_eq!(ds.width(), 4);
        let isobar = small_chunk_compressor(Preference::Speed);
        let (packed, report) = isobar.compress_with_report(&ds.bytes, 4).unwrap();
        assert!(report.improvable(), "{name}");
        assert_eq!(isobar.decompress(&packed).unwrap(), ds.bytes, "{name}");
    }
}
