//! Table VI — improvement under the ISOBAR-Sp (speed) preference.
//!
//! For the paper's 16 improvable double/integer datasets: the chosen
//! linearization, ΔCR relative to the alternative with the highest
//! compression throughput, and the compression speed-up (Eq. 2).

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

/// The 16 datasets of the paper's Table VI, in its order.
pub const TABLE6_DATASETS: [&str; 16] = [
    "gts_chkp_zeon",
    "gts_chkp_zion",
    "gts_phi_l",
    "gts_phi_nl",
    "xgc_iphase",
    "flash_gamc",
    "flash_velx",
    "flash_vely",
    "msg_lu",
    "msg_sp",
    "msg_sweep3d",
    "num_brain",
    "num_comet",
    "num_control",
    "obs_info",
    "obs_temp",
];

fn main() {
    banner("Table VI: improvement of ISOBAR-Sp preference");
    println!(
        "{:<15} {:>7} {:>8} {:>8} {:>8}",
        "Dataset", "Codec", "LS", "ΔCR(%)", "Sp"
    );
    for name in TABLE6_DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);
        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Speed);

        // ΔCR vs the alternative with the highest throughput; Sp vs
        // that same alternative (Table VI footnote 2).
        let fastest = if zlib.comp_mbps >= bzip2.comp_mbps {
            zlib
        } else {
            bzip2
        };
        println!(
            "{:<15} {:>7} {:>8} {:>8.2} {:>8.3}",
            name,
            isobar.report.codec.name(),
            isobar.report.linearization,
            delta_cr_pct(isobar.ratio, fastest.ratio),
            speedup(isobar.comp_mbps, fastest.comp_mbps),
        );
    }
    println!();
    println!("paper: ΔCR in [4.7%, 18.9%], Sp in [1.5, 37]; zlib chosen for all rows.");
}
