//! Run-length encoding stages of the bzip2-class solver.
//!
//! Two distinct RLE stages, matching bzip2's structure:
//!
//! * **RLE1** ([`rle1_encode`]/[`rle1_decode`]) runs on raw bytes before
//!   the BWT. Runs of 4–259 identical bytes become the 4 bytes plus a
//!   count byte. Its original purpose in bzip2 was to protect the sorter
//!   from degenerate repeats; we keep it for format fidelity and because
//!   it cheaply shrinks constant byte-columns.
//! * **RLE2** ([`zrle_encode`]/[`zrle_decode`]) runs on MTF ranks after
//!   the BWT. Zero runs dominate there, so runs are written in bijective
//!   base 2 using two symbols RUNA/RUNB, exactly like bzip2; nonzero
//!   ranks are shifted up by one.

/// Threshold after which RLE1 inserts an explicit count byte.
const RLE1_RUN: usize = 4;
/// Longest run one count byte can extend (4 literal + count in 0..=255).
const RLE1_MAX: usize = RLE1_RUN + 255;

/// RLE1: collapse runs of ≥ 4 identical bytes into `bbbb` + count.
pub fn rle1_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + data.len() / 128 + 8);
    let mut i = 0usize;
    while i < data.len() {
        let byte = data[i];
        let mut run = 1usize;
        while run < RLE1_MAX && i + run < data.len() && data[i + run] == byte {
            run += 1;
        }
        if run >= RLE1_RUN {
            out.extend(std::iter::repeat_n(byte, RLE1_RUN));
            out.push((run - RLE1_RUN) as u8);
        } else {
            out.extend(std::iter::repeat_n(byte, run));
        }
        i += run;
    }
    out
}

/// Inverse of [`rle1_encode`].
pub fn rle1_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    let mut run = 0usize;
    let mut prev: Option<u8> = None;
    while i < data.len() {
        let byte = data[i];
        i += 1;
        if prev == Some(byte) {
            run += 1;
        } else {
            run = 1;
            prev = Some(byte);
        }
        out.push(byte);
        if run == RLE1_RUN {
            // Next byte is the extension count.
            let extra = data.get(i).copied().unwrap_or(0) as usize;
            i += 1;
            out.extend(std::iter::repeat_n(byte, extra));
            run = 0;
            prev = None;
        }
    }
    out
}

/// RLE2 symbol: RUNA (contributes `2^k`) in bijective base-2 runs.
pub const RUNA: u16 = 0;
/// RLE2 symbol: RUNB (contributes `2·2^k`) in bijective base-2 runs.
pub const RUNB: u16 = 1;

/// Zero-run encode MTF ranks: zero runs become RUNA/RUNB sequences
/// (bijective base 2), nonzero ranks `r` become symbol `r + 1`.
///
/// The output alphabet is `0..alphabet_size + 1`: RUNA, RUNB, then the
/// shifted ranks `2..=alphabet_size`.
pub fn zrle_encode(ranks: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(ranks.len() / 2 + 8);
    let mut zero_run = 0u64;
    for &rank in ranks {
        if rank == 0 {
            zero_run += 1;
        } else {
            flush_zero_run(&mut out, &mut zero_run);
            out.push(rank + 1);
        }
    }
    flush_zero_run(&mut out, &mut zero_run);
    out
}

fn flush_zero_run(out: &mut Vec<u16>, run: &mut u64) {
    // Bijective base 2: n = Σ dᵢ·2^i with dᵢ ∈ {1, 2};
    // digit 1 → RUNA, digit 2 → RUNB, least significant first.
    let mut n = *run;
    while n > 0 {
        if n & 1 == 1 {
            out.push(RUNA);
            n = (n - 1) / 2;
        } else {
            out.push(RUNB);
            n = (n - 2) / 2;
        }
    }
    *run = 0;
}

/// Inverse of [`zrle_encode`].
pub fn zrle_decode(symbols: &[u16]) -> Vec<u16> {
    zrle_decode_bounded(symbols, usize::MAX).expect("unbounded decode cannot overflow")
}

/// Inverse of [`zrle_encode`] with an output-size bound, so corrupt or
/// adversarial run lengths fail cleanly instead of exhausting memory.
pub fn zrle_decode_bounded(
    symbols: &[u16],
    max_len: usize,
) -> Result<Vec<u16>, crate::codec::CodecError> {
    let overflow = crate::codec::CodecError::Corrupt("zero-run expansion exceeds bound");
    let mut out = Vec::with_capacity(symbols.len().min(max_len));
    let mut i = 0usize;
    while i < symbols.len() {
        if symbols[i] <= RUNB {
            // Decode one bijective base-2 number.
            let mut run = 0u64;
            let mut place = 1u64;
            while i < symbols.len() && symbols[i] <= RUNB {
                run = run
                    .checked_add(
                        place
                            .checked_mul(symbols[i] as u64 + 1)
                            .ok_or(overflow.clone())?,
                    )
                    .ok_or(overflow.clone())?;
                place = place.saturating_mul(2);
                i += 1;
            }
            if run > (max_len - out.len()) as u64 {
                return Err(overflow);
            }
            out.extend(std::iter::repeat_n(0u16, run as usize));
        } else {
            if out.len() >= max_len {
                return Err(overflow);
            }
            out.push(symbols[i] - 1);
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rle1_round_trip(data: &[u8]) {
        let encoded = rle1_encode(data);
        assert_eq!(rle1_decode(&encoded), data, "input {data:?}");
    }

    #[test]
    fn rle1_short_runs_pass_through() {
        rle1_round_trip(b"");
        rle1_round_trip(b"abc");
        rle1_round_trip(b"aabbcc");
        rle1_round_trip(b"aaab");
        assert_eq!(rle1_encode(b"aaab"), b"aaab");
    }

    #[test]
    fn rle1_collapses_long_runs() {
        let data = vec![b'x'; 100];
        let encoded = rle1_encode(&data);
        assert_eq!(encoded, vec![b'x', b'x', b'x', b'x', 96]);
        rle1_round_trip(&data);
    }

    #[test]
    fn rle1_exact_threshold_runs() {
        // Runs of exactly 4 need a zero count byte.
        rle1_round_trip(b"aaaa");
        assert_eq!(rle1_encode(b"aaaa"), vec![b'a', b'a', b'a', b'a', 0]);
        rle1_round_trip(b"aaaab");
        rle1_round_trip(b"baaaa");
    }

    #[test]
    fn rle1_runs_longer_than_one_count_byte() {
        for len in [259usize, 260, 300, 518, 519, 1000] {
            rle1_round_trip(&vec![7u8; len]);
        }
    }

    #[test]
    fn rle1_mixed_content() {
        let mut data = Vec::new();
        for i in 0..50u8 {
            data.extend(std::iter::repeat_n(i, 1 + (i as usize * 13) % 40));
        }
        rle1_round_trip(&data);
    }

    fn zrle_round_trip(ranks: &[u16]) {
        let encoded = zrle_encode(ranks);
        assert_eq!(zrle_decode(&encoded), ranks, "input {ranks:?}");
    }

    #[test]
    fn zrle_basic_round_trips() {
        zrle_round_trip(&[]);
        zrle_round_trip(&[0]);
        zrle_round_trip(&[5]);
        zrle_round_trip(&[0, 0, 0, 7, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn zrle_bijective_base2_runs() {
        // Run lengths 1..=6 encode as A, B, AA, BA, AB, BB.
        assert_eq!(zrle_encode(&[0]), vec![RUNA]);
        assert_eq!(zrle_encode(&[0, 0]), vec![RUNB]);
        assert_eq!(zrle_encode(&[0, 0, 0]), vec![RUNA, RUNA]);
        assert_eq!(zrle_encode(&[0, 0, 0, 0]), vec![RUNB, RUNA]);
        assert_eq!(zrle_encode(&[0; 5]), vec![RUNA, RUNB]);
        assert_eq!(zrle_encode(&[0; 6]), vec![RUNB, RUNB]);
    }

    #[test]
    fn zrle_long_zero_runs_are_logarithmic() {
        let ranks = vec![0u16; 1_000_000];
        let encoded = zrle_encode(&ranks);
        assert!(encoded.len() <= 20, "got {} symbols", encoded.len());
        zrle_round_trip(&ranks);
    }

    #[test]
    fn zrle_nonzero_ranks_are_shifted() {
        assert_eq!(zrle_encode(&[1, 2, 3]), vec![2, 3, 4]);
    }

    #[test]
    fn zrle_all_run_lengths_up_to_100() {
        for len in 1..=100usize {
            let mut ranks = vec![0u16; len];
            ranks.push(9);
            zrle_round_trip(&ranks);
        }
    }
}
