//! fpzip-class lossless floating-point codec.
//!
//! Follows the architecture of fpzip (Lindstrom & Isenburg, *Fast and
//! Efficient Compression of Floating-Point Data*, TVCG 2006): traverse
//! the field in raster order, predict each sample with the Lorenzo
//! predictor, map predicted and actual values to a monotone unsigned
//! integer domain, and entropy-code the residual with a range coder —
//! an adaptively modelled bit-length symbol followed by the residual's
//! trailing bits verbatim.

use crate::lorenzo::{Dims, Lorenzo};
use crate::range_coder::{AdaptiveModel, RangeDecoder, RangeEncoder};

use std::error::Error;
use std::fmt;

/// Errors produced while decoding an fpzip-class stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpzipError {
    /// Stream too short or missing the magic tag.
    BadHeader,
    /// Header element type byte is unknown.
    UnknownElementType(u8),
    /// Input length is inconsistent with the header's dimensions.
    LengthMismatch,
    /// The range-coded payload ran out before all samples decoded.
    Truncated,
}

impl fmt::Display for FpzipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpzipError::BadHeader => write!(f, "fpzip: bad or missing header"),
            FpzipError::UnknownElementType(t) => write!(f, "fpzip: unknown element type {t}"),
            FpzipError::LengthMismatch => write!(f, "fpzip: length mismatch"),
            FpzipError::Truncated => write!(f, "fpzip: truncated stream"),
        }
    }
}

impl Error for FpzipError {}

const MAGIC: [u8; 4] = *b"FPZ1";

/// Map an IEEE-754 double to the monotone unsigned integer domain:
/// negative values are bit-flipped, positive values get the sign bit
/// set, so unsigned integer order equals numeric order.
#[inline]
pub fn map_f64(bits: u64) -> u64 {
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`map_f64`].
#[inline]
pub fn unmap_f64(mapped: u64) -> u64 {
    if mapped >> 63 == 1 {
        mapped & !(1 << 63)
    } else {
        !mapped
    }
}

/// Map an IEEE-754 single to the monotone unsigned integer domain.
#[inline]
pub fn map_f32(bits: u32) -> u32 {
    if bits >> 31 == 1 {
        !bits
    } else {
        bits | (1 << 31)
    }
}

/// Inverse of [`map_f32`].
#[inline]
pub fn unmap_f32(mapped: u32) -> u32 {
    if mapped >> 31 == 1 {
        mapped & !(1 << 31)
    } else {
        !mapped
    }
}

/// Zigzag-encode a wrapping difference so small ± residuals become
/// small unsigned values.
#[inline]
fn zigzag(d: u64) -> u64 {
    let s = d as i64;
    ((s << 1) ^ (s >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(z: u64) -> u64 {
    ((z >> 1) as i64 ^ -((z & 1) as i64)) as u64
}

/// The fpzip-class codec. Stateless; configuration is the grid shape
/// passed per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpzipLike;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ElementType {
    F32 = 1,
    F64 = 2,
}

impl FpzipLike {
    /// Compress a `f64` field of shape `dims` given as raw little-endian
    /// bytes. `data.len()` must equal `8 * dims.len()`.
    pub fn compress_f64(&self, data: &[u8], dims: Dims) -> Result<Vec<u8>, FpzipError> {
        if data.len() != dims.len() * 8 {
            return Err(FpzipError::LengthMismatch);
        }
        let mut out = header(ElementType::F64, dims);
        let mut predictor = Lorenzo::new(dims);
        let mut model = AdaptiveModel::new(65);
        let mut enc = RangeEncoder::new();
        for chunk in data.chunks_exact(8) {
            let bits = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let mapped = map_f64(bits);
            let pred = predictor.predict();
            predictor.advance(mapped);
            encode_residual(&mut enc, &mut model, zigzag(mapped.wrapping_sub(pred)));
        }
        out.extend_from_slice(&enc.finish());
        Ok(out)
    }

    /// Compress a `f32` field of shape `dims` given as raw little-endian
    /// bytes. `data.len()` must equal `4 * dims.len()`.
    pub fn compress_f32(&self, data: &[u8], dims: Dims) -> Result<Vec<u8>, FpzipError> {
        if data.len() != dims.len() * 4 {
            return Err(FpzipError::LengthMismatch);
        }
        let mut out = header(ElementType::F32, dims);
        let mut predictor = Lorenzo::new(dims);
        let mut model = AdaptiveModel::new(33);
        let mut enc = RangeEncoder::new();
        for chunk in data.chunks_exact(4) {
            let bits = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            let mapped = map_f32(bits) as u64;
            let pred = predictor.predict() & 0xFFFF_FFFF;
            predictor.advance(mapped);
            let diff = (mapped as u32).wrapping_sub(pred as u32);
            encode_residual32(&mut enc, &mut model, zigzag32(diff));
        }
        out.extend_from_slice(&enc.finish());
        Ok(out)
    }

    /// Decompress a stream produced by either compress method; returns
    /// the original little-endian bytes.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, FpzipError> {
        if data.len() < 17 || data[..4] != MAGIC {
            return Err(FpzipError::BadHeader);
        }
        let elem = match data[4] {
            1 => ElementType::F32,
            2 => ElementType::F64,
            other => return Err(FpzipError::UnknownElementType(other)),
        };
        let rd = |i: usize| {
            u32::from_le_bytes(data[i..i + 4].try_into().expect("4-byte field")) as usize
        };
        let dims = Dims {
            nx: rd(5),
            ny: rd(9),
            nz: rd(13),
        };
        let payload = &data[17..];
        let n = dims
            .nx
            .checked_mul(dims.ny)
            .and_then(|p| p.checked_mul(dims.nz))
            .ok_or(FpzipError::BadHeader)?;
        // The range coder cannot represent a symbol in fewer than
        // log2(65536/65535) bits, so a valid stream carries well under
        // 50 000 samples per payload byte. Anything above that is a
        // corrupt header trying to force a huge allocation.
        if n > payload.len().saturating_add(16).saturating_mul(50_000) {
            return Err(FpzipError::BadHeader);
        }
        let mut predictor = Lorenzo::new(dims);
        let mut dec = RangeDecoder::new(payload);
        // The sample count is untrusted: pre-size the output only up to
        // a modest cap (growth past it is paid for by symbols actually
        // decoded), and stop as soon as the range coder is demonstrably
        // running on zero-fill past the end of the payload. The decoder
        // legitimately touches a few padding bytes, so the overrun
        // tolerance is larger than the encoder's 5 flush bytes.
        match elem {
            ElementType::F64 => {
                let mut model = AdaptiveModel::new(65);
                let mut out = Vec::with_capacity(n.saturating_mul(8).min(1 << 20));
                for _ in 0..n {
                    if dec.overrun() > 8 {
                        return Err(FpzipError::Truncated);
                    }
                    let z = decode_residual(&mut dec, &mut model);
                    let pred = predictor.predict();
                    let mapped = pred.wrapping_add(unzigzag(z));
                    predictor.advance(mapped);
                    out.extend_from_slice(&unmap_f64(mapped).to_le_bytes());
                }
                Ok(out)
            }
            ElementType::F32 => {
                let mut model = AdaptiveModel::new(33);
                let mut out = Vec::with_capacity(n.saturating_mul(4).min(1 << 20));
                for _ in 0..n {
                    if dec.overrun() > 8 {
                        return Err(FpzipError::Truncated);
                    }
                    let z = decode_residual32(&mut dec, &mut model);
                    let pred = (predictor.predict() & 0xFFFF_FFFF) as u32;
                    let mapped = pred.wrapping_add(unzigzag32(z));
                    predictor.advance(mapped as u64);
                    out.extend_from_slice(&unmap_f32(mapped).to_le_bytes());
                }
                Ok(out)
            }
        }
    }
}

fn header(elem: ElementType, dims: Dims) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&MAGIC);
    out.push(elem as u8);
    out.extend_from_slice(&(dims.nx as u32).to_le_bytes());
    out.extend_from_slice(&(dims.ny as u32).to_le_bytes());
    out.extend_from_slice(&(dims.nz as u32).to_le_bytes());
    out
}

/// Encode a zigzagged residual: adaptive bit-length symbol, then the
/// bits below the implicit leading 1.
fn encode_residual(enc: &mut RangeEncoder, model: &mut AdaptiveModel, z: u64) {
    let nbits = 64 - z.leading_zeros();
    model.encode(enc, nbits as usize);
    if nbits > 1 {
        enc.encode_raw_bits(z & !(1u64 << (nbits - 1)), nbits - 1);
    }
}

fn decode_residual(dec: &mut RangeDecoder<'_>, model: &mut AdaptiveModel) -> u64 {
    let nbits = model.decode(dec) as u32;
    match nbits {
        0 => 0,
        1 => 1,
        _ => (1u64 << (nbits - 1)) | dec.decode_raw_bits(nbits - 1),
    }
}

#[inline]
fn zigzag32(d: u32) -> u32 {
    let s = d as i32;
    ((s << 1) ^ (s >> 31)) as u32
}

#[inline]
fn unzigzag32(z: u32) -> u32 {
    ((z >> 1) as i32 ^ -((z & 1) as i32)) as u32
}

fn encode_residual32(enc: &mut RangeEncoder, model: &mut AdaptiveModel, z: u32) {
    let nbits = 32 - z.leading_zeros();
    model.encode(enc, nbits as usize);
    if nbits > 1 {
        enc.encode_raw_bits((z & !(1u32 << (nbits - 1))) as u64, nbits - 1);
    }
}

fn decode_residual32(dec: &mut RangeDecoder<'_>, model: &mut AdaptiveModel) -> u32 {
    let nbits = model.decode(dec) as u32;
    match nbits {
        0 => 0,
        1 => 1,
        _ => (1u32 << (nbits - 1)) | dec.decode_raw_bits(nbits - 1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn f32_bytes(values: &[f32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn map_f64_is_monotone_and_invertible() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.5,
            1e300,
            f64::INFINITY,
        ];
        let mapped: Vec<u64> = values.iter().map(|v| map_f64(v.to_bits())).collect();
        // -0.0 < 0.0 in the mapped domain (they are distinct bit patterns).
        for w in mapped.windows(2) {
            assert!(w[0] < w[1], "mapping must be strictly monotone");
        }
        for v in values {
            assert_eq!(unmap_f64(map_f64(v.to_bits())), v.to_bits());
        }
    }

    #[test]
    fn map_f32_is_monotone_and_invertible() {
        let values = [-1e30f32, -2.5, -0.0, 0.0, 2.5, 1e30];
        let mapped: Vec<u32> = values.iter().map(|v| map_f32(v.to_bits())).collect();
        for w in mapped.windows(2) {
            assert!(w[0] < w[1]);
        }
        for v in values {
            assert_eq!(unmap_f32(map_f32(v.to_bits())), v.to_bits());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0u64, 1, u64::MAX, 1 << 63, 42, u64::MAX - 41] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
        // Small magnitudes (either sign) map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(u64::MAX), 1); // −1
    }

    #[test]
    fn smooth_f64_field_round_trips_and_compresses() {
        let values: Vec<f64> = (0..10_000)
            .map(|i| (i as f64 * 0.001).sin() * 100.0 + 0.3)
            .collect();
        let data = f64_bytes(&values);
        let codec = FpzipLike;
        let packed = codec
            .compress_f64(&data, Dims::linear(values.len()))
            .unwrap();
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        assert!(
            packed.len() < data.len(),
            "smooth field must compress: {} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn random_mantissa_f64_round_trips() {
        let mut state = 7u64;
        let values: Vec<f64> = (0..5000)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                f64::from_bits((1023u64 << 52) | (state >> 12))
            })
            .collect();
        let data = f64_bytes(&values);
        let codec = FpzipLike;
        let packed = codec
            .compress_f64(&data, Dims::linear(values.len()))
            .unwrap();
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn special_values_round_trip() {
        let values = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
        ];
        let data = f64_bytes(&values);
        let codec = FpzipLike;
        let packed = codec
            .compress_f64(&data, Dims::linear(values.len()))
            .unwrap();
        // Bit-exact: NaN payloads preserved.
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn two_d_grid_beats_poor_linearization() {
        // A field varying smoothly in y but jumping in x: 2-D Lorenzo
        // should compress it better than treating it as 1-D.
        let (nx, ny) = (64usize, 64usize);
        let values: Vec<f64> = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| ((x * 7919) % 13) as f64 * 1e6 + y as f64 * 0.125))
            .collect();
        let data = f64_bytes(&values);
        let codec = FpzipLike;
        let packed_1d = codec.compress_f64(&data, Dims::linear(nx * ny)).unwrap();
        let packed_2d = codec.compress_f64(&data, Dims::grid2(nx, ny)).unwrap();
        assert_eq!(codec.decompress(&packed_2d).unwrap(), data);
        assert!(
            packed_2d.len() < packed_1d.len(),
            "2-D {} vs 1-D {}",
            packed_2d.len(),
            packed_1d.len()
        );
    }

    #[test]
    fn f32_round_trips() {
        let values: Vec<f32> = (0..8000).map(|i| (i as f32 * 0.01).cos() * 300.0).collect();
        let data = f32_bytes(&values);
        let codec = FpzipLike;
        let packed = codec
            .compress_f32(&data, Dims::linear(values.len()))
            .unwrap();
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        assert!(packed.len() < data.len());
    }

    #[test]
    fn empty_field_round_trips() {
        let codec = FpzipLike;
        let packed = codec.compress_f64(&[], Dims::linear(0)).unwrap();
        assert_eq!(codec.decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let codec = FpzipLike;
        assert_eq!(
            codec.compress_f64(&[0u8; 12], Dims::linear(2)),
            Err(FpzipError::LengthMismatch)
        );
        assert_eq!(
            codec.compress_f32(&[0u8; 7], Dims::linear(2)),
            Err(FpzipError::LengthMismatch)
        );
    }

    #[test]
    fn bad_headers_are_rejected() {
        let codec = FpzipLike;
        assert_eq!(codec.decompress(&[]), Err(FpzipError::BadHeader));
        assert_eq!(
            codec.decompress(b"NOPEnopenopenopen"),
            Err(FpzipError::BadHeader)
        );
        let mut packed = codec.compress_f64(&[0u8; 8], Dims::linear(1)).unwrap();
        packed[4] = 9;
        assert_eq!(
            codec.decompress(&packed),
            Err(FpzipError::UnknownElementType(9))
        );
    }
}
