//! Blind byte-shuffle (Blosc/bitshuffle-style) preconditioning.
//!
//! The simplest relative of ISOBAR's idea: transpose the `N × ω` byte
//! matrix so each byte-column becomes contiguous, then compress
//! *everything*. Shuffling helps generic compressors on typed arrays,
//! but unlike ISOBAR it still pays the solver for the noise columns and
//! gains nothing on them. It is implemented here as a baseline for the
//! ablation benches (`ablation_shuffle`), quantifying what the
//! analyzer/partitioner adds over blind shuffling. The transpose itself
//! runs on the runtime-dispatched `isobar-simd` kernels (unpack-tree
//! SIMD for widths ≤ 8, cache-blocked scalar otherwise).

use crate::codec::{Codec, CodecError};

/// Transpose element bytes to column-major order: output holds byte 0
/// of every element, then byte 1 of every element, and so on.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `width`.
pub fn shuffle(data: &[u8], width: usize) -> Vec<u8> {
    assert!(width > 0 && data.len().is_multiple_of(width));
    let mut out = vec![0u8; data.len()];
    isobar_simd::transpose::shuffle_into(isobar_simd::active_tier(), data, width, &mut out);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], width: usize) -> Vec<u8> {
    assert!(width > 0 && data.len().is_multiple_of(width));
    let mut out = vec![0u8; data.len()];
    isobar_simd::transpose::unshuffle_into(isobar_simd::active_tier(), data, width, &mut out);
    out
}

/// A solver wrapped in a blind byte-shuffle: `compress` transposes then
/// delegates; `decompress` delegates then transposes back. The element
/// width is stored in a one-byte header so streams stay
/// self-describing.
pub struct ShuffledCodec<C: Codec> {
    inner: C,
    width: usize,
}

impl<C: Codec> ShuffledCodec<C> {
    /// Wrap `inner` for elements of `width` bytes (1..=255).
    pub fn new(inner: C, width: usize) -> Self {
        assert!((1..=255).contains(&width));
        ShuffledCodec { inner, width }
    }

    /// Shuffle and compress `data` (length must be a multiple of the
    /// width).
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        let shuffled = shuffle(data, self.width);
        let mut out = Vec::with_capacity(shuffled.len() / 2 + 8);
        out.push(self.width as u8);
        out.extend_from_slice(&self.inner.compress(&shuffled));
        out
    }

    /// Decompress and unshuffle.
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let (&width, payload) = data.split_first().ok_or(CodecError::UnexpectedEof)?;
        if width == 0 {
            return Err(CodecError::Corrupt("zero shuffle width"));
        }
        let shuffled = self.inner.decompress(payload)?;
        if !shuffled.len().is_multiple_of(width as usize) {
            return Err(CodecError::Corrupt(
                "shuffled length not a multiple of width",
            ));
        }
        Ok(unshuffle(&shuffled, width as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::Deflate;

    #[test]
    fn shuffle_is_a_transpose() {
        // Two elements of width 3.
        let data = [1u8, 2, 3, 4, 5, 6];
        assert_eq!(shuffle(&data, 3), vec![1, 4, 2, 5, 3, 6]);
        assert_eq!(unshuffle(&shuffle(&data, 3), 3), data);
    }

    #[test]
    fn shuffle_round_trips_various_shapes() {
        let mut state = 9u64;
        for width in [1usize, 2, 4, 7, 8, 16] {
            for n in [0usize, 1, 5, 100] {
                let data: Vec<u8> = (0..n * width)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 56) as u8
                    })
                    .collect();
                assert_eq!(
                    unshuffle(&shuffle(&data, width), width),
                    data,
                    "{width}x{n}"
                );
            }
        }
    }

    #[test]
    fn shuffled_codec_round_trips() {
        let data: Vec<u8> = (0..5000u64)
            .flat_map(|i| ((i / 10) << 32 | ((i * 0x9E3779B9) & 0xFFFF_FFFF)).to_le_bytes())
            .collect();
        let codec = ShuffledCodec::new(Deflate::default(), 8);
        let packed = codec.compress(&data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn shuffling_helps_typed_arrays() {
        // Slowly varying doubles: shuffled columns are low-entropy runs.
        let data: Vec<u8> = (0..20_000u64)
            .flat_map(|i| (1000 + i / 7).to_le_bytes())
            .collect();
        let plain = Deflate::default().compress(&data);
        let shuffled = ShuffledCodec::new(Deflate::default(), 8).compress(&data);
        assert!(
            shuffled.len() < plain.len(),
            "shuffled {} vs plain {}",
            shuffled.len(),
            plain.len()
        );
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let codec = ShuffledCodec::new(Deflate::default(), 8);
        assert!(codec.decompress(&[]).is_err());
        assert!(codec.decompress(&[0, 1, 2]).is_err());
    }
}
