//! Random-access store reader.

use crate::error::StoreError;
use crate::format::{
    entry_checksum, trailer_len, IndexEntry, CHECKSUM_SEED, LEGACY_VERSION, MAGIC, MANIFEST_FILE,
    MIN_ENTRY_LEN, SEGMENT_TRAILER_LEN, TRAILER_MAGIC, V3_VERSION, VERSION,
};
use crate::manifest::{decode_segment_header, Manifest, SegmentMeta};
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, IsobarOptions, Recorder};
use isobar_codecs::xxhash::xxh64;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// One open segment (or, for v1/v2, the whole store file), read by
/// positioned I/O so concurrent [`StoreReader::get`] calls never
/// contend on a shared cursor.
#[derive(Debug)]
struct SegmentHandle {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
}

impl SegmentHandle {
    fn new(file: File) -> SegmentHandle {
        SegmentHandle {
            #[cfg(unix)]
            file,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(file),
        }
    }

    /// Fill `buf` from `offset` without moving any shared cursor
    /// (`pread` on unix; a locked seek+read elsewhere).
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            let mut file = self
                .file
                .lock()
                .map_err(|_| StoreError::Corrupt("reader file lock poisoned"))?;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(buf)?;
        }
        Ok(())
    }
}

/// Reads a closed checkpoint store with per-variable random access.
///
/// Opens both single-file stores (versions 1 and 2) and version-3
/// sharded directories; the two look identical through this API. In a
/// version-3 store the same `(step, variable)` may appear more than
/// once — later entries supersede earlier ones, and lookups resolve
/// last-wins.
#[derive(Debug)]
pub struct StoreReader {
    segments: Vec<SegmentHandle>,
    /// File name per segment ordinal (the store's own file name for
    /// v1/v2), for reporting which file holds a given entry.
    seg_names: Vec<String>,
    index: Vec<IndexEntry>,
    /// Segment ordinal per index entry (always 0 for v1/v2).
    seg_of: Vec<u16>,
    version: u8,
    generation: u64,
    verify: bool,
}

impl StoreReader {
    /// Open a store and load its index, with integrity verification on
    /// (the default — see [`StoreReader::open_with_verify`]).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with_verify(path, true)
    }

    /// Open a store and load its index. A directory opens as a
    /// version-3 sharded store; a file as a version-1/2 single-file
    /// store.
    ///
    /// Every untrusted field is validated before it drives an
    /// allocation or a seek: the trailer must fit inside the file, the
    /// claimed entry count must fit inside the index region (each
    /// serialized entry is at least [`MIN_ENTRY_LEN`] bytes), and every
    /// entry's `[offset, offset + container_len)` range must lie inside
    /// the data region (its segment's, for version 3).
    ///
    /// With `verify` on (the default via [`StoreReader::open`]), the
    /// index (or manifest) additionally has its XXH64 checked before
    /// any entry is parsed, every segment's sealed trailer must agree
    /// with the manifest, and every [`StoreReader::get`] checks the
    /// fetched container's XXH64 against its index entry. Mismatches
    /// surface as [`StoreError::ChecksumMismatch`]. Version-1 stores
    /// carry no checksums and are read structurally either way.
    pub fn open_with_verify(path: impl AsRef<Path>, verify: bool) -> Result<Self, StoreError> {
        let path = path.as_ref();
        if path.is_dir() {
            Self::open_v3(path, verify)
        } else {
            Self::open_single_file(path, verify)
        }
    }

    fn open_v3(dir: &Path, verify: bool) -> Result<Self, StoreError> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Corrupt("store directory has no manifest (store not committed?)")
            } else {
                StoreError::Io(e)
            }
        })?;
        let manifest = Manifest::decode(&bytes, verify)?;
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            let file = File::open(dir.join(&meta.file_name))?;
            Self::check_segment(&file, meta, verify)?;
            segments.push(SegmentHandle::new(file));
        }
        let mut index = Vec::with_capacity(manifest.entries.len());
        let mut seg_of = Vec::with_capacity(manifest.entries.len());
        for me in manifest.entries {
            seg_of.push(me.segment);
            index.push(me.entry);
        }
        let seg_names = manifest.segments.into_iter().map(|m| m.file_name).collect();
        Ok(StoreReader {
            segments,
            seg_names,
            index,
            seg_of,
            version: V3_VERSION,
            generation: manifest.generation,
            verify,
        })
    }

    /// Validate one segment file against its manifest row: header
    /// magic and exact length always; the sealed trailer's checksum
    /// and its agreement with the manifest when verifying.
    fn check_segment(file: &File, meta: &SegmentMeta, verify: bool) -> Result<(), StoreError> {
        let handle = SegmentHandle {
            #[cfg(unix)]
            file: file.try_clone()?,
            #[cfg(not(unix))]
            file: std::sync::Mutex::new(file.try_clone()?),
        };
        let file_len = file.metadata()?.len();
        let expected = meta
            .data_len
            .checked_add(SEGMENT_TRAILER_LEN as u64)
            .ok_or(StoreError::Corrupt("segment length overflow"))?;
        if file_len != expected {
            return Err(StoreError::Corrupt(
                "segment length disagrees with manifest",
            ));
        }
        let mut header = [0u8; crate::format::SEGMENT_HEADER_LEN];
        handle.read_exact_at(&mut header, 0)?;
        decode_segment_header(&header)?;
        if verify {
            let mut trailer = [0u8; SEGMENT_TRAILER_LEN];
            handle.read_exact_at(&mut trailer, meta.data_len)?;
            if trailer[20..] != crate::format::SEGMENT_TRAILER_MAGIC {
                return Err(StoreError::Corrupt("missing segment trailer"));
            }
            let stored = u64::from_le_bytes(trailer[12..20].try_into().expect("8 bytes"));
            let actual = xxh64(&trailer[..12], CHECKSUM_SEED);
            if stored != actual {
                return Err(StoreError::ChecksumMismatch {
                    offset: meta.data_len + 12,
                    expected: stored,
                    actual,
                });
            }
            let data_len = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
            let record_count = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
            if data_len != meta.data_len || record_count != meta.record_count {
                return Err(StoreError::Corrupt(
                    "segment trailer disagrees with manifest",
                ));
            }
        }
        Ok(())
    }

    fn open_single_file(path: &Path, verify: bool) -> Result<Self, StoreError> {
        let mut file = File::open(path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        let head_len = (MAGIC.len() + 1) as u64;
        // Every version needs at least a head and the smaller (v1)
        // trailer; the version-specific bound is rechecked below.
        if file_len < head_len + crate::format::TRAILER_V1_LEN as u64 {
            return Err(StoreError::Corrupt("file too short for a store"));
        }

        let mut head = [0u8; 5];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if head[..4] != MAGIC {
            return Err(StoreError::Corrupt("bad store magic"));
        }
        let version = head[4];
        if version != VERSION && version != LEGACY_VERSION {
            return Err(StoreError::Corrupt("unsupported store version"));
        }
        let trailer_size = trailer_len(version);
        if file_len < head_len + trailer_size as u64 {
            return Err(StoreError::Corrupt("file too short for a store"));
        }

        let mut trailer = vec![0u8; trailer_size];
        file.seek(SeekFrom::Start(file_len - trailer_size as u64))?;
        file.read_exact(&mut trailer)?;
        if trailer[trailer_size - 4..] != TRAILER_MAGIC {
            return Err(StoreError::Corrupt("missing trailer (store not closed?)"));
        }
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let entry_count = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        // The index sits between the header and the trailer; an offset
        // inside either is corrupt (and `> file_len - trailer_size`
        // would underflow the length subtraction below).
        if index_offset < head_len || index_offset > file_len - trailer_size as u64 {
            return Err(StoreError::Corrupt("index offset outside data region"));
        }

        let index_len = file_len - trailer_size as u64 - index_offset;
        // Bound the claimed entry count by what the index region could
        // possibly hold before allocating for it.
        if entry_count as u64 * MIN_ENTRY_LEN as u64 > index_len {
            return Err(StoreError::Corrupt("entry count exceeds index size"));
        }
        let mut index_bytes = vec![0u8; index_len as usize];
        file.seek(SeekFrom::Start(index_offset))?;
        file.read_exact(&mut index_bytes)?;

        if version >= 2 && verify {
            let stored = u64::from_le_bytes(trailer[12..20].try_into().expect("8 bytes"));
            let actual = xxh64(&index_bytes, CHECKSUM_SEED);
            if stored != actual {
                return Err(StoreError::ChecksumMismatch {
                    offset: index_offset,
                    expected: stored,
                    actual,
                });
            }
        }

        let mut index = Vec::with_capacity(entry_count as usize);
        let mut cursor = &index_bytes[..];
        for _ in 0..entry_count {
            let (entry, used) = IndexEntry::read_versioned(cursor, version)?;
            let end = entry
                .offset
                .checked_add(entry.container_len)
                .ok_or(StoreError::Corrupt("entry range overflow"))?;
            if entry.offset < head_len || end > index_offset {
                return Err(StoreError::Corrupt("entry range outside data region"));
            }
            cursor = &cursor[used..];
            index.push(entry);
        }
        if !cursor.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after index"));
        }

        let seg_of = vec![0u16; index.len()];
        let seg_names = vec![path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string()];
        Ok(StoreReader {
            segments: vec![SegmentHandle::new(file)],
            seg_names,
            index,
            seg_of,
            version,
            generation: 0,
            verify,
        })
    }

    /// [`StoreReader::open`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the store is structurally invalid, plus
    /// [`Counter::ChecksumMismatches`] when the damage was caught by an
    /// integrity checksum.
    pub fn open_recorded(
        path: impl AsRef<Path>,
        recorder: &mut Recorder,
    ) -> Result<Self, StoreError> {
        let result = Self::open(path);
        match &result {
            Err(StoreError::Corrupt(_)) => recorder.incr(Counter::StoreCorruptRejected),
            Err(StoreError::ChecksumMismatch { .. }) => {
                recorder.incr(Counter::StoreCorruptRejected);
                recorder.incr(Counter::ChecksumMismatches);
            }
            _ => {}
        }
        result
    }

    /// Store format version of the underlying store (1, 2, or 3).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Manifest generation of a version-3 store (0 for single-file
    /// stores, which have no generations).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of segment files backing this store (1 for v1/v2).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// File name of the segment holding `entry` (the store file's own
    /// name for v1/v2). The entry must come from this reader's index.
    pub fn segment_file_name(&self, entry: &IndexEntry) -> Result<&str, StoreError> {
        Ok(&self.seg_names[self.segment_of(entry)? as usize])
    }

    /// All index entries, in write order — including entries a later
    /// put has superseded (see [`StoreReader::live_entries`]).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.index
    }

    /// The winning entry per `(step, variable)`: every index entry
    /// that no later entry supersedes, in write order.
    pub fn live_entries(&self) -> Vec<&IndexEntry> {
        let mut seen = std::collections::HashSet::new();
        let mut live: Vec<&IndexEntry> = self
            .index
            .iter()
            .rev()
            .filter(|e| seen.insert((e.step, e.name.as_str())))
            .collect();
        live.reverse();
        live
    }

    /// Entries shadowed by a later put of the same `(step, variable)`.
    pub fn superseded_count(&self) -> usize {
        self.index.len() - self.live_entries().len()
    }

    /// Distinct time steps present, ascending.
    pub fn steps(&self) -> Vec<u32> {
        let mut steps: Vec<u32> = self.index.iter().map(|e| e.step).collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Distinct variable names, in first-appearance order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.index
            .iter()
            .filter(|e| seen.insert(e.name.as_str()))
            .map(|e| e.name.as_str())
            .collect()
    }

    /// Index position of the winning entry for `(step, name)`: the
    /// last match, so later generations supersede earlier ones.
    fn position(&self, step: u32, name: &str) -> Result<usize, StoreError> {
        self.index
            .iter()
            .rposition(|e| e.step == step && e.name == name)
            .ok_or_else(|| StoreError::NotFound {
                step,
                name: name.to_string(),
            })
    }

    /// Locate the (winning) entry for `(step, name)`.
    pub fn entry(&self, step: u32, name: &str) -> Result<&IndexEntry, StoreError> {
        Ok(&self.index[self.position(step, name)?])
    }

    /// Segment ordinal of an entry borrowed from this reader's index.
    /// Falls back to an equality scan for entries that were cloned out.
    fn segment_of(&self, entry: &IndexEntry) -> Result<u16, StoreError> {
        let base = self.index.as_ptr() as usize;
        let p = entry as *const IndexEntry as usize;
        if p >= base {
            let i = (p - base) / std::mem::size_of::<IndexEntry>();
            if i < self.index.len() && std::ptr::eq(&self.index[i], entry) {
                return Ok(self.seg_of[i]);
            }
        }
        self.index
            .iter()
            .position(|e| e == entry)
            .map(|i| self.seg_of[i])
            .ok_or(StoreError::Corrupt("entry does not belong to this store"))
    }

    fn container_at(&self, position: usize) -> Result<Vec<u8>, StoreError> {
        let entry = &self.index[position];
        let segment = &self.segments[self.seg_of[position] as usize];
        let mut container = vec![0u8; entry.container_len as usize];
        segment.read_exact_at(&mut container, entry.offset)?;
        Ok(container)
    }

    /// Read one variable's raw container bytes without decompressing.
    /// Fsck and salvage use this to inspect records directly. The
    /// entry must come from this reader's index.
    pub fn get_container(&self, entry: &IndexEntry) -> Result<Vec<u8>, StoreError> {
        let segment = &self.segments[self.segment_of(entry)? as usize];
        let mut container = vec![0u8; entry.container_len as usize];
        segment.read_exact_at(&mut container, entry.offset)?;
        Ok(container)
    }

    /// Read and decompress one variable (the winning entry, if the
    /// pair was superseded).
    ///
    /// The entry's byte range was validated against its file (or
    /// segment) length at open, so the container allocation here is
    /// bounded by real on-disk bytes. With verification on (the
    /// default), the container's XXH64 is checked against the index
    /// entry before decode. Reads use positioned I/O, so concurrent
    /// `get` calls from many threads do not serialize on a cursor.
    pub fn get(&self, step: u32, name: &str) -> Result<Vec<u8>, StoreError> {
        let _span = isobar::trace::span(isobar::trace::TraceTag::StoreGet, isobar::trace::NO_CHUNK);
        let position = self.position(step, name)?;
        let entry = self.index[position].clone();
        let container = self.container_at(position)?;
        if self.version >= 2 && self.verify {
            let actual = entry_checksum(&container);
            if actual != entry.checksum {
                return Err(StoreError::ChecksumMismatch {
                    offset: entry.offset,
                    expected: entry.checksum,
                    actual,
                });
            }
        }
        let options = IsobarOptions {
            verify: self.verify,
            ..Default::default()
        };
        let data = IsobarCompressor::new(options).decompress(&container)?;
        if data.len() as u64 != entry.raw_len {
            return Err(StoreError::Corrupt("variable length mismatch"));
        }
        Ok(data)
    }

    /// [`StoreReader::get`], bumping [`Counter::StoreCorruptRejected`]
    /// in `recorder` when the stored variable fails to decode, plus
    /// [`Counter::ChecksumMismatches`] when the damage was caught by an
    /// integrity checksum.
    pub fn get_recorded(
        &self,
        step: u32,
        name: &str,
        recorder: &mut Recorder,
    ) -> Result<Vec<u8>, StoreError> {
        let result = self.get(step, name);
        match &result {
            Err(StoreError::Corrupt(_) | StoreError::Isobar(_)) => {
                recorder.incr(Counter::StoreCorruptRejected);
                if matches!(&result, Err(StoreError::Isobar(e)) if e.is_checksum_mismatch()) {
                    recorder.incr(Counter::ChecksumMismatches);
                }
            }
            Err(StoreError::ChecksumMismatch { .. }) => {
                recorder.incr(Counter::StoreCorruptRejected);
                recorder.incr(Counter::ChecksumMismatches);
            }
            _ => {}
        }
        result
    }

    /// Total raw and stored bytes across all live entries: the
    /// store-level compression ratio.
    pub fn overall_ratio(&self) -> f64 {
        let live = self.live_entries();
        let raw: u64 = live.iter().map(|e| e.raw_len).sum();
        let stored: u64 = live.iter().map(|e| e.container_len).sum();
        if stored == 0 {
            1.0
        } else {
            raw as f64 / stored as f64
        }
    }
}
