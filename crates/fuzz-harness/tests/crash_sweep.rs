//! The full commit-protocol crash sweep, as an integration test.
//!
//! This is the acceptance gate for the store's crash-consistency
//! claim: a writer killed at every single filesystem-operation
//! boundary of a store rewrite — including mid-write, with torn
//! prefixes — must leave a disk from which the verifying reader
//! recovers exactly the old store or exactly the new one, in every
//! combination of lost/survived unsynced data and directory
//! mutations.

use isobar_fuzz_harness::{crash, DEFAULT_SEED};

#[test]
fn commit_protocol_survives_kill_at_every_operation() {
    let outcome = crash::crash_sweep(DEFAULT_SEED)
        .unwrap_or_else(|e| panic!("crash sweep violation (seed {DEFAULT_SEED:#018x}): {e}"));
    assert!(
        outcome.kill_points >= 200,
        "sweep must cover at least 200 kill points, got {}",
        outcome.kill_points
    );
    assert!(
        outcome.views_checked >= outcome.kill_points,
        "every kill point contributes at least one disk view"
    );
    // Kills before the commit point must exist (old store survives)
    // and kills after it must exist (new store lands) — otherwise the
    // sweep missed the interesting boundary.
    assert!(outcome.saw_old > 0 && outcome.saw_new > 0);
}

#[test]
fn sweep_is_deterministic_in_its_seed() {
    let a = crash::crash_sweep(7).expect("seed 7 sweep");
    let b = crash::crash_sweep(7).expect("seed 7 sweep again");
    assert_eq!(a, b, "same seed must replay the identical sweep");
}

#[test]
fn sharded_commit_protocol_survives_kill_at_every_operation() {
    let outcome = crash::crash_sweep_sharded(DEFAULT_SEED).unwrap_or_else(|e| {
        panic!("sharded crash sweep violation (seed {DEFAULT_SEED:#018x}): {e}")
    });
    assert!(
        outcome.kill_points >= 40,
        "sharded sweep must cover the full two-phase commit, got {} kill points",
        outcome.kill_points
    );
    assert!(outcome.views_checked >= outcome.kill_points);
    assert!(
        outcome.real_runs >= 2,
        "both ends are anchored to real armed runs"
    );
    // Kills before the manifest swap leave the old generation; kills
    // after it leave the new one — the sweep must witness both.
    assert!(outcome.saw_old > 0 && outcome.saw_new > 0);
}
