//! Pipelined store writer: compression overlapped with the producer.
//!
//! The in-situ pattern the paper targets: the simulation must not
//! stall while its checkpoint compresses. [`PipelinedStoreWriter`]
//! hands each variable to a background worker over a bounded queue and
//! returns immediately; the worker runs the ISOBAR pipeline and
//! appends to the store file. The producer only blocks when it
//! out-runs the compressor by more than the queue depth — exactly the
//! back-pressure an in-situ pipeline wants.

use crate::error::StoreError;
use crate::format::IndexEntry;
use crate::writer::StoreWriter;
use isobar::IsobarOptions;
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

struct Job {
    step: u32,
    name: String,
    data: Vec<u8>,
    width: usize,
}

/// A [`StoreWriter`] fronted by a bounded queue and a worker thread.
pub struct PipelinedStoreWriter {
    tx: Option<SyncSender<Job>>,
    worker: Option<JoinHandle<Result<Vec<IndexEntry>, StoreError>>>,
}

impl PipelinedStoreWriter {
    /// Create a store at `path`; up to `queue_depth` variables may be
    /// in flight before [`PipelinedStoreWriter::put`] blocks.
    pub fn create(
        path: impl AsRef<Path>,
        options: IsobarOptions,
        queue_depth: usize,
    ) -> Result<Self, StoreError> {
        let mut writer = StoreWriter::create(path, options)?;
        let (tx, rx) = sync_channel::<Job>(queue_depth.max(1));
        let worker = std::thread::spawn(move || {
            for job in rx {
                writer.put(job.step, &job.name, &job.data, job.width)?;
            }
            let entries = writer.entries().to_vec();
            writer.close()?;
            Ok(entries)
        });
        Ok(PipelinedStoreWriter {
            tx: Some(tx),
            worker: Some(worker),
        })
    }

    /// Queue one variable for compression and storage. Takes ownership
    /// of `data` so the producer can immediately reuse its own buffers.
    ///
    /// Returns an error if the worker has already failed (the detailed
    /// cause is reported by [`PipelinedStoreWriter::close`]).
    pub fn put(
        &self,
        step: u32,
        name: &str,
        data: Vec<u8>,
        width: usize,
    ) -> Result<(), StoreError> {
        let job = Job {
            step,
            name: name.to_string(),
            data,
            width,
        };
        self.tx
            .as_ref()
            .expect("writer already closed")
            .send(job)
            .map_err(|_| StoreError::Corrupt("store worker terminated early"))
    }

    /// Drain the queue, finalize the store, and return its index.
    pub fn close(mut self) -> Result<Vec<IndexEntry>, StoreError> {
        drop(self.tx.take()); // disconnect: the worker drains and exits
        self.worker
            .take()
            .expect("close called once")
            .join()
            .map_err(|_| StoreError::Corrupt("store worker panicked"))?
    }
}

impl Drop for PipelinedStoreWriter {
    fn drop(&mut self) {
        // Disconnect and let the worker finish so a dropped writer does
        // not leave a file mid-write; errors are swallowed here (use
        // close() to observe them).
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;
    use isobar::Preference;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-pipelined-{}-{name}", std::process::id()));
        dir
    }

    fn options() -> IsobarOptions {
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 10_000,
            ..Default::default()
        }
    }

    #[test]
    fn pipelined_writes_round_trip() {
        let path = tmp("roundtrip");
        let datasets: Vec<(u32, Vec<u8>)> = (0..6u32)
            .map(|step| {
                let ds = isobar_datasets::catalog::spec("gts_phi_l")
                    .unwrap()
                    .generate(15_000, step as u64);
                (step, ds.bytes)
            })
            .collect();

        let writer = PipelinedStoreWriter::create(&path, options(), 2).unwrap();
        for (step, bytes) in &datasets {
            writer.put(*step, "phi", bytes.clone(), 8).unwrap();
        }
        let entries = writer.close().unwrap();
        assert_eq!(entries.len(), datasets.len());

        let reader = StoreReader::open(&path).unwrap();
        for (step, bytes) in &datasets {
            assert_eq!(&reader.get(*step, "phi").unwrap(), bytes);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_errors_surface_at_close() {
        let path = tmp("dup-error");
        let writer = PipelinedStoreWriter::create(&path, options(), 4).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        // Duplicate: the worker fails on this job...
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        // ...and close reports it.
        assert!(matches!(writer.close(), Err(StoreError::Duplicate { .. })));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn put_after_worker_death_errors_rather_than_hangs() {
        let path = tmp("dead-worker");
        let writer = PipelinedStoreWriter::create(&path, options(), 1).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap();
        writer.put(0, "x", vec![0u8; 80], 8).unwrap(); // kills the worker
                                                       // Eventually sends start failing (the channel disconnects once
                                                       // the worker exits); loop with a bound so the test cannot hang.
        let mut failed = false;
        for i in 0..1000 {
            if writer.put(1, &format!("y{i}"), vec![0u8; 80], 8).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "puts kept succeeding after worker failure");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dropped_writer_does_not_panic() {
        let path = tmp("dropped");
        let writer = PipelinedStoreWriter::create(&path, options(), 2).unwrap();
        writer.put(0, "x", vec![1u8; 800], 8).unwrap();
        drop(writer); // worker drains and closes quietly
        let _ = std::fs::remove_file(&path);
    }
}
