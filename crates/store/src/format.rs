//! On-disk layout constants and the index entry record.

use crate::error::StoreError;

/// Store file magic: "ISST".
pub const MAGIC: [u8; 4] = *b"ISST";
/// Trailer magic: "ISSX".
pub const TRAILER_MAGIC: [u8; 4] = *b"ISSX";
/// Store format version.
pub const VERSION: u8 = 1;
/// Trailer size: index offset (8) + entry count (4) + magic (4).
pub const TRAILER_LEN: usize = 16;
/// Smallest possible serialized [`IndexEntry`]: name length prefix (2),
/// empty name, step (4), width (1), offset (8), container_len (8),
/// raw_len (8). Used to bound a claimed entry count against the index
/// region's actual size before allocating for it.
pub const MIN_ENTRY_LEN: usize = 2 + 4 + 1 + 8 + 8 + 8;

/// One index entry: where to find one variable of one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Variable name.
    pub name: String,
    /// Simulation time step.
    pub step: u32,
    /// Element width the variable was written with.
    pub width: u8,
    /// File offset of the record's ISOBAR container.
    pub offset: u64,
    /// Length of the ISOBAR container in bytes.
    pub container_len: u64,
    /// Uncompressed variable size in bytes.
    pub raw_len: u64,
}

impl IndexEntry {
    /// Serialize into `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        let name = self.name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.push(self.width);
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.container_len.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
    }

    /// Parse one entry from the front of `data`; returns the entry and
    /// bytes consumed.
    pub fn read(data: &[u8]) -> Result<(IndexEntry, usize), StoreError> {
        if data.len() < 2 {
            return Err(StoreError::Corrupt("index entry truncated"));
        }
        let name_len = u16::from_le_bytes(data[..2].try_into().expect("2 bytes")) as usize;
        let fixed_after_name = 4 + 1 + 8 + 8 + 8;
        let total = 2 + name_len + fixed_after_name;
        if data.len() < total {
            return Err(StoreError::Corrupt("index entry truncated"));
        }
        let name = std::str::from_utf8(&data[2..2 + name_len])
            .map_err(|_| StoreError::Corrupt("index entry name is not UTF-8"))?
            .to_string();
        let rest = &data[2 + name_len..];
        Ok((
            IndexEntry {
                name,
                step: u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")),
                width: rest[4],
                offset: u64::from_le_bytes(rest[5..13].try_into().expect("8 bytes")),
                container_len: u64::from_le_bytes(rest[13..21].try_into().expect("8 bytes")),
                raw_len: u64::from_le_bytes(rest[21..29].try_into().expect("8 bytes")),
            },
            total,
        ))
    }

    /// Compression ratio achieved for this variable.
    pub fn ratio(&self) -> f64 {
        if self.container_len == 0 {
            1.0
        } else {
            self.raw_len as f64 / self.container_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> IndexEntry {
        IndexEntry {
            name: "potential_nl".into(),
            step: 300_000,
            width: 8,
            offset: 123_456_789,
            container_len: 42_000,
            raw_len: 64_000,
        }
    }

    #[test]
    fn entry_round_trips() {
        let mut buf = Vec::new();
        demo().write(&mut buf);
        buf.extend_from_slice(&[0xAA; 3]); // trailing data untouched
        let (entry, consumed) = IndexEntry::read(&buf).unwrap();
        assert_eq!(entry, demo());
        assert_eq!(consumed, buf.len() - 3);
    }

    #[test]
    fn truncated_entries_are_rejected() {
        let mut buf = Vec::new();
        demo().write(&mut buf);
        for cut in [0, 1, 5, buf.len() - 1] {
            assert!(IndexEntry::read(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn non_utf8_names_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        buf.extend_from_slice(&[0u8; 29]);
        assert!(matches!(
            IndexEntry::read(&buf),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn ratio_is_raw_over_container() {
        assert!((demo().ratio() - 64_000.0 / 42_000.0).abs() < 1e-12);
    }

    #[test]
    fn empty_name_round_trips() {
        let entry = IndexEntry {
            name: String::new(),
            ..demo()
        };
        let mut buf = Vec::new();
        entry.write(&mut buf);
        assert_eq!(IndexEntry::read(&buf).unwrap().0, entry);
    }
}
