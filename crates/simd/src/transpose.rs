//! Byte-matrix transpose kernels: blind shuffle, column gather/scatter,
//! and the fused partition/reassemble paths the ISOBAR pipeline uses.
//!
//! All kernels view the input as an `n × width` byte matrix (n elements
//! of `width` bytes). The SIMD paths (x86-64, widths 2..=8) transpose
//! 16 elements per step with an unpack tree — four rounds of
//! `punpck{l,h}` turn sixteen 8-byte rows into eight 16-byte column
//! registers and back — so every load and store is wide and sequential.
//! Other widths and tiers run the cache-blocked scalar code, which is
//! also the differential-test oracle.

use crate::KernelTier;

/// Layout of the first (solver-facing) stream in [`partition2`] /
/// [`reassemble2`] — the pipeline's Row/Column linearization choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamLayout {
    /// Selected bytes interleaved element by element.
    RowMajor,
    /// Each selected column contiguous, column after column.
    ColumnMajor,
}

/// Transpose `data` (n elements × `width` bytes) into `out`:
/// `out[c*n + i] = data[i*width + c]` (Blosc-style byte shuffle).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `width` or the buffer
/// lengths differ.
pub fn shuffle_into(tier: KernelTier, data: &[u8], width: usize, out: &mut [u8]) {
    assert!(width > 0 && data.len().is_multiple_of(width));
    assert_eq!(out.len(), data.len());
    if width <= 8 {
        const COLS: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
        partition2(
            tier,
            data,
            width,
            &COLS[..width],
            StreamLayout::ColumnMajor,
            out,
            &[],
            &mut [],
        );
    } else {
        let cols: Vec<usize> = (0..width).collect();
        partition2(
            tier,
            data,
            width,
            &cols,
            StreamLayout::ColumnMajor,
            out,
            &[],
            &mut [],
        );
    }
}

/// Inverse of [`shuffle_into`]: `out[i*width + c] = data[c*n + i]`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `width` or the buffer
/// lengths differ.
pub fn unshuffle_into(tier: KernelTier, data: &[u8], width: usize, out: &mut [u8]) {
    assert!(width > 0 && data.len().is_multiple_of(width));
    assert_eq!(out.len(), data.len());
    if width <= 8 {
        const COLS: [usize; 8] = [0, 1, 2, 3, 4, 5, 6, 7];
        reassemble2(
            tier,
            data,
            &COLS[..width],
            StreamLayout::ColumnMajor,
            &[],
            &[],
            width,
            out,
        );
    } else {
        let cols: Vec<usize> = (0..width).collect();
        reassemble2(
            tier,
            data,
            &cols,
            StreamLayout::ColumnMajor,
            &[],
            &[],
            width,
            out,
        );
    }
}

/// Fused two-stream column gather — one pass over `data` (n elements ×
/// `width` bytes) distributing columns to two destinations.
///
/// Stream A (`a_cols` → `a_dst`, `a_layout`) is the solver-facing C
/// stream; stream B (`b_cols` → `b_dst`) is always column-major (the
/// verbatim I stream). Either column set may be empty. Column indices
/// must be in range and each destination exactly `n * cols.len()`
/// bytes.
///
/// # Panics
///
/// Panics on inconsistent buffer shapes.
#[allow(clippy::too_many_arguments)] // two (cols, layout, dst) streams + shape; a params struct would obscure the symmetry with reassemble2
pub fn partition2(
    tier: KernelTier,
    data: &[u8],
    width: usize,
    a_cols: &[usize],
    a_layout: StreamLayout,
    a_dst: &mut [u8],
    b_cols: &[usize],
    b_dst: &mut [u8],
) {
    assert!(width > 0 && data.len().is_multiple_of(width));
    let n = data.len() / width;
    assert_eq!(a_dst.len(), n * a_cols.len());
    assert_eq!(b_dst.len(), n * b_cols.len());
    assert!(a_cols.iter().chain(b_cols).all(|&c| c < width));
    if n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if matches!(tier, KernelTier::Sse2 | KernelTier::Avx2) && (2..=8).contains(&width) {
        // SAFETY: buffer shapes asserted above; the kernel keeps every
        // 8/16-byte access within the slack rows it computes.
        unsafe { x86::partition2(data, width, a_cols, a_layout, a_dst, b_cols, b_dst) };
        return;
    }
    let _ = tier;
    scalar_partition2(data, width, a_cols, a_layout, a_dst, b_cols, b_dst, 0);
}

/// Inverse of [`partition2`]: rebuild rows from the two streams.
///
/// Bytes of columns in neither `a_cols` nor `b_cols` end up with
/// **unspecified** contents (the SIMD path stores whole rows) — callers
/// must list every column they care about. The pipeline always covers
/// all of them: C ∪ I is the full element.
///
/// # Panics
///
/// Panics on inconsistent buffer shapes.
#[allow(clippy::too_many_arguments)]
pub fn reassemble2(
    tier: KernelTier,
    a_src: &[u8],
    a_cols: &[usize],
    a_layout: StreamLayout,
    b_src: &[u8],
    b_cols: &[usize],
    width: usize,
    out: &mut [u8],
) {
    assert!(width > 0 && out.len().is_multiple_of(width));
    let n = out.len() / width;
    assert_eq!(a_src.len(), n * a_cols.len());
    assert_eq!(b_src.len(), n * b_cols.len());
    assert!(a_cols.iter().chain(b_cols).all(|&c| c < width));
    if n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if matches!(tier, KernelTier::Sse2 | KernelTier::Avx2) && (2..=8).contains(&width) {
        // SAFETY: buffer shapes asserted above; slack rows bound every
        // wide access, and the row stores may only clobber columns the
        // contract already declares unspecified.
        unsafe { x86::reassemble2(a_src, a_cols, a_layout, b_src, b_cols, width, out) };
        return;
    }
    let _ = tier;
    scalar_reassemble2(a_src, a_cols, a_layout, b_src, b_cols, width, out, 0);
}

/// Elements per scalar block: keeps ~BLOCK × width source bytes
/// L1-resident while each output column streams through it.
const BLOCK: usize = 1024;

/// Scalar oracle for [`partition2`], processing rows `from..n` (the
/// SIMD kernels reuse it for their remainder tails).
#[allow(clippy::too_many_arguments)]
fn scalar_partition2(
    data: &[u8],
    width: usize,
    a_cols: &[usize],
    a_layout: StreamLayout,
    a_dst: &mut [u8],
    b_cols: &[usize],
    b_dst: &mut [u8],
    from: usize,
) {
    let n = data.len() / width;
    let k = a_cols.len();
    let mut start = from;
    while start < n {
        let m = (n - start).min(BLOCK);
        let src = &data[start * width..(start + m) * width];
        match a_layout {
            // chunks_exact_mut(0) would panic on an empty column set.
            StreamLayout::RowMajor if k > 0 => {
                let dst = &mut a_dst[start * k..(start + m) * k];
                for (row, out) in src.chunks_exact(width).zip(dst.chunks_exact_mut(k)) {
                    for (o, &c) in out.iter_mut().zip(a_cols) {
                        *o = row[c];
                    }
                }
            }
            StreamLayout::RowMajor => {}
            StreamLayout::ColumnMajor => {
                for (j, &c) in a_cols.iter().enumerate() {
                    let dst = &mut a_dst[j * n + start..j * n + start + m];
                    for (o, row) in dst.iter_mut().zip(src.chunks_exact(width)) {
                        *o = row[c];
                    }
                }
            }
        }
        for (j, &c) in b_cols.iter().enumerate() {
            let dst = &mut b_dst[j * n + start..j * n + start + m];
            for (o, row) in dst.iter_mut().zip(src.chunks_exact(width)) {
                *o = row[c];
            }
        }
        start += m;
    }
}

/// Scalar oracle for [`reassemble2`], processing rows `from..n`.
#[allow(clippy::too_many_arguments)]
fn scalar_reassemble2(
    a_src: &[u8],
    a_cols: &[usize],
    a_layout: StreamLayout,
    b_src: &[u8],
    b_cols: &[usize],
    width: usize,
    out: &mut [u8],
    from: usize,
) {
    let n = out.len() / width;
    let k = a_cols.len();
    let mut start = from;
    while start < n {
        let m = (n - start).min(BLOCK);
        let dst = &mut out[start * width..(start + m) * width];
        match a_layout {
            StreamLayout::RowMajor if k > 0 => {
                let src = &a_src[start * k..(start + m) * k];
                for (row, element) in dst.chunks_exact_mut(width).zip(src.chunks_exact(k)) {
                    for (&b, &c) in element.iter().zip(a_cols) {
                        row[c] = b;
                    }
                }
            }
            StreamLayout::RowMajor => {}
            StreamLayout::ColumnMajor => {
                for (j, &c) in a_cols.iter().enumerate() {
                    let src = &a_src[j * n + start..j * n + start + m];
                    for (row, &b) in dst.chunks_exact_mut(width).zip(src) {
                        row[c] = b;
                    }
                }
            }
        }
        for (j, &c) in b_cols.iter().enumerate() {
            let src = &b_src[j * n + start..j * n + start + m];
            for (row, &b) in dst.chunks_exact_mut(width).zip(src) {
                row[c] = b;
            }
        }
        start += m;
    }
}

/// Number of leading rows `r` (stride `stride`) for which an 8-byte
/// access at `r * stride` stays inside a `len`-byte buffer.
#[cfg(target_arch = "x86_64")]
fn rows_with_slack(len: usize, stride: usize) -> usize {
    if len < 8 {
        0
    } else {
        (len - 8) / stride + 1
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{rows_with_slack, scalar_partition2, scalar_reassemble2, StreamLayout};
    use std::arch::x86_64::*;

    /// Transpose 16 rows of `stride` bytes (reading 8 bytes per row;
    /// bytes past the row width land in ignored high columns) into 8
    /// column registers of 16 bytes each.
    ///
    /// # Safety
    ///
    /// `src .. src + 15*stride + 8` must be readable.
    #[inline(always)]
    pub unsafe fn load16x8(src: *const u8, stride: usize) -> [__m128i; 8] {
        let row = |r: usize| -> __m128i {
            // SAFETY: caller guarantees 8 readable bytes at every row.
            unsafe { _mm_loadl_epi64(src.add(r * stride) as *const __m128i) }
        };
        // Round 1 (bytes): t[k] = columns of rows 2k, 2k+1 interleaved.
        let t0 = _mm_unpacklo_epi8(row(0), row(1));
        let t1 = _mm_unpacklo_epi8(row(2), row(3));
        let t2 = _mm_unpacklo_epi8(row(4), row(5));
        let t3 = _mm_unpacklo_epi8(row(6), row(7));
        let t4 = _mm_unpacklo_epi8(row(8), row(9));
        let t5 = _mm_unpacklo_epi8(row(10), row(11));
        let t6 = _mm_unpacklo_epi8(row(12), row(13));
        let t7 = _mm_unpacklo_epi8(row(14), row(15));
        // Round 2 (words): one dword = one column over four rows.
        let u0 = _mm_unpacklo_epi16(t0, t1); // cols 0-3 × rows 0-3
        let u1 = _mm_unpackhi_epi16(t0, t1); // cols 4-7 × rows 0-3
        let u2 = _mm_unpacklo_epi16(t2, t3); // cols 0-3 × rows 4-7
        let u3 = _mm_unpackhi_epi16(t2, t3); // cols 4-7 × rows 4-7
        let u4 = _mm_unpacklo_epi16(t4, t5); // cols 0-3 × rows 8-11
        let u5 = _mm_unpackhi_epi16(t4, t5); // cols 4-7 × rows 8-11
        let u6 = _mm_unpacklo_epi16(t6, t7); // cols 0-3 × rows 12-15
        let u7 = _mm_unpackhi_epi16(t6, t7); // cols 4-7 × rows 12-15
                                             // Round 3 (dwords): one qword = one column over eight rows.
        let v0 = _mm_unpacklo_epi32(u0, u2); // cols 0,1 × rows 0-7
        let v1 = _mm_unpackhi_epi32(u0, u2); // cols 2,3 × rows 0-7
        let v2 = _mm_unpacklo_epi32(u1, u3); // cols 4,5 × rows 0-7
        let v3 = _mm_unpackhi_epi32(u1, u3); // cols 6,7 × rows 0-7
        let v4 = _mm_unpacklo_epi32(u4, u6); // cols 0,1 × rows 8-15
        let v5 = _mm_unpackhi_epi32(u4, u6); // cols 2,3 × rows 8-15
        let v6 = _mm_unpacklo_epi32(u5, u7); // cols 4,5 × rows 8-15
        let v7 = _mm_unpackhi_epi32(u5, u7); // cols 6,7 × rows 8-15
                                             // Round 4 (qwords): full 16-row columns.
        [
            _mm_unpacklo_epi64(v0, v4),
            _mm_unpackhi_epi64(v0, v4),
            _mm_unpacklo_epi64(v1, v5),
            _mm_unpackhi_epi64(v1, v5),
            _mm_unpacklo_epi64(v2, v6),
            _mm_unpackhi_epi64(v2, v6),
            _mm_unpacklo_epi64(v3, v7),
            _mm_unpackhi_epi64(v3, v7),
        ]
    }

    /// Inverse of [`load16x8`]: write 16 rows of `width` bytes from 8
    /// column registers. Rows are stored with 8-byte (width < 8) or
    /// paired 16-byte (width == 8) stores in ascending order, so
    /// narrower rows transiently overrun into the next row and are
    /// fixed by the following store.
    ///
    /// # Safety
    ///
    /// `dst .. dst + 15*width + 8` must be writable (for width == 8
    /// that bound equals the full 128-byte block plus nothing).
    #[inline(always)]
    pub unsafe fn store16x8(cols: &[__m128i; 8], dst: *mut u8, width: usize) {
        // Round 1 (bytes): a/b = two columns over rows 0-7 / 8-15.
        let a0 = _mm_unpacklo_epi8(cols[0], cols[1]);
        let b0 = _mm_unpackhi_epi8(cols[0], cols[1]);
        let a1 = _mm_unpacklo_epi8(cols[2], cols[3]);
        let b1 = _mm_unpackhi_epi8(cols[2], cols[3]);
        let a2 = _mm_unpacklo_epi8(cols[4], cols[5]);
        let b2 = _mm_unpackhi_epi8(cols[4], cols[5]);
        let a3 = _mm_unpacklo_epi8(cols[6], cols[7]);
        let b3 = _mm_unpackhi_epi8(cols[6], cols[7]);
        // Round 2 (words): one dword = cols 0-3 (or 4-7) of one row.
        let x0 = _mm_unpacklo_epi16(a0, a1); // rows 0-3  × cols 0-3
        let x1 = _mm_unpackhi_epi16(a0, a1); // rows 4-7  × cols 0-3
        let x2 = _mm_unpacklo_epi16(a2, a3); // rows 0-3  × cols 4-7
        let x3 = _mm_unpackhi_epi16(a2, a3); // rows 4-7  × cols 4-7
        let y0 = _mm_unpacklo_epi16(b0, b1); // rows 8-11 × cols 0-3
        let y1 = _mm_unpackhi_epi16(b0, b1); // rows 12-15 × cols 0-3
        let y2 = _mm_unpacklo_epi16(b2, b3); // rows 8-11 × cols 4-7
        let y3 = _mm_unpackhi_epi16(b2, b3); // rows 12-15 × cols 4-7
                                             // Round 3 (dwords): each register = two complete 8-byte rows.
        let pairs = [
            _mm_unpacklo_epi32(x0, x2), // rows 0,1
            _mm_unpackhi_epi32(x0, x2), // rows 2,3
            _mm_unpacklo_epi32(x1, x3), // rows 4,5
            _mm_unpackhi_epi32(x1, x3), // rows 6,7
            _mm_unpacklo_epi32(y0, y2), // rows 8,9
            _mm_unpackhi_epi32(y0, y2), // rows 10,11
            _mm_unpacklo_epi32(y1, y3), // rows 12,13
            _mm_unpackhi_epi32(y1, y3), // rows 14,15
        ];
        if width == 8 {
            for (p, pair) in pairs.iter().enumerate() {
                // SAFETY: rows are contiguous at width 8, so each pair
                // store covers exactly rows 2p and 2p+1.
                unsafe { _mm_storeu_si128(dst.add(p * 16) as *mut __m128i, *pair) };
            }
        } else {
            for (p, pair) in pairs.iter().enumerate() {
                // SAFETY: caller guarantees 8 writable bytes at every
                // row start; ascending order repairs the overrun.
                unsafe {
                    _mm_storel_epi64(dst.add(2 * p * width) as *mut __m128i, *pair);
                    _mm_storel_epi64(
                        dst.add((2 * p + 1) * width) as *mut __m128i,
                        _mm_unpackhi_epi64(*pair, *pair),
                    );
                }
            }
        }
    }

    /// # Safety
    ///
    /// Caller must have asserted the [`super::partition2`] buffer-shape
    /// contract; width must be 2..=8.
    pub unsafe fn partition2(
        data: &[u8],
        width: usize,
        a_cols: &[usize],
        a_layout: StreamLayout,
        a_dst: &mut [u8],
        b_cols: &[usize],
        b_dst: &mut [u8],
    ) {
        let n = data.len() / width;
        let k = a_cols.len();
        let mut safe = rows_with_slack(data.len(), width).min(n);
        if a_layout == StreamLayout::RowMajor && k > 0 && k < 8 {
            safe = safe.min(rows_with_slack(a_dst.len(), k));
        }
        let blocks = safe / 16;
        for blk in 0..blocks {
            let r0 = blk * 16;
            // SAFETY: r0 + 15 < safe, so every row load has 8 bytes of
            // slack; column stores of 16 bytes end at r0 + 16 <= n.
            unsafe {
                let cols = load16x8(data.as_ptr().add(r0 * width), width);
                match a_layout {
                    StreamLayout::ColumnMajor => {
                        for (j, &c) in a_cols.iter().enumerate() {
                            _mm_storeu_si128(
                                a_dst.as_mut_ptr().add(j * n + r0) as *mut __m128i,
                                cols[c],
                            );
                        }
                    }
                    StreamLayout::RowMajor => {
                        if k > 0 {
                            let mut sub = [_mm_setzero_si128(); 8];
                            for (j, &c) in a_cols.iter().enumerate() {
                                sub[j] = cols[c];
                            }
                            store16x8(&sub, a_dst.as_mut_ptr().add(r0 * k), k);
                        }
                    }
                }
                for (j, &c) in b_cols.iter().enumerate() {
                    _mm_storeu_si128(b_dst.as_mut_ptr().add(j * n + r0) as *mut __m128i, cols[c]);
                }
            }
        }
        scalar_partition2(
            data,
            width,
            a_cols,
            a_layout,
            a_dst,
            b_cols,
            b_dst,
            blocks * 16,
        );
    }

    /// # Safety
    ///
    /// Caller must have asserted the [`super::reassemble2`]
    /// buffer-shape contract; width must be 2..=8.
    pub unsafe fn reassemble2(
        a_src: &[u8],
        a_cols: &[usize],
        a_layout: StreamLayout,
        b_src: &[u8],
        b_cols: &[usize],
        width: usize,
        out: &mut [u8],
    ) {
        let n = out.len() / width;
        let k = a_cols.len();
        let mut safe = rows_with_slack(out.len(), width).min(n);
        if a_layout == StreamLayout::RowMajor && k > 0 {
            safe = safe.min(rows_with_slack(a_src.len(), k));
        }
        let blocks = safe / 16;
        for blk in 0..blocks {
            let r0 = blk * 16;
            // SAFETY: r0 + 15 < safe bounds the strided loads and row
            // stores; 16-byte column loads end at r0 + 16 <= n.
            unsafe {
                let mut cols = [_mm_setzero_si128(); 8];
                match a_layout {
                    StreamLayout::ColumnMajor => {
                        for (j, &c) in a_cols.iter().enumerate() {
                            cols[c] =
                                _mm_loadu_si128(a_src.as_ptr().add(j * n + r0) as *const __m128i);
                        }
                    }
                    StreamLayout::RowMajor => {
                        if k > 0 {
                            let rows = load16x8(a_src.as_ptr().add(r0 * k), k);
                            for (j, &c) in a_cols.iter().enumerate() {
                                cols[c] = rows[j];
                            }
                        }
                    }
                }
                for (j, &c) in b_cols.iter().enumerate() {
                    cols[c] = _mm_loadu_si128(b_src.as_ptr().add(j * n + r0) as *const __m128i);
                }
                store16x8(&cols, out.as_mut_ptr().add(r0 * width), width);
            }
        }
        scalar_reassemble2(
            a_src,
            a_cols,
            a_layout,
            b_src,
            b_cols,
            width,
            out,
            blocks * 16,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testable_tiers;

    fn pattern(len: usize) -> Vec<u8> {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect()
    }

    fn naive_shuffle(data: &[u8], width: usize) -> Vec<u8> {
        let n = data.len() / width;
        let mut out = vec![0u8; data.len()];
        for i in 0..n {
            for c in 0..width {
                out[c * n + i] = data[i * width + c];
            }
        }
        out
    }

    #[test]
    fn shuffle_matches_naive_across_tiers_widths_lengths() {
        for tier in testable_tiers() {
            for width in [1usize, 2, 3, 4, 5, 7, 8, 12, 16] {
                for n in [0usize, 1, 2, 15, 16, 17, 31, 100, 1000] {
                    let data = pattern(n * width);
                    let mut out = vec![0u8; data.len()];
                    shuffle_into(tier, &data, width, &mut out);
                    assert_eq!(out, naive_shuffle(&data, width), "{tier} w{width} n{n}");
                    let mut back = vec![0u8; data.len()];
                    unshuffle_into(tier, &out, width, &mut back);
                    assert_eq!(back, data, "{tier} w{width} n{n} inverse");
                }
            }
        }
    }

    #[test]
    fn partition2_round_trips_both_layouts() {
        let width = 8usize;
        let a_cols = [0usize, 2, 5];
        let b_cols = [1usize, 3, 4, 6, 7];
        for tier in testable_tiers() {
            for layout in [StreamLayout::RowMajor, StreamLayout::ColumnMajor] {
                for n in [0usize, 1, 15, 16, 33, 500] {
                    let data = pattern(n * width);
                    let mut a = vec![0u8; n * a_cols.len()];
                    let mut b = vec![0u8; n * b_cols.len()];
                    partition2(tier, &data, width, &a_cols, layout, &mut a, &b_cols, &mut b);
                    let mut back = vec![0u8; data.len()];
                    reassemble2(tier, &a, &a_cols, layout, &b, &b_cols, width, &mut back);
                    assert_eq!(back, data, "{tier} {layout:?} n{n}");
                }
            }
        }
    }

    #[test]
    fn partition2_matches_scalar_reference() {
        let width = 5usize;
        let a_cols = [4usize, 0];
        let b_cols = [1usize, 2, 3];
        let n = 777usize;
        let data = pattern(n * width);
        let mut want_a = vec![0u8; n * a_cols.len()];
        let mut want_b = vec![0u8; n * b_cols.len()];
        partition2(
            KernelTier::Scalar,
            &data,
            width,
            &a_cols,
            StreamLayout::RowMajor,
            &mut want_a,
            &b_cols,
            &mut want_b,
        );
        for tier in testable_tiers() {
            let mut got_a = vec![0xEE; n * a_cols.len()];
            let mut got_b = vec![0xEE; n * b_cols.len()];
            partition2(
                tier,
                &data,
                width,
                &a_cols,
                StreamLayout::RowMajor,
                &mut got_a,
                &b_cols,
                &mut got_b,
            );
            assert_eq!(got_a, want_a, "{tier} A stream");
            assert_eq!(got_b, want_b, "{tier} B stream");
        }
    }

    #[test]
    fn empty_column_sets_are_fine() {
        for tier in testable_tiers() {
            let data = pattern(64 * 4);
            let mut all = vec![0u8; data.len()];
            partition2(
                tier,
                &data,
                4,
                &[],
                StreamLayout::RowMajor,
                &mut [],
                &[0, 1, 2, 3],
                &mut all,
            );
            let mut back = vec![0u8; data.len()];
            reassemble2(
                tier,
                &[],
                &[],
                StreamLayout::RowMajor,
                &all,
                &[0, 1, 2, 3],
                4,
                &mut back,
            );
            assert_eq!(back, data, "{tier}");
        }
    }

    #[test]
    #[should_panic]
    fn misaligned_shuffle_panics() {
        let mut out = vec![0u8; 10];
        shuffle_into(KernelTier::Scalar, &[0u8; 10], 4, &mut out);
    }
}
