//! Figure 1 — bit frequencies of four representative datasets.
//!
//! For xgc_igid, gts_chkp_zeon, flash_gamc and msg_sppm: the
//! probability of the dominant bit value at each of the 64 bit
//! positions (big-endian element order, as the paper plots them).
//! Printed as an ASCII profile plus the raw series.

use isobar_bench::*;
use isobar_datasets::{bitfreq, catalog};

const DATASETS: [&str; 4] = ["xgc_igid", "gts_chkp_zeon", "flash_gamc", "msg_sppm"];

fn main() {
    banner("Figure 1: bit frequencies of 4 representative datasets");
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let freqs = bitfreq::bit_frequencies(&ds.bytes, ds.width());
        println!("{name} (bit 1 = MSB/sign ... bit {}):", freqs.len());

        // ASCII profile: one character per bit, '█' = certain, '·' = coin flip.
        let profile: String = freqs
            .iter()
            .map(|&p| match p {
                p if p >= 0.995 => '█',
                p if p >= 0.9 => '▓',
                p if p >= 0.7 => '▒',
                p if p >= 0.55 => '░',
                _ => '·',
            })
            .collect();
        println!("  [{profile}]");

        // Raw series, 16 per line.
        for (i, chunk) in freqs.chunks(16).enumerate() {
            let row: Vec<String> = chunk.iter().map(|p| format!("{p:.3}")).collect();
            println!(
                "  bits {:>2}-{:>2}: {}",
                i * 16 + 1,
                i * 16 + chunk.len(),
                row.join(" ")
            );
        }
        let noise = bitfreq::noise_bit_fraction(&ds.bytes, ds.width(), 0.02);
        println!("  coin-flip bits: {:.1}%", noise * 100.0);
        println!();
    }
    println!("paper shape: xgc_igid / gts / flash have wide 0.5-probability plateaus");
    println!("(hard-to-compress); msg_sppm stays near 1.0 across most positions.");
}
