//! Property tests for the floating-point baselines.
//!
//! Losslessness must hold for *every* bit pattern, including NaNs with
//! arbitrary payloads, infinities, and denormals — checkpoint/restart
//! data (the paper's motivating workload) cannot tolerate a single
//! changed bit.

use isobar_float_codecs::fpc::Fpc;
use isobar_float_codecs::fpzip::{map_f64, unmap_f64, FpzipLike};
use isobar_float_codecs::lorenzo::Dims;
use proptest::prelude::*;

/// Arbitrary f64 bit patterns: uniform bits, smooth series, and
/// clustered exponents (the scientific-data regime).
fn f64_streams() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>(), 0..512),
        (
            0.0f64..1000.0,
            proptest::collection::vec(-1.0f64..1.0, 0..512)
        )
            .prop_map(|(start, deltas)| {
                let mut acc = start;
                deltas
                    .into_iter()
                    .map(|d| {
                        acc += d;
                        acc.to_bits()
                    })
                    .collect()
            }),
        proptest::collection::vec((0u64..4096).prop_map(|m| (1023u64 << 52) | m), 0..512),
    ]
}

fn to_bytes(bits: &[u64]) -> Vec<u8> {
    bits.iter().flat_map(|b| b.to_le_bytes()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpc_round_trips(bits in f64_streams(), table_bits in 4u32..18) {
        let codec = Fpc::new(table_bits);
        let data = to_bytes(&bits);
        let packed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn fpzip_round_trips_1d(bits in f64_streams()) {
        let codec = FpzipLike;
        let data = to_bytes(&bits);
        let packed = codec.compress_f64(&data, Dims::linear(bits.len())).unwrap();
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn fpzip_round_trips_2d(bits in f64_streams(), nx in 1usize..16) {
        // Truncate to a whole number of rows.
        let rows = bits.len() / nx;
        let bits = &bits[..rows * nx];
        let codec = FpzipLike;
        let data = to_bytes(bits);
        let packed = codec.compress_f64(&data, Dims::grid2(nx, rows)).unwrap();
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn fpzip_round_trips_f32(words in proptest::collection::vec(any::<u32>(), 0..512)) {
        let codec = FpzipLike;
        let data: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let packed = codec.compress_f32(&data, Dims::linear(words.len())).unwrap();
        prop_assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn f64_mapping_is_an_order_isomorphism(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(unmap_f64(map_f64(a)), a);
        // Monotone over the total order of floats-by-bits-with-sign-fix:
        // compare as the mapped integers and as "sign-magnitude" order.
        let key = |bits: u64| -> i128 {
            let sign = bits >> 63;
            let mag = (bits & ((1 << 63) - 1)) as i128;
            if sign == 1 { -mag - 1 } else { mag }
        };
        prop_assert_eq!(map_f64(a).cmp(&map_f64(b)), key(a).cmp(&key(b)));
    }

    #[test]
    fn fpc_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Fpc::default().decompress(&data);
    }
}
