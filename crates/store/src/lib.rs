#![warn(missing_docs)]

//! In-situ checkpoint store built on ISOBAR-compress.
//!
//! The paper motivates ISOBAR with checkpoint/restart pipelines: a
//! simulation periodically dumps named variables (density, potential,
//! particle phase, …) and must write them faster than the file system
//! can absorb raw data — losslessly, because a perturbed restart
//! diverges. This crate provides the minimal storage substrate that
//! workflow needs, in the spirit of the ADIOS ecosystem the paper's
//! authors work in:
//!
//! * [`StoreWriter`] — append variables step by step; each variable is
//!   compressed through the full ISOBAR pipeline as it is written, and
//!   committed crash-consistently (shadow file + fsync + atomic
//!   rename; see the [`writer`](StoreWriter) docs).
//! * [`StoreReader`] — random access by `(step, variable)` without
//!   touching unrelated data, via a checksummed index at the end of
//!   the file. Integrity verification is on by default.
//! * [`fsck_store`] / [`salvage_store`] — damage reporting and
//!   best-effort recovery of intact records from a damaged store.
//! * [`ShardedStoreWriter`] — the version-3 *directory* store: N
//!   independent segment pipelines (codec thread + I/O thread each, so
//!   compression overlaps `fdatasync`), committed by a two-phase
//!   manifest rename. Read back transparently by [`StoreReader`], which
//!   serves random access via positioned reads (`pread`).
//! * [`compact_store`] — reclaim superseded entries and sweep
//!   unreferenced segment files from a version-3 store.
//!
//! # File format (all little-endian)
//!
//! ```text
//! magic "ISST" | version u8            (2 current, 1 legacy)
//! repeated records:
//!   name_len u16 | name bytes | step u32 | width u8 |
//!   container_len u64 | ISOBAR container
//! index (written at close):
//!   per entry: name_len u16 | name | step u32 | width u8 |
//!              offset u64 | container_len u64 | raw_len u64 |
//!              container_xxh64 u64            (v2 only)
//! trailer: index_offset u64 | entry_count u32 |
//!          index_xxh64 u64 |                  (v2 only)
//!          magic "ISSX"
//! ```
//!
//! Version-1 stores (no checksums, 16-byte trailer) are still read;
//! their entries surface `checksum == 0` and are reported by fsck as
//! "legacy, unverifiable".
//!
//! # Directory format (version 3)
//!
//! A version-3 store is a *directory*: a `MANIFEST` file (magic
//! `"ISSM"`) holding the segment table and the full index, plus one or
//! more segment files `g<generation>-s<shard>.seg` (magic `"ISSG"`)
//! each carrying the same record grammar as above behind an 8-byte
//! header and ahead of a checksummed 24-byte trailer. Writers append a
//! *generation*: new segments plus a rewritten manifest, committed by
//! the atomic rename of `MANIFEST.wip` over `MANIFEST`. Duplicate
//! `(step, variable)` pairs are allowed across generations — the
//! latest wins, and [`compact_store`] reclaims the shadowed versions.
//! See `docs/FORMAT.md` for the byte-level grammar.
//!
//! # Example
//!
//! ```no_run
//! use isobar_store::{StoreReader, StoreWriter};
//! use isobar::{IsobarOptions, Preference};
//!
//! # fn demo(density: &[u8], potential: &[u8]) -> Result<(), isobar_store::StoreError> {
//! let mut writer = StoreWriter::create("run.isst", IsobarOptions {
//!     preference: Preference::Speed,
//!     ..Default::default()
//! })?;
//! writer.put(0, "density", density, 8)?;
//! writer.put(0, "potential", potential, 8)?;
//! writer.close()?;
//!
//! let reader = StoreReader::open("run.isst")?;
//! let restored = reader.get(0, "density")?;
//! assert_eq!(restored, density);
//! # Ok(()) }
//! ```

mod compact;
mod error;
mod format;
mod manifest;
mod pipelined;
mod reader;
mod salvage;
mod sharded;
mod vfs;
mod writer;

pub use compact::{compact_store, compact_store_background, compact_store_recorded, CompactReport};
pub use error::StoreError;
pub use format::{
    entry_checksum, is_segment_file_name, segment_file_name, trailer_len, IndexEntry,
    CHECKSUM_SEED, LEGACY_VERSION, MAGIC, MANIFEST_FILE, MANIFEST_HEADER_LEN, MANIFEST_MAGIC,
    MANIFEST_TRAILER_LEN, MANIFEST_TRAILER_MAGIC, MIN_ENTRY_LEN, SEGMENT_HEADER_LEN, SEGMENT_MAGIC,
    SEGMENT_TRAILER_LEN, SEGMENT_TRAILER_MAGIC, TRAILER_LEN, TRAILER_MAGIC, TRAILER_V1_LEN,
    V3_VERSION, VERSION,
};
pub use manifest::{
    decode_segment_header, decode_segment_trailer, encode_segment_header, encode_segment_trailer,
    Manifest, ManifestEntry, SegmentMeta,
};
pub use pipelined::{PipelinedStoreWriter, PipelinedWorkerError};
pub use reader::StoreReader;
pub use salvage::{
    fsck_store, salvage_store, EntryHealth, EntryStatus, StoreFsckReport, StoreSalvageReport,
};
pub use sharded::{ShardedCommitReport, ShardedOptions, ShardedStoreWriter};
pub use vfs::{RealFile, RealFs, StoreFile, StoreFs};
pub use writer::{wip_path, StoreWriter};
