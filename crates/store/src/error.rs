//! Store error type.

use isobar::IsobarError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the checkpoint store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a store, or its structure is damaged.
    Corrupt(&'static str),
    /// A requested `(step, variable)` pair does not exist.
    NotFound {
        /// Requested time step.
        step: u32,
        /// Requested variable name.
        name: String,
    },
    /// The embedded ISOBAR container failed to decode.
    Isobar(IsobarError),
    /// An embedded integrity checksum did not match the bytes it
    /// covers — a stored container or the index region.
    ChecksumMismatch {
        /// File offset of the structure that failed verification.
        offset: u64,
        /// The checksum the store claims.
        expected: u64,
        /// The checksum computed over the actual bytes.
        actual: u64,
    },
    /// A variable name exceeds the 64 KiB format limit.
    NameTooLong(usize),
    /// The same `(step, variable)` was written twice.
    Duplicate {
        /// Time step of the collision.
        step: u32,
        /// Variable name of the collision.
        name: String,
    },
}

impl StoreError {
    /// Whether this error is an integrity-checksum mismatch — damage
    /// detection, as opposed to structural corruption or I/O failure.
    pub fn is_checksum_mismatch(&self) -> bool {
        matches!(self, StoreError::ChecksumMismatch { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::NotFound { step, name } => {
                write!(f, "no variable '{name}' at step {step}")
            }
            StoreError::Isobar(e) => write!(f, "store payload error: {e}"),
            StoreError::ChecksumMismatch {
                offset,
                expected,
                actual,
            } => write!(
                f,
                "store checksum mismatch at byte offset {offset}: \
                 stored {expected:#018x}, computed {actual:#018x}"
            ),
            StoreError::NameTooLong(len) => {
                write!(
                    f,
                    "variable name of {len} bytes exceeds the 65535-byte limit"
                )
            }
            StoreError::Duplicate { step, name } => {
                write!(f, "variable '{name}' already written at step {step}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Isobar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<IsobarError> for StoreError {
    fn from(e: IsobarError) -> Self {
        StoreError::Isobar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::NotFound {
            step: 7,
            name: "density".into(),
        };
        assert!(e.to_string().contains("density"));
        assert!(e.to_string().contains('7'));
        assert!(StoreError::NameTooLong(70_000)
            .to_string()
            .contains("70000"));
    }

    #[test]
    fn checksum_mismatch_is_detectable_and_descriptive() {
        let e = StoreError::ChecksumMismatch {
            offset: 42,
            expected: 1,
            actual: 2,
        };
        assert!(e.is_checksum_mismatch());
        assert!(e.to_string().contains("offset 42"));
        assert!(!StoreError::Corrupt("x").is_checksum_mismatch());
    }

    #[test]
    fn sources_are_chained() {
        let e: StoreError = IsobarError::Truncated.into();
        assert!(Error::source(&e).is_some());
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(Error::source(&e).is_some());
    }
}
