//! FPC: high-speed compressor for double-precision floating-point data.
//!
//! Reimplementation of Burtscher & Ratanaworabhan's FPC (*FPC: A
//! High-Speed Compressor for Double-Precision Floating-Point Data*,
//! IEEE ToC 2009). Each double is predicted twice — by an FCM
//! (finite-context-method) table and a DFCM (differential FCM) table —
//! the closer prediction is XORed with the true value, and the residual
//! is stored as a 4-bit header (1 predictor-select bit + 3 bits of
//! leading-zero-byte count) plus its nonzero bytes. Two headers pack
//! into one byte, exactly as in the original.
//!
//! FPC's hash constants and update rules are reproduced verbatim: the
//! FCM hash folds in the top 16 bits of each value
//! (`h = (h << 6) ^ (v >> 48)`), the DFCM hash folds in the top 24 bits
//! of each delta (`h = (h << 2) ^ (Δ >> 40)`).

use std::error::Error;
use std::fmt;

/// Errors produced while decoding an FPC stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpcError {
    /// Stream too short or missing the magic tag.
    BadHeader,
    /// The stream ended before all residual bytes were read.
    Truncated,
}

impl fmt::Display for FpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpcError::BadHeader => write!(f, "fpc: bad or missing header"),
            FpcError::Truncated => write!(f, "fpc: truncated stream"),
        }
    }
}

impl Error for FpcError {}

const MAGIC: [u8; 4] = *b"FPC1";

/// The FPC codec. `table_bits` sets the predictor table sizes
/// (`2^table_bits` entries each); the original exposes the same knob as
/// its command-line "level".
///
/// # Example
///
/// ```
/// use isobar_float_codecs::Fpc;
///
/// let values: Vec<f64> = (0..10_000).map(|i| 300.0 + (i as f64).sqrt()).collect();
/// let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
///
/// let fpc = Fpc::default();
/// let packed = fpc.compress(&bytes);
/// assert!(packed.len() < bytes.len());
/// assert_eq!(fpc.decompress(&packed).unwrap(), bytes); // bit-exact
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fpc {
    table_bits: u32,
}

impl Default for Fpc {
    fn default() -> Self {
        // 2^16 entries × 8 bytes × 2 tables = 1 MiB, FPC's mid-range.
        Fpc { table_bits: 16 }
    }
}

/// Shared predictor state, updated identically during compression and
/// decompression.
struct Predictors {
    fcm: Vec<u64>,
    dfcm: Vec<u64>,
    fcm_hash: usize,
    dfcm_hash: usize,
    last: u64,
    mask: usize,
}

impl Predictors {
    fn new(table_bits: u32) -> Self {
        let size = 1usize << table_bits;
        Predictors {
            fcm: vec![0; size],
            dfcm: vec![0; size],
            fcm_hash: 0,
            dfcm_hash: 0,
            last: 0,
            mask: size - 1,
        }
    }

    /// Current predictions: (FCM, DFCM).
    #[inline]
    fn predict(&self) -> (u64, u64) {
        (
            self.fcm[self.fcm_hash],
            self.dfcm[self.dfcm_hash].wrapping_add(self.last),
        )
    }

    /// Fold the true value into both tables and hashes.
    #[inline]
    fn update(&mut self, value: u64) {
        self.fcm[self.fcm_hash] = value;
        self.fcm_hash = ((self.fcm_hash << 6) ^ (value >> 48) as usize) & self.mask;
        let delta = value.wrapping_sub(self.last);
        self.dfcm[self.dfcm_hash] = delta;
        self.dfcm_hash = ((self.dfcm_hash << 2) ^ (delta >> 40) as usize) & self.mask;
        self.last = value;
    }
}

/// Map a leading-zero-byte count (0..=8) to its 3-bit code. A count of
/// exactly 4 is not representable and is encoded as 3 (one extra
/// residual byte) — FPC's original trade-off.
#[inline]
fn lzb_to_code(lzb: u32) -> u32 {
    match lzb {
        0..=3 => lzb,
        4 => 3,
        _ => lzb - 1,
    }
}

/// Inverse of [`lzb_to_code`].
#[inline]
fn code_to_lzb(code: u32) -> u32 {
    if code >= 4 {
        code + 1
    } else {
        code
    }
}

impl Fpc {
    /// Create an FPC codec with `2^table_bits`-entry predictor tables.
    pub fn new(table_bits: u32) -> Self {
        assert!((4..=28).contains(&table_bits));
        Fpc { table_bits }
    }

    /// Compress `data`, interpreted as little-endian `f64` values.
    /// `data.len()` must be a multiple of 8.
    pub fn compress(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len() % 8, 0, "FPC input must be whole doubles");
        let n = data.len() / 8;
        let mut headers = Vec::with_capacity(n.div_ceil(2));
        let mut residuals = Vec::with_capacity(data.len() / 2);
        let mut pred = Predictors::new(self.table_bits);

        let mut nibble_buf = 0u8;
        let mut have_nibble = false;
        for chunk in data.chunks_exact(8) {
            let value = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let (p_fcm, p_dfcm) = pred.predict();
            pred.update(value);

            let x_fcm = value ^ p_fcm;
            let x_dfcm = value ^ p_dfcm;
            // Smaller XOR ⇒ more leading zero bytes; ties go to FCM.
            let (selector, xor) = if x_fcm <= x_dfcm {
                (0u32, x_fcm)
            } else {
                (1u32, x_dfcm)
            };
            let lzb = xor.leading_zeros() / 8;
            let code = lzb_to_code(lzb);
            let nibble = ((selector << 3) | code) as u8;
            if have_nibble {
                headers.push(nibble_buf | (nibble << 4));
                have_nibble = false;
            } else {
                nibble_buf = nibble;
                have_nibble = true;
            }
            let keep = 8 - code_to_lzb(code) as usize;
            residuals.extend_from_slice(&xor.to_le_bytes()[..keep]);
        }
        if have_nibble {
            headers.push(nibble_buf);
        }

        let mut out = Vec::with_capacity(13 + headers.len() + residuals.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.table_bits as u8);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&headers);
        out.extend_from_slice(&residuals);
        out
    }

    /// Decompress a stream produced by [`Fpc::compress`].
    pub fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, FpcError> {
        if data.len() < 13 || data[..4] != MAGIC {
            return Err(FpcError::BadHeader);
        }
        let table_bits = data[4] as u32;
        if !(4..=28).contains(&table_bits) {
            return Err(FpcError::BadHeader);
        }
        // The table-size byte is untrusted and sizes two 8-byte-entry
        // predictor tables (up to 4 GiB at 28 bits). Accept large
        // tables only when the input is itself large enough to have
        // plausibly been compressed with them: a 2^20-entry floor (16
        // MiB of tables) is always allowed, beyond that the table may
        // not exceed 64× the input length.
        if (1usize << table_bits) > (data.len().saturating_mul(64)).max(1 << 20) {
            return Err(FpcError::BadHeader);
        }
        let n = u64::from_le_bytes(data[5..13].try_into().expect("8-byte count")) as usize;
        let header_bytes = n.div_ceil(2);
        if data.len() < 13 + header_bytes {
            return Err(FpcError::Truncated);
        }
        let headers = &data[13..13 + header_bytes];
        let mut residuals = &data[13 + header_bytes..];

        let mut pred = Predictors::new(table_bits);
        let mut out = Vec::with_capacity(n * 8);
        for i in 0..n {
            let nibble = if i % 2 == 0 {
                headers[i / 2] & 0x0f
            } else {
                headers[i / 2] >> 4
            };
            let selector = (nibble >> 3) as u32;
            let code = (nibble & 0x07) as u32;
            let keep = 8 - code_to_lzb(code) as usize;
            if residuals.len() < keep {
                return Err(FpcError::Truncated);
            }
            let mut xor_bytes = [0u8; 8];
            xor_bytes[..keep].copy_from_slice(&residuals[..keep]);
            residuals = &residuals[keep..];
            let xor = u64::from_le_bytes(xor_bytes);

            let (p_fcm, p_dfcm) = pred.predict();
            let value = xor ^ if selector == 0 { p_fcm } else { p_dfcm };
            pred.update(value);
            out.extend_from_slice(&value.to_le_bytes());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let codec = Fpc::default();
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
        packed
    }

    #[test]
    fn lzb_code_mapping_is_consistent() {
        // Every representable count round-trips; 4 degrades to 3.
        for lzb in 0..=8u32 {
            let code = lzb_to_code(lzb);
            assert!(code < 8);
            let back = code_to_lzb(code);
            if lzb == 4 {
                assert_eq!(back, 3);
            } else {
                assert_eq!(back, lzb);
            }
        }
    }

    #[test]
    fn empty_input() {
        round_trip(&[]);
    }

    #[test]
    fn single_value_and_odd_counts() {
        round_trip(&f64_bytes(&[std::f64::consts::PI]));
        round_trip(&f64_bytes(&[1.0, 2.0, 3.0]));
        round_trip(&f64_bytes(&[0.0; 7]));
    }

    #[test]
    fn constant_stream_compresses_extremely_well() {
        let data = f64_bytes(&vec![42.0f64; 10_000]);
        let packed = round_trip(&data);
        // After warm-up the FCM predicts exactly: ~0.5 bytes/value.
        assert!(
            packed.len() < data.len() / 10,
            "{} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn smooth_ramp_is_predicted_by_dfcm() {
        // A constant stride is exactly what DFCM captures.
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let data = f64_bytes(&values);
        let packed = round_trip(&data);
        assert!(
            packed.len() < data.len() / 2,
            "{} -> {}",
            data.len(),
            packed.len()
        );
    }

    #[test]
    fn random_data_round_trips_with_bounded_expansion() {
        let mut state = 99u64;
        let values: Vec<u64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state
            })
            .collect();
        let data: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let packed = round_trip(&data);
        // Worst case: full 8 residual bytes + half a header byte per value.
        assert!(packed.len() <= data.len() + data.len() / 16 + 16);
    }

    #[test]
    fn special_floats_round_trip() {
        round_trip(&f64_bytes(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
        ]));
    }

    #[test]
    fn table_size_changes_format_compatibly() {
        let values: Vec<f64> = (0..2000).map(|i| (i as f64).sqrt()).collect();
        let data = f64_bytes(&values);
        for bits in [8u32, 12, 16, 20] {
            let codec = Fpc::new(bits);
            let packed = codec.compress(&data);
            // The stream self-describes its table size.
            assert_eq!(
                Fpc::default().decompress(&packed).unwrap(),
                data,
                "bits {bits}"
            );
        }
    }

    #[test]
    fn truncated_and_corrupt_streams_are_rejected() {
        let codec = Fpc::default();
        let packed = codec.compress(&f64_bytes(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(codec.decompress(&packed[..3]), Err(FpcError::BadHeader));
        assert_eq!(
            codec.decompress(&packed[..packed.len() - 1]),
            Err(FpcError::Truncated)
        );
        let mut bad_magic = packed.clone();
        bad_magic[0] = b'X';
        assert_eq!(codec.decompress(&bad_magic), Err(FpcError::BadHeader));
    }

    #[test]
    #[should_panic(expected = "whole doubles")]
    fn non_multiple_of_eight_is_rejected() {
        Fpc::default().compress(&[1, 2, 3]);
    }
}
