//! Integrity walking (`fsck`) and best-effort recovery (`salvage`).
//!
//! The decode pipeline is strict: the first structural defect or
//! checksum mismatch aborts the whole operation. This module is the
//! permissive counterpart for operators holding damaged media:
//!
//! - [`fsck_container`] / [`fsck_stream`] walk a container without
//!   decoding payloads, verify every embedded chunk checksum, and
//!   report per-chunk health. Version-1 inputs carry no chunk
//!   checksums; their chunks are reported as legacy/unverifiable
//!   rather than pass or fail.
//! - [`salvage_decompress`] decodes everything it can, zero-filling
//!   the regions covered by damaged chunks so that every intact chunk
//!   lands at its original offset (bit-exact).
//! - [`salvage_container`] re-encodes the salvaged bytes into a fresh,
//!   fully valid container with the same shape.
//!
//! # Resync rules (see also docs/FORMAT.md)
//!
//! When a chunk record fails to parse or verify, the walker scans
//! forward one byte at a time looking for the next *anchor*: an offset
//! where a structurally valid chunk header is followed by payload
//! bytes that match its embedded XXH64 checksum. A false anchor would
//! need a valid mode byte, an element count within the header's chunk
//! size, a mask no wider than the element, consistent length fields,
//! *and* a 64-bit checksum match over the claimed payload — vanishing
//! odds in damaged or random bytes. Version-1 records carry no
//! checksum, so legacy anchors are structural-only and resync is
//! correspondingly weaker.
//!
//! Lost output positions are reconstructed by element accounting:
//! every non-final chunk holds exactly `chunk_elements` elements, so
//! with `R` recovered records out of `N = ceil(total / chunk_elements)`
//! expected, `N − R` chunks are missing. Each damaged region absorbs
//! at least one missing chunk; any surplus is attributed to the
//! longest damaged regions first (earliest wins ties). With a single
//! damaged region — the common case — the attribution is exact.

use crate::container::{ChunkRecord, Header, HEADER_LEN, VERSION};
use crate::error::IsobarError;
use crate::pipeline::{decode_chunk_record, IsobarCompressor, IsobarOptions, PipelineScratch};
use crate::stream::{STREAM_HEADER_LEN, STREAM_TRAILER_LEN};
use isobar_codecs::{codec_for, CodecId};
use isobar_linearize::Linearization;
use isobar_telemetry::{Counter, Recorder};

/// Health of one chunk record as seen by `fsck`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkHealth {
    /// Structure and embedded checksum both check out.
    Verified,
    /// Structurally valid version-1 record: it carries no checksum, so
    /// payload integrity cannot be proven without a full decode
    /// ("legacy, unverifiable").
    LegacyUnverifiable,
}

/// One walked chunk record.
#[derive(Debug, Clone, Copy)]
pub struct ChunkStatus {
    /// Byte offset of the record in the container or stream.
    pub offset: u64,
    /// Elements the record claims.
    pub elements: u32,
    /// Verification outcome.
    pub health: ChunkHealth,
}

/// A contiguous byte range the walker could not account for.
#[derive(Debug, Clone, Copy)]
pub struct DamageRegion {
    /// Byte offset where parsing or verification first failed.
    pub offset: u64,
    /// Bytes skipped before the next anchor (or end of input).
    pub len: u64,
}

/// What `fsck` found. `damage.is_empty()` means the input is clean —
/// or, for legacy inputs, at least structurally whole.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Format version byte from the header.
    pub version: u8,
    /// Every chunk record the walker recognized, in file order.
    pub chunks: Vec<ChunkStatus>,
    /// Byte regions lost to damage.
    pub damage: Vec<DamageRegion>,
    /// Chunks the element accounting says existed but were not found
    /// (0 when `damage` is empty).
    pub missing_chunks: u64,
    /// Whether the input predates embedded chunk checksums.
    pub legacy: bool,
}

impl FsckReport {
    /// No damage found. Legacy inputs can still be `clean` — the walk
    /// only proves structure for them, which is all v1 offers.
    pub fn is_clean(&self) -> bool {
        self.damage.is_empty() && self.missing_chunks == 0
    }
}

/// What `salvage` recovered.
#[derive(Debug, Clone, Copy, Default)]
pub struct SalvageReport {
    /// Chunk records decoded bit-exact.
    pub chunks_recovered: u64,
    /// Chunks replaced with zero fill (damaged, undecodable, or
    /// missing entirely).
    pub chunks_lost: u64,
    /// Output bytes that are zero fill rather than recovered data.
    pub bytes_lost: u64,
    /// Damaged byte regions the walker skipped.
    pub damage_regions: u64,
}

impl SalvageReport {
    /// True when every chunk came back.
    pub fn is_complete(&self) -> bool {
        self.chunks_lost == 0
    }
}

/// One element of a container walk: a parsed record or a skipped gap.
enum Segment {
    Record { offset: u64, record: ChunkRecord },
    Gap { offset: u64, len: u64 },
}

/// Walk the chunk records of a batch container body, resynchronizing
/// past damage via checksum anchors (see the module docs).
fn walk_container(data: &[u8], header: &Header) -> Vec<Segment> {
    let body = &data[HEADER_LEN..];
    let width = header.width as usize;
    let mut segments = Vec::new();
    let mut pos = 0usize;
    while pos < body.len() {
        match try_anchor(body, pos, width, header.chunk_elements, header.version) {
            Some((record, used)) => {
                segments.push(Segment::Record {
                    offset: (HEADER_LEN + pos) as u64,
                    record,
                });
                pos += used;
            }
            None => {
                let gap_start = pos;
                pos += 1;
                while pos < body.len()
                    && try_anchor(body, pos, width, header.chunk_elements, header.version).is_none()
                {
                    pos += 1;
                }
                segments.push(Segment::Gap {
                    offset: (HEADER_LEN + gap_start) as u64,
                    len: (pos - gap_start) as u64,
                });
            }
        }
    }
    segments
}

/// Try to parse (and, where the format allows, verify) a chunk record
/// at `pos`. Returns the record and its total size, or `None` if the
/// bytes there are not a believable record.
fn try_anchor(
    body: &[u8],
    pos: usize,
    width: usize,
    chunk_elements: u32,
    version: u8,
) -> Option<(ChunkRecord, usize)> {
    let (record, used) = ChunkRecord::read_bounded(
        &body[pos..],
        width,
        chunk_elements,
        version,
        true,
        (HEADER_LEN + pos) as u64,
    )
    .ok()?;
    // An empty record is structurally valid but can never appear in
    // healthy output; treating it as an anchor would loop forever.
    if record.elements == 0 {
        return None;
    }
    Some((record, used))
}

/// Walk + verify a batch container without decoding payloads.
///
/// Errors only when the file header itself is unusable; damage past
/// the header is what the report is *for*.
pub fn fsck_container(data: &[u8]) -> Result<FsckReport, IsobarError> {
    let header = Header::read(data).map_err(|e| e.at(0))?;
    let legacy = header.version < VERSION;
    let segments = walk_container(data, &header);
    let mut report = FsckReport {
        version: header.version,
        chunks: Vec::new(),
        damage: Vec::new(),
        missing_chunks: 0,
        legacy,
    };
    for seg in &segments {
        match seg {
            Segment::Record { offset, record } => report.chunks.push(ChunkStatus {
                offset: *offset,
                elements: record.elements,
                health: if legacy {
                    ChunkHealth::LegacyUnverifiable
                } else {
                    ChunkHealth::Verified
                },
            }),
            Segment::Gap { offset, len } => report.damage.push(DamageRegion {
                offset: *offset,
                len: *len,
            }),
        }
    }
    report.missing_chunks = missing_chunks(&header, report.chunks.len() as u64);
    Ok(report)
}

/// Walk + verify a stream (`ISBS`) without decoding payloads.
pub fn fsck_stream(data: &[u8]) -> Result<FsckReport, IsobarError> {
    let (version, width) = read_stream_header(data)?;
    let legacy = version < crate::stream::STREAM_VERSION;
    let mut report = FsckReport {
        version,
        chunks: Vec::new(),
        damage: Vec::new(),
        missing_chunks: 0,
        legacy,
    };
    walk_stream(data, version, width, |seg| match seg {
        StreamSegment::Frame { offset, record } => report.chunks.push(ChunkStatus {
            offset,
            elements: record.elements,
            health: if legacy {
                ChunkHealth::LegacyUnverifiable
            } else {
                ChunkHealth::Verified
            },
        }),
        StreamSegment::Gap { offset, len } => report.damage.push(DamageRegion { offset, len }),
        StreamSegment::Trailer => {}
    });
    Ok(report)
}

/// Decode a damaged batch container, zero-filling what cannot be
/// recovered so every intact chunk lands at its original offset.
///
/// Errors only when the file header is unusable or the geometry
/// (width, total length) is nonsensical — otherwise the output always
/// has exactly `total_len` bytes.
pub fn salvage_decompress(data: &[u8]) -> Result<(Vec<u8>, SalvageReport), IsobarError> {
    salvage_decompress_recorded(data, &mut Recorder::new())
}

/// [`salvage_decompress`] recording telemetry — each lost chunk bumps
/// [`Counter::ChunksSkippedCorrupt`] — into a caller-held recorder.
pub fn salvage_decompress_recorded(
    data: &[u8],
    recorder: &mut Recorder,
) -> Result<(Vec<u8>, SalvageReport), IsobarError> {
    let header = Header::read(data).map_err(|e| e.at(0))?;
    let width = header.width as usize;
    if header.total_len % width as u64 != 0 {
        return Err(IsobarError::Corrupt("total length not element-aligned"));
    }
    let total_elements = header.total_len / width as u64;
    let codec = codec_for(header.codec, header.level);
    let segments = walk_container(data, &header);

    // Element accounting: how many whole chunks vanished, and how many
    // to attribute to each damaged region (longest-first).
    let records: u64 = segments
        .iter()
        .filter(|s| matches!(s, Segment::Record { .. }))
        .count() as u64;
    let missing = missing_chunks(&header, records);
    let gap_shares = share_missing(&segments, missing);

    let mut out = Vec::with_capacity(header.total_len.min(1 << 31) as usize);
    let mut report = SalvageReport::default();
    let mut scratch = PipelineScratch::new();
    let mut gap_index = 0usize;
    let mut chunk_index = 0u32;
    // Elements still owed to records not yet emitted — used to clamp
    // zero fill so a gap can never push recovered data past its slot.
    let mut elements_ahead: u64 = segments
        .iter()
        .filter_map(|s| match s {
            Segment::Record { record, .. } => Some(record.elements as u64),
            Segment::Gap { .. } => None,
        })
        .sum();

    for seg in &segments {
        match seg {
            Segment::Record { record, .. } => {
                elements_ahead -= record.elements as u64;
                let produced = out.len();
                let decoded = decode_chunk_record(
                    record,
                    width,
                    chunk_index,
                    codec.as_ref(),
                    header.linearization,
                    &mut out,
                    &mut scratch,
                    recorder,
                )
                .is_ok();
                if decoded {
                    report.chunks_recovered += 1;
                } else {
                    // Checksum passed (or legacy) but the payload
                    // would not decode: fall back to this chunk's
                    // worth of zeros.
                    out.truncate(produced);
                    let fill = record.elements as usize * width;
                    out.resize(produced + fill, 0);
                    report.chunks_lost += 1;
                    report.bytes_lost += fill as u64;
                    recorder.incr(Counter::ChunksSkippedCorrupt);
                }
                chunk_index += 1;
            }
            Segment::Gap { .. } => {
                let share = gap_shares[gap_index];
                gap_index += 1;
                report.damage_regions += 1;
                let produced_elements = (out.len() / width) as u64;
                let budget = total_elements
                    .saturating_sub(produced_elements)
                    .saturating_sub(elements_ahead);
                let fill_elements = (share * header.chunk_elements as u64).min(budget);
                let fill = (fill_elements * width as u64) as usize;
                out.resize(out.len() + fill, 0);
                report.chunks_lost += share;
                report.bytes_lost += fill as u64;
                for _ in 0..share {
                    recorder.incr(Counter::ChunksSkippedCorrupt);
                }
            }
        }
    }
    // Accounting shortfalls (e.g. damage at the very end of the file)
    // land as trailing zero fill; overshoot cannot happen because gaps
    // are budget-clamped and records were length-validated.
    if (out.len() as u64) < header.total_len {
        let pad = header.total_len as usize - out.len();
        out.resize(header.total_len as usize, 0);
        report.bytes_lost += pad as u64;
    }
    out.truncate(header.total_len as usize);
    Ok((out, report))
}

/// Rebuild a damaged batch container into a fresh, fully valid
/// current-version container: salvage the bytes ([`salvage_decompress`]),
/// then re-encode them with the original geometry (width, chunk size,
/// solver, linearization). Recovered chunks keep their exact contents;
/// damaged spans become well-formed chunks of zeros.
pub fn salvage_container(data: &[u8]) -> Result<(Vec<u8>, SalvageReport), IsobarError> {
    salvage_container_recorded(data, &mut Recorder::new())
}

/// [`salvage_container`] recording telemetry into a caller-held
/// recorder.
pub fn salvage_container_recorded(
    data: &[u8],
    recorder: &mut Recorder,
) -> Result<(Vec<u8>, SalvageReport), IsobarError> {
    let header = Header::read(data).map_err(|e| e.at(0))?;
    let (bytes, report) = salvage_decompress_recorded(data, recorder)?;
    let compressor = IsobarCompressor::new(IsobarOptions {
        codec_override: Some(header.codec),
        linearization_override: Some(header.linearization),
        level: header.level,
        chunk_elements: header.chunk_elements as usize,
        ..Default::default()
    });
    let packed = compressor.compress(&bytes, header.width as usize)?;
    Ok((packed, report))
}

/// Decode a damaged stream (`ISBS`), skipping frames that fail
/// verification. Streams do not record their chunk geometry in the
/// header, so — unlike [`salvage_decompress`] — lost frames cannot be
/// zero-filled in place; their data is simply absent from the output.
pub fn salvage_stream_recorded(
    data: &[u8],
    recorder: &mut Recorder,
) -> Result<(Vec<u8>, SalvageReport), IsobarError> {
    let (version, width) = read_stream_header(data)?;
    let codec = CodecId::from_u8(data[6]).map_err(IsobarError::Codec)?;
    let level =
        crate::container::level_from_u8(data[7]).ok_or(IsobarError::Corrupt("bad level byte"))?;
    let linearization =
        Linearization::from_u8(data[8]).ok_or(IsobarError::Corrupt("bad linearization"))?;
    let solver = codec_for(codec, level);

    let mut out = Vec::new();
    let mut report = SalvageReport::default();
    let mut scratch = PipelineScratch::new();
    let mut chunk_index = 0u32;
    walk_stream(data, version, width, |seg| match seg {
        StreamSegment::Frame { record, .. } => {
            let produced = out.len();
            let ok = decode_chunk_record(
                &record,
                width as usize,
                chunk_index,
                solver.as_ref(),
                linearization,
                &mut out,
                &mut scratch,
                recorder,
            )
            .is_ok();
            if ok {
                report.chunks_recovered += 1;
            } else {
                out.truncate(produced);
                report.chunks_lost += 1;
                recorder.incr(Counter::ChunksSkippedCorrupt);
            }
            chunk_index += 1;
        }
        StreamSegment::Gap { len, .. } => {
            report.damage_regions += 1;
            report.chunks_lost += 1;
            report.bytes_lost += len;
            recorder.incr(Counter::ChunksSkippedCorrupt);
        }
        StreamSegment::Trailer => {}
    });
    Ok((out, report))
}

/// Parse and sanity-check the 9-byte stream header; returns
/// `(version, width)`.
fn read_stream_header(data: &[u8]) -> Result<(u8, u8), IsobarError> {
    if data.len() < STREAM_HEADER_LEN {
        return Err(IsobarError::Truncated);
    }
    if data[..4] != crate::stream::STREAM_MAGIC {
        return Err(IsobarError::Corrupt("bad stream magic"));
    }
    let version = data[4];
    if version != crate::stream::STREAM_VERSION && version != crate::stream::STREAM_LEGACY_VERSION {
        return Err(IsobarError::Corrupt("unsupported stream version"));
    }
    let width = data[5];
    if width == 0 || width > 64 {
        return Err(IsobarError::Corrupt("bad element width"));
    }
    Ok((version, width))
}

/// One element of a stream walk.
enum StreamSegment {
    Frame { offset: u64, record: ChunkRecord },
    Gap { offset: u64, len: u64 },
    Trailer,
}

/// Walk the frames of a stream, resynchronizing past damage by
/// scanning for the next frame marker followed by a verifiable record
/// (or a plausible trailer).
fn walk_stream<F: FnMut(StreamSegment)>(data: &[u8], version: u8, width: u8, mut visit: F) {
    let mut pos = STREAM_HEADER_LEN;
    while pos < data.len() {
        match try_frame(data, pos, version, width) {
            Some(FrameAt::Chunk(record, used)) => {
                visit(StreamSegment::Frame {
                    offset: (pos + 1) as u64,
                    record,
                });
                pos += used;
            }
            Some(FrameAt::Trailer) => {
                visit(StreamSegment::Trailer);
                pos = data.len();
            }
            None => {
                let gap_start = pos;
                pos += 1;
                while pos < data.len() && try_frame(data, pos, version, width).is_none() {
                    pos += 1;
                }
                visit(StreamSegment::Gap {
                    offset: gap_start as u64,
                    len: (pos - gap_start) as u64,
                });
            }
        }
    }
}

/// A frame recognized mid-stream.
enum FrameAt {
    /// Chunk frame: the record plus total frame size (marker included).
    Chunk(ChunkRecord, usize),
    /// End-of-stream trailer at exactly the right distance from EOF.
    Trailer,
}

fn try_frame(data: &[u8], pos: usize, version: u8, width: u8) -> Option<FrameAt> {
    match data[pos] {
        1 => {
            let (record, used) = ChunkRecord::read_bounded(
                &data[pos + 1..],
                width as usize,
                u32::MAX,
                version,
                true,
                (pos + 1) as u64,
            )
            .ok()?;
            if record.elements == 0 {
                return None;
            }
            Some(FrameAt::Chunk(record, 1 + used))
        }
        // Only believe a trailer marker when the remaining bytes are
        // exactly one trailer — anything else is damage.
        0 if data.len() - pos == STREAM_TRAILER_LEN => Some(FrameAt::Trailer),
        _ => None,
    }
}

/// Expected-minus-found whole chunks, from the header's geometry.
fn missing_chunks(header: &Header, found: u64) -> u64 {
    let width = header.width as u64;
    if width == 0 || header.chunk_elements == 0 {
        return 0;
    }
    let total_elements = header.total_len / width;
    let expected = total_elements.div_ceil(header.chunk_elements as u64);
    expected.saturating_sub(found)
}

/// Attribute `missing` whole chunks across the walk's damaged regions:
/// one each, then surplus to the longest regions first (earliest wins
/// ties). Returns one share per gap, in walk order.
fn share_missing(segments: &[Segment], missing: u64) -> Vec<u64> {
    let gaps: Vec<(usize, u64)> = segments
        .iter()
        .filter_map(|s| match s {
            Segment::Gap { len, .. } => Some(*len),
            _ => None,
        })
        .enumerate()
        .collect();
    let mut shares = vec![0u64; gaps.len()];
    if gaps.is_empty() || missing == 0 {
        return shares;
    }
    let mut remaining = missing;
    for share in shares.iter_mut() {
        if remaining == 0 {
            break;
        }
        *share = 1;
        remaining -= 1;
    }
    if remaining > 0 {
        // Longest gap first; ties go to the earlier region.
        let mut order: Vec<usize> = (0..gaps.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(gaps[i].1), i));
        shares[order[0]] += remaining;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::CHUNK_HEADER_LEN;
    use crate::pipeline::{IsobarCompressor, IsobarOptions};
    use crate::stream::IsobarWriter;
    use isobar_codecs::CompressionLevel;
    use std::io::Write as _;

    fn mixed_data(elements: usize) -> Vec<u8> {
        (0..elements as u64)
            .flat_map(|i| {
                (((i / 7) << 32) | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes()
            })
            .collect()
    }

    fn small_chunk_container() -> (Vec<u8>, Vec<u8>) {
        let data = mixed_data(1024);
        let packed = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 256,
            ..Default::default()
        })
        .compress(&data, 8)
        .expect("compress");
        (packed, data)
    }

    /// Byte offset of chunk record `n` (0-based) in a container.
    fn record_offset(packed: &[u8], n: usize) -> usize {
        let header = Header::read(packed).unwrap();
        let mut pos = HEADER_LEN;
        for _ in 0..n {
            let (_, used) = ChunkRecord::read_bounded(
                &packed[pos..],
                header.width as usize,
                header.chunk_elements,
                header.version,
                true,
                pos as u64,
            )
            .unwrap();
            pos += used;
        }
        pos
    }

    #[test]
    fn fsck_reports_clean_container() {
        let (packed, _) = small_chunk_container();
        let report = fsck_container(&packed).expect("header");
        assert!(report.is_clean());
        assert_eq!(report.chunks.len(), 4);
        assert!(!report.legacy);
        assert!(report
            .chunks
            .iter()
            .all(|c| c.health == ChunkHealth::Verified));
    }

    #[test]
    fn fsck_pinpoints_damaged_chunk() {
        let (mut packed, _) = small_chunk_container();
        let second = record_offset(&packed, 1);
        packed[second + CHUNK_HEADER_LEN + 3] ^= 0xFF; // payload bit rot
        let report = fsck_container(&packed).expect("header");
        assert!(!report.is_clean());
        assert_eq!(report.chunks.len(), 3, "three chunks still verify");
        assert_eq!(report.missing_chunks, 1);
        assert_eq!(report.damage.len(), 1);
        assert_eq!(report.damage[0].offset, second as u64);
    }

    #[test]
    fn salvage_recovers_intact_chunks_bit_exact() {
        let (mut packed, data) = small_chunk_container();
        let second = record_offset(&packed, 1);
        let third = record_offset(&packed, 2);
        packed[second + CHUNK_HEADER_LEN] ^= 0xFF;
        let (out, report) = salvage_decompress(&packed).expect("salvage");
        assert_eq!(out.len(), data.len());
        // Chunks 0, 2, 3 (each 256 elements x 8 bytes) are bit-exact.
        let cs = 256 * 8;
        assert_eq!(&out[..cs], &data[..cs], "chunk 0 recovered");
        assert_eq!(&out[2 * cs..], &data[2 * cs..], "chunks 2-3 recovered");
        assert!(out[cs..2 * cs].iter().all(|&b| b == 0), "chunk 1 zeroed");
        assert_eq!(report.chunks_recovered, 3);
        assert_eq!(report.chunks_lost, 1);
        assert_eq!(report.bytes_lost, cs as u64);
        let _ = third;
    }

    #[test]
    fn salvage_survives_damage_spanning_record_header() {
        // Destroy the second record's *header* (not just payload): the
        // walker must resync on the third record's checksum anchor.
        let (mut packed, data) = small_chunk_container();
        let second = record_offset(&packed, 1);
        for b in &mut packed[second..second + CHUNK_HEADER_LEN] {
            *b = 0xAA;
        }
        let (out, report) = salvage_decompress(&packed).expect("salvage");
        let cs = 256 * 8;
        assert_eq!(out.len(), data.len());
        assert_eq!(&out[..cs], &data[..cs]);
        assert_eq!(&out[2 * cs..], &data[2 * cs..]);
        assert_eq!(report.chunks_recovered, 3);
        assert_eq!(report.damage_regions, 1);
    }

    #[test]
    fn salvage_container_rebuilds_valid_container() {
        let (mut packed, data) = small_chunk_container();
        let second = record_offset(&packed, 1);
        packed[second + CHUNK_HEADER_LEN] ^= 0xFF;
        let (rebuilt, report) = salvage_container(&packed).expect("salvage");
        assert_eq!(report.chunks_lost, 1);
        // The rebuilt container must pass a strict, verifying decode.
        let out = IsobarCompressor::default()
            .decompress(&rebuilt)
            .expect("rebuilt container is fully valid");
        let cs = 256 * 8;
        assert_eq!(&out[..cs], &data[..cs]);
        assert_eq!(&out[2 * cs..], &data[2 * cs..]);
        assert!(fsck_container(&rebuilt).unwrap().is_clean());
    }

    #[test]
    fn salvage_of_clean_container_is_lossless() {
        let (packed, data) = small_chunk_container();
        let (out, report) = salvage_decompress(&packed).expect("salvage");
        assert_eq!(out, data);
        assert!(report.is_complete());
        assert_eq!(report.chunks_recovered, 4);
    }

    #[test]
    fn fsck_flags_legacy_as_unverifiable() {
        use crate::container::{ChunkMode, LEGACY_VERSION};
        use isobar_codecs::deflate::adler32;
        let original: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(3)).collect();
        let codec = codec_for(CodecId::Deflate, CompressionLevel::Default);
        let header = Header {
            version: LEGACY_VERSION,
            width: 2,
            codec: CodecId::Deflate,
            level: CompressionLevel::Default,
            linearization: Linearization::Row,
            preference: 0,
            chunk_elements: 100,
            total_len: original.len() as u64,
            checksum: adler32(&original),
        };
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 100,
            mask: 0,
            compressed: codec.compress(&original),
            incompressible: Vec::new(),
        };
        let mut bytes = Vec::new();
        header.write(&mut bytes);
        record.write_legacy(&mut bytes);

        let report = fsck_container(&bytes).expect("header");
        assert!(report.legacy);
        assert!(report.is_clean(), "structurally whole");
        assert_eq!(report.chunks[0].health, ChunkHealth::LegacyUnverifiable);

        // And legacy containers salvage too (structural anchors only).
        let (out, rep) = salvage_decompress(&bytes).expect("salvage");
        assert_eq!(out, original);
        assert!(rep.is_complete());
    }

    #[test]
    fn stream_fsck_and_salvage() {
        let data = mixed_data(1024);
        let mut writer = IsobarWriter::new(
            Vec::new(),
            8,
            IsobarOptions {
                chunk_elements: 256,
                ..Default::default()
            },
        )
        .expect("writer");
        writer.write_all(&data).expect("write");
        let mut bytes = writer.finish().expect("finish");

        let report = fsck_stream(&bytes).expect("header");
        assert!(report.is_clean());
        assert_eq!(report.chunks.len(), 4);

        // Damage the second frame's payload.
        let at = report.chunks[1].offset as usize + CHUNK_HEADER_LEN;
        bytes[at] ^= 0xFF;
        let report = fsck_stream(&bytes).expect("header");
        assert_eq!(report.chunks.len(), 3);
        assert_eq!(report.damage.len(), 1);

        // Salvage drops the damaged frame, keeps the other three.
        let (out, rep) = salvage_stream_recorded(&bytes, &mut Recorder::new()).expect("salvage");
        let cs = 256 * 8;
        assert_eq!(out.len(), 3 * cs);
        assert_eq!(&out[..cs], &data[..cs]);
        assert_eq!(&out[cs..], &data[2 * cs..]);
        assert_eq!(rep.chunks_recovered, 3);
    }
}
