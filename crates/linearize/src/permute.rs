//! Element-order permutations for the robustness experiments.
//!
//! §III.G and §III.H of the paper compress datasets under different
//! element orderings (original, Hilbert, random) and report that
//! ISOBAR's improvement is insensitive to the ordering — byte-column
//! statistics are permutation-invariant. These helpers reorder whole
//! elements (each `width` bytes) of a buffer.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic random permutation of `0..count`, seeded for
/// reproducible experiments.
pub fn random_permutation(count: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..count).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Reorder the `width`-byte elements of `data` so output element `i`
/// is input element `perm[i]`.
///
/// # Panics
///
/// Panics if shapes are inconsistent or `perm` indexes out of range.
pub fn apply_permutation(data: &[u8], width: usize, perm: &[usize]) -> Vec<u8> {
    assert!(width > 0 && data.len().is_multiple_of(width));
    let n = data.len() / width;
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut out = Vec::with_capacity(data.len());
    for &src in perm {
        let start = src * width;
        out.extend_from_slice(&data[start..start + width]);
    }
    out
}

/// Invert a permutation: if `perm[i] = j` then `inv[j] = i`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &j) in perm.iter().enumerate() {
        inv[j] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_permutation_is_a_permutation() {
        let perm = random_permutation(1000, 42);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn random_permutation_is_seed_deterministic() {
        assert_eq!(random_permutation(100, 7), random_permutation(100, 7));
        assert_ne!(random_permutation(100, 7), random_permutation(100, 8));
    }

    #[test]
    fn apply_moves_whole_elements() {
        let data = [1u8, 2, 3, 4, 5, 6]; // three 2-byte elements
        let out = apply_permutation(&data, 2, &[2, 0, 1]);
        assert_eq!(out, vec![5, 6, 1, 2, 3, 4]);
    }

    #[test]
    fn inverse_restores_original_order() {
        let data: Vec<u8> = (0..64u8).collect();
        let perm = random_permutation(8, 123);
        let shuffled = apply_permutation(&data, 8, &perm);
        let restored = apply_permutation(&shuffled, 8, &invert_permutation(&perm));
        assert_eq!(restored, data);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let data: Vec<u8> = (0..30u8).collect();
        let ident: Vec<usize> = (0..10).collect();
        assert_eq!(apply_permutation(&data, 3, &ident), data);
    }

    #[test]
    fn empty_input() {
        assert!(apply_permutation(&[], 4, &[]).is_empty());
        assert!(random_permutation(0, 1).is_empty());
        assert!(invert_permutation(&[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_permutation_length_panics() {
        apply_permutation(&[0u8; 8], 2, &[0, 1, 2]);
    }
}
