//! Structure-aware corruption of valid encoded artifacts.
//!
//! Random bytes almost never get past a magic-number check, so the
//! harness starts from a *valid* container / stream / store / codec
//! payload and injects the faults that actually occur in practice —
//! flipped bits, torn writes, truncated transfers — plus the faults an
//! adversary would choose, such as inflating a length field to provoke
//! an oversized allocation or duplicating a chunk to confuse framing.

use crate::rng::Rng;

/// Kinds of fault the mutator can inject. The distribution is uniform;
/// every kind degrades gracefully on inputs too small for it.
const KINDS: &[&str] = &[
    "bit-flip",
    "byte-stomp",
    "truncate",
    "extend",
    "length-inflate",
    "duplicate-slice",
    "zero-range",
    "torn-tail",
];

/// Apply one randomly chosen fault to `bytes` in place and return its
/// label (for failure reports).
pub fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) -> &'static str {
    if bytes.is_empty() {
        extend(rng, bytes);
        return "extend";
    }
    let kind = rng.below(KINDS.len());
    match kind {
        0 => {
            // Flip 1..=8 individual bits anywhere in the artifact.
            for _ in 0..1 + rng.below(8) {
                let pos = rng.below(bytes.len());
                bytes[pos] ^= 1 << rng.below(8);
            }
        }
        1 => {
            // Overwrite 1..=4 bytes with arbitrary values.
            for _ in 0..1 + rng.below(4) {
                let pos = rng.below(bytes.len());
                bytes[pos] = rng.byte();
            }
        }
        2 => {
            // Truncate to a strictly shorter length (possibly empty).
            bytes.truncate(rng.below(bytes.len()));
        }
        3 => extend(rng, bytes),
        4 => {
            // Interpret a random offset as a 2/4/8-byte little-endian
            // length field and write an implausibly large value — the
            // classic allocation-bomb probe.
            let width = [2usize, 4, 8][rng.below(3)];
            if bytes.len() >= width {
                let pos = rng.below(bytes.len() - width + 1);
                let value = match rng.below(5) {
                    0 => u64::MAX,
                    1 => u64::MAX >> 1,
                    2 => u32::MAX as u64,
                    3 => 1 << 40,
                    _ => (bytes.len() as u64).saturating_mul(1009),
                };
                bytes[pos..pos + width].copy_from_slice(&value.to_le_bytes()[..width]);
            } else {
                bytes.fill(0xFF);
            }
        }
        5 => {
            // Duplicate a slice (e.g. a whole chunk record) elsewhere.
            let len = 1 + rng.below(bytes.len().min(256));
            let src = rng.below(bytes.len() - len + 1);
            let copy: Vec<u8> = bytes[src..src + len].to_vec();
            let dst = rng.below(bytes.len() + 1);
            bytes.splice(dst..dst, copy);
        }
        6 => {
            // Zero a contiguous range.
            let len = 1 + rng.below(bytes.len().min(64));
            let pos = rng.below(bytes.len() - len + 1);
            bytes[pos..pos + len].fill(0);
        }
        _ => {
            // Tear the tail off — simulates a torn trailer / partial
            // final write. Up to 17 bytes covers every trailer format.
            let cut = (1 + rng.below(17)).min(bytes.len());
            bytes.truncate(bytes.len() - cut);
        }
    }
    KINDS[kind]
}

fn extend(rng: &mut Rng, bytes: &mut Vec<u8>) {
    let extra = 1 + rng.below(64);
    let start = bytes.len();
    bytes.resize(start + extra, 0);
    let rest = &mut bytes[start..];
    rng.fill(rest);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_changes_or_resizes_the_input() {
        let mut rng = Rng::new(99);
        let mut changed = 0;
        for _ in 0..500 {
            let original: Vec<u8> = (0..100u8).collect();
            let mut bytes = original.clone();
            mutate(&mut rng, &mut bytes);
            if bytes != original {
                changed += 1;
            }
        }
        // Bit flips etc. always change something; allow a tiny slack
        // for duplicate-slice inserting an identical neighborhood.
        assert!(changed > 450, "only {changed} of 500 mutations had effect");
    }

    #[test]
    fn empty_input_grows() {
        let mut rng = Rng::new(3);
        let mut bytes = Vec::new();
        mutate(&mut rng, &mut bytes);
        assert!(!bytes.is_empty());
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let run = || {
            let mut rng = Rng::new(1234);
            let mut bytes: Vec<u8> = (0..64u8).collect();
            for _ in 0..50 {
                mutate(&mut rng, &mut bytes);
            }
            bytes
        };
        assert_eq!(run(), run());
    }
}
