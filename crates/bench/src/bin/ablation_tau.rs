//! Ablation — the analyzer tolerance factor τ.
//!
//! The paper fixes τ = 1.42 after observing that the compression-ratio
//! improvement is stable for τ ∈ [1.4, 1.5]. This sweep reproduces the
//! evidence: HTC byte %, improvable verdict, and the ISOBAR ratio as τ
//! moves across (1, 2].

use isobar::{Analyzer, EupaSelector, IsobarOptions, Preference};
use isobar_bench::*;
use isobar_datasets::catalog;

const DATASETS: [&str; 4] = ["gts_chkp_zion", "flash_gamc", "msg_sweep3d", "msg_bt"];
const TAUS: [f64; 9] = [1.05, 1.2, 1.3, 1.4, 1.42, 1.45, 1.5, 1.7, 2.0];

fn main() {
    banner("Ablation: analyzer tolerance factor τ");
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        println!("{name}:");
        println!(
            "  {:>6} {:>9} {:>12} {:>9}",
            "τ", "HTC %", "improvable", "ISO CR"
        );
        for tau in TAUS {
            let sel = Analyzer::with_tau(tau)
                .analyze(&ds.bytes, ds.width())
                .expect("aligned data");
            let run = run_isobar_with(
                &ds.bytes,
                ds.width(),
                IsobarOptions {
                    preference: Preference::Speed,
                    tau,
                    eupa: EupaSelector::default(),
                    ..Default::default()
                },
            );
            println!(
                "  {:>6.2} {:>9.1} {:>12} {:>9.4}",
                tau,
                sel.htc_pct(),
                if sel.is_improvable() { "yes" } else { "no" },
                run.ratio,
            );
        }
        println!();
    }
    println!("expected shape: classifications and ratios are flat across");
    println!("τ ∈ [1.4, 1.5] (the paper's stability band); extreme τ degrades.");
}
