//! Streaming compression over `std::io` sinks and sources.
//!
//! In-situ pipelines (the paper's target deployment) hand the
//! compressor data incrementally — a simulation writes elements as it
//! produces them, and checkpoints flow straight to the file system.
//! [`IsobarWriter`] accepts bytes through `std::io::Write`, runs the
//! ISOBAR workflow one chunk at a time, and emits a *streamable*
//! container: unlike [`crate::container::Header`], no field depends on
//! data that has not been seen yet, so nothing is buffered beyond one
//! chunk and the sink never needs to seek. [`IsobarReader`] is the
//! matching `std::io::Read` decompressor.
//!
//! Framing (all little-endian):
//!
//! ```text
//! magic "ISBS" | version u8 | width u8 | codec u8 | level u8 | lin u8
//! repeated:  0x01 | ChunkRecord          (see container.rs)
//! final:     0x00 | total_len u64 | adler32 u32
//! ```
//!
//! The EUPA decision is made once, on the first chunk (matching the
//! paper's single decision per dataset/stream), unless overrides fix
//! it up front.

use crate::analyzer::{Analyzer, ColumnSelection};
use crate::container::{chunk_header_len, level_from_u8, level_to_u8, ChunkHeader, ChunkRecord};
use crate::error::IsobarError;
use crate::pipeline::{IsobarOptions, PipelineScratch};
use isobar_codecs::deflate::Adler32;
use isobar_codecs::{codec_for, Codec, CodecId};
use isobar_linearize::Linearization;
use isobar_telemetry::{Counter, Recorder, TelemetrySnapshot};
use isobar_trace as trace;
use isobar_trace::TraceTag;
use std::io::{self, Read, Write};

/// Stream container magic: "ISBS" (S for streaming).
pub const STREAM_MAGIC: [u8; 4] = *b"ISBS";
/// Stream container version written by this build. Version-2 chunk
/// frames embed the XXH64 chunk checksum (see `container.rs`);
/// version-1 streams — which carry none — are still read.
pub const STREAM_VERSION: u8 = 2;
/// The checksum-less stream version this build still reads.
pub const STREAM_LEGACY_VERSION: u8 = 1;

/// Marker byte preceding each chunk record.
const MARK_CHUNK: u8 = 1;
/// Marker byte preceding the trailer.
const MARK_END: u8 = 0;

/// Stream header size: magic + version + width + codec + level +
/// linearization.
pub const STREAM_HEADER_LEN: usize = 9;
/// Stream trailer size: end marker + total length (u64) + Adler-32.
pub const STREAM_TRAILER_LEN: usize = 13;

fn io_err(e: IsobarError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Streaming ISOBAR compressor: write element bytes in, compressed
/// stream comes out of the wrapped sink.
///
/// Call [`IsobarWriter::finish`] to flush the final partial chunk and
/// the integrity trailer; dropping without finishing loses buffered
/// data (the same contract as `std::io::BufWriter` + checksum).
///
/// # Example
///
/// ```
/// use isobar::{IsobarOptions, IsobarReader, IsobarWriter};
/// use std::io::Write;
///
/// let data: Vec<u8> = (0..20_000u64)
///     .flat_map(|i| ((i / 50) << 32 | i.wrapping_mul(0x9E37_79B9) >> 32).to_le_bytes())
///     .collect();
///
/// let mut writer = IsobarWriter::new(Vec::new(), 8, IsobarOptions::default())?;
/// writer.write_all(&data)?;
/// let stream = writer.finish()?;
///
/// let restored = IsobarReader::new(&stream[..])?.read_to_vec()?;
/// assert_eq!(restored, data);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct IsobarWriter<W: Write> {
    sink: W,
    options: IsobarOptions,
    width: usize,
    codec: Option<Box<dyn Codec>>,
    linearization: Linearization,
    analyzer: Analyzer,
    buf: Vec<u8>,
    chunk_bytes: usize,
    total_len: u64,
    checksum: Adler32,
    header_written: bool,
    finished: bool,
    /// Working memory reused across chunk flushes.
    scratch: PipelineScratch,
    /// Telemetry accumulated across the stream's lifetime.
    recorder: Recorder,
    /// Chunks flushed so far — the chunk index attached to trace spans.
    chunks_written: u32,
}

impl<W: Write> IsobarWriter<W> {
    /// Create a streaming compressor over `sink` for elements of
    /// `width` bytes.
    pub fn new(sink: W, width: usize, options: IsobarOptions) -> Result<Self, IsobarError> {
        if width == 0 || width > 64 {
            return Err(IsobarError::BadWidth(width));
        }
        let linearization = options.linearization_override.unwrap_or(Linearization::Row);
        let codec = options
            .codec_override
            .map(|id| codec_for(id, options.level));
        Ok(IsobarWriter {
            sink,
            width,
            codec,
            linearization,
            analyzer: Analyzer::with_tau(options.tau),
            buf: Vec::new(),
            chunk_bytes: options.chunk_elements * width,
            total_len: 0,
            checksum: Adler32::new(),
            header_written: false,
            finished: false,
            scratch: PipelineScratch::new(),
            recorder: Recorder::new(),
            chunks_written: 0,
            options,
        })
    }

    /// Bytes accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.total_len
    }

    /// Telemetry recorded so far (EUPA decision, per-chunk stage
    /// timings, stream framing bytes). For the totals including the
    /// final partial chunk and trailer, use
    /// [`IsobarWriter::finish_with_telemetry`].
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    fn decide_if_needed(&mut self, first_chunk: &[u8]) -> Result<(), IsobarError> {
        if self.codec.is_some() {
            return Ok(());
        }
        // EUPA on the first chunk, exactly like the batch pipeline.
        let selection = self.analyzer.analyze(first_chunk, self.width)?;
        let eupa_selection = if selection.is_improvable() {
            selection
        } else {
            ColumnSelection::new(vec![true; self.width])
        };
        let mut eupa = self.options.eupa;
        eupa.level = self.options.level;
        let decision = eupa.select_recorded(
            first_chunk,
            self.width,
            &eupa_selection,
            self.options.preference,
            &mut self.recorder,
        );
        self.codec = Some(codec_for(decision.codec, self.options.level));
        if self.options.linearization_override.is_none() {
            self.linearization = decision.linearization;
        }
        Ok(())
    }

    fn write_header(&mut self) -> io::Result<()> {
        debug_assert!(!self.header_written);
        let codec_id = self
            .codec
            .as_ref()
            .ok_or_else(|| io_err(IsobarError::Corrupt("stream codec undecided")))?
            .id();
        self.sink.write_all(&STREAM_MAGIC)?;
        self.sink.write_all(&[
            STREAM_VERSION,
            self.width as u8,
            codec_id as u8,
            level_to_u8(self.options.level),
            self.linearization as u8,
        ])?;
        self.recorder
            .add(Counter::StreamMetadataBytes, STREAM_HEADER_LEN as u64);
        self.header_written = true;
        Ok(())
    }

    fn flush_chunk(&mut self, chunk: Vec<u8>) -> io::Result<()> {
        let chunk_index = self.chunks_written;
        self.chunks_written = self.chunks_written.wrapping_add(1);
        let _span = trace::span(TraceTag::StreamChunkWrite, chunk_index);
        self.decide_if_needed(&chunk).map_err(io_err)?;
        if !self.header_written {
            self.write_header()?;
        }
        let codec = self
            .codec
            .as_ref()
            .ok_or_else(|| io_err(IsobarError::Corrupt("stream codec undecided")))?
            .as_ref();
        let record = crate::pipeline::build_chunk_record(
            &chunk,
            self.width,
            chunk_index,
            &self.analyzer,
            codec,
            self.linearization,
            &mut self.scratch,
            &mut self.recorder,
        )
        .map_err(io_err)?;
        let mut encoded = Vec::with_capacity(record.compressed.len() + 64);
        encoded.push(MARK_CHUNK);
        record.write(&mut encoded);
        self.recorder.incr(Counter::StreamChunksWritten);
        self.recorder.add(
            Counter::StreamMetadataBytes,
            1 + crate::container::CHUNK_HEADER_LEN as u64,
        );
        self.sink.write_all(&encoded)
    }

    fn finish_inner(&mut self) -> io::Result<()> {
        // Only whole elements can be compressed.
        let rem = self.buf.len() % self.width;
        if rem != 0 {
            return Err(io_err(IsobarError::MisalignedInput {
                len: self.total_len as usize,
                width: self.width,
            }));
        }
        if !self.buf.is_empty() || !self.header_written {
            let chunk = std::mem::take(&mut self.buf);
            self.flush_chunk(chunk)?;
        }
        self.sink.write_all(&[MARK_END])?;
        self.sink.write_all(&self.total_len.to_le_bytes())?;
        self.sink.write_all(&self.checksum.finish().to_le_bytes())?;
        self.recorder
            .add(Counter::StreamMetadataBytes, STREAM_TRAILER_LEN as u64);
        self.sink.flush()?;
        self.finished = true;
        Ok(())
    }

    /// Flush any buffered partial chunk and write the trailer;
    /// returns the inner sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.finish_inner()?;
        Ok(self.sink)
    }

    /// [`IsobarWriter::finish`], also returning the stream's complete
    /// telemetry (including the final partial chunk and trailer).
    pub fn finish_with_telemetry(mut self) -> io::Result<(W, TelemetrySnapshot)> {
        self.finish_inner()?;
        let snapshot = self.recorder.snapshot();
        Ok((self.sink, snapshot))
    }
}

impl<W: Write> Write for IsobarWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.checksum.update(data);
        self.total_len += data.len() as u64;
        self.buf.extend_from_slice(data);
        while self.buf.len() >= self.chunk_bytes {
            let rest = self.buf.split_off(self.chunk_bytes);
            let chunk = std::mem::replace(&mut self.buf, rest);
            self.flush_chunk(chunk)?;
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Chunks are flushed on size boundaries; partial chunks wait
        // for finish() so chunk statistics stay sound.
        self.sink.flush()
    }
}

/// Streaming ISOBAR decompressor: reads a stream produced by
/// [`IsobarWriter`] and yields the original bytes through `Read`.
pub struct IsobarReader<R: Read> {
    source: R,
    /// Stream format version from the header (1 or 2).
    version: u8,
    /// Verify per-chunk checksums (version 2 frames) while decoding.
    verify: bool,
    width: usize,
    codec: Box<dyn Codec>,
    linearization: Linearization,
    /// Decoded bytes not yet handed to the caller.
    pending: Vec<u8>,
    pending_pos: usize,
    checksum: Adler32,
    produced: u64,
    /// Compressed bytes consumed from the source so far — the byte
    /// offset attached to decode errors.
    consumed: u64,
    done: bool,
    /// Working memory reused across chunk decodes.
    scratch: PipelineScratch,
    /// Telemetry accumulated across the stream's lifetime.
    recorder: Recorder,
    /// Chunk frames decoded so far — the chunk index on trace spans.
    chunks_read: u32,
}

impl<R: Read> IsobarReader<R> {
    /// Parse the stream header and prepare to decode, verifying
    /// embedded chunk checksums (the default).
    pub fn new(source: R) -> Result<Self, IsobarError> {
        Self::with_verify(source, true)
    }

    /// [`IsobarReader::new`] with an explicit checksum-verification
    /// knob. `verify: false` trades integrity detection for decode
    /// throughput; structural validation still happens either way.
    pub fn with_verify(mut source: R, verify: bool) -> Result<Self, IsobarError> {
        let mut header = [0u8; STREAM_HEADER_LEN];
        read_exact(&mut source, &mut header)?;
        if header[..4] != STREAM_MAGIC {
            return Err(IsobarError::Corrupt("bad stream magic"));
        }
        let version = header[4];
        if version != STREAM_VERSION && version != STREAM_LEGACY_VERSION {
            return Err(IsobarError::Corrupt("unsupported stream version"));
        }
        let width = header[5] as usize;
        if width == 0 || width > 64 {
            return Err(IsobarError::Corrupt("bad element width"));
        }
        let codec_id = CodecId::from_u8(header[6]).map_err(IsobarError::Codec)?;
        let level = level_from_u8(header[7]).ok_or(IsobarError::Corrupt("bad level byte"))?;
        let linearization =
            Linearization::from_u8(header[8]).ok_or(IsobarError::Corrupt("bad linearization"))?;
        let mut recorder = Recorder::new();
        recorder.add(Counter::StreamMetadataBytes, STREAM_HEADER_LEN as u64);
        Ok(IsobarReader {
            source,
            version,
            verify,
            width,
            codec: codec_for(codec_id, level),
            linearization,
            pending: Vec::new(),
            pending_pos: 0,
            checksum: Adler32::new(),
            produced: 0,
            consumed: STREAM_HEADER_LEN as u64,
            done: false,
            scratch: PipelineScratch::new(),
            recorder,
            chunks_read: 0,
        })
    }

    /// Snapshot of the telemetry recorded so far (header, chunk, and
    /// trailer accounting accumulate as the stream is consumed).
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.recorder.snapshot()
    }

    /// Read the whole remaining stream into a buffer.
    pub fn read_to_vec(mut self) -> Result<Vec<u8>, IsobarError> {
        let mut out = Vec::new();
        Read::read_to_end(&mut self, &mut out).map_err(|e| {
            match e.get_ref().and_then(|r| r.downcast_ref::<IsobarError>()) {
                Some(inner) => inner.clone(),
                None => IsobarError::Truncated,
            }
        })?;
        Ok(out)
    }

    fn refill(&mut self) -> Result<(), IsobarError> {
        // Any refill failure is a rejection of corrupt wire input: tag
        // it with the byte offset of the frame that failed and count it.
        let frame_offset = self.consumed;
        self.refill_inner().map_err(|e| {
            self.recorder.incr(Counter::StreamCorruptRejected);
            if e.is_checksum_mismatch() {
                self.recorder.incr(Counter::ChecksumMismatches);
            }
            e.at(frame_offset)
        })
    }

    fn refill_inner(&mut self) -> Result<(), IsobarError> {
        debug_assert_eq!(self.pending_pos, self.pending.len());
        let mut marker = [0u8; 1];
        read_exact(&mut self.source, &mut marker)?;
        self.consumed += 1;
        match marker[0] {
            MARK_CHUNK => {
                let chunk_index = self.chunks_read;
                self.chunks_read = self.chunks_read.wrapping_add(1);
                let _span = trace::span(TraceTag::StreamChunkRead, chunk_index);
                // Chunk records carry their own lengths; read the fixed
                // part and validate it fully *before* allocating for or
                // reading the payloads — the two length fields are
                // untrusted and must not drive an allocation the stream
                // cannot back with real bytes.
                let header_len = chunk_header_len(self.version);
                let mut fixed = [0u8; crate::container::CHUNK_HEADER_LEN];
                let fixed = &mut fixed[..header_len];
                read_exact(&mut self.source, fixed)?;
                let record_offset = self.consumed;
                self.consumed += fixed.len() as u64;
                let header = ChunkHeader::validate(fixed, self.width, u32::MAX, self.version)?;
                let payload_len = (header.comp_len as u64)
                    .checked_add(header.incomp_len as u64)
                    .ok_or(IsobarError::Corrupt("chunk length overflow"))?;
                // Pre-size only up to a modest bound; a lying comp_len
                // then costs allocation proportional to the bytes the
                // source actually delivers, not the claimed length.
                let prealloc = (payload_len as usize).min(1 << 20);
                let mut record_bytes = Vec::with_capacity(header_len + prealloc);
                record_bytes.extend_from_slice(fixed);
                (&mut self.source)
                    .take(payload_len)
                    .read_to_end(&mut record_bytes)
                    .map_err(|_| IsobarError::Truncated)?;
                let got = (record_bytes.len() - fixed.len()) as u64;
                self.consumed += got;
                if got != payload_len {
                    return Err(IsobarError::Truncated);
                }
                let (record, _) = ChunkRecord::read_bounded(
                    &record_bytes,
                    self.width,
                    u32::MAX,
                    self.version,
                    self.verify,
                    record_offset,
                )?;
                // Decode into the fully-consumed pending buffer so its
                // capacity (and the scratch) carry across chunks.
                self.pending.clear();
                crate::pipeline::decode_chunk_record(
                    &record,
                    self.width,
                    chunk_index,
                    self.codec.as_ref(),
                    self.linearization,
                    &mut self.pending,
                    &mut self.scratch,
                    &mut self.recorder,
                )?;
                self.recorder.incr(Counter::StreamChunksRead);
                self.recorder
                    .add(Counter::StreamMetadataBytes, 1 + header_len as u64);
                self.checksum.update(&self.pending);
                self.produced += self.pending.len() as u64;
                self.pending_pos = 0;
                Ok(())
            }
            MARK_END => {
                let mut trailer = [0u8; 12];
                read_exact(&mut self.source, &mut trailer)?;
                self.consumed += trailer.len() as u64;
                let total = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
                let adler = u32::from_le_bytes(trailer[8..].try_into().expect("4 bytes"));
                if total != self.produced {
                    return Err(IsobarError::Corrupt("stream length mismatch"));
                }
                let actual = self.checksum.finish();
                if self.verify && adler != actual {
                    // The Adler-32 lives in the last 4 trailer bytes.
                    return Err(IsobarError::ChecksumMismatch {
                        offset: self.consumed - 4,
                        expected: u64::from(adler),
                        actual: u64::from(actual),
                    });
                }
                self.recorder
                    .add(Counter::StreamMetadataBytes, STREAM_TRAILER_LEN as u64);
                self.done = true;
                Ok(())
            }
            _ => Err(IsobarError::Corrupt("bad stream marker")),
        }
    }
}

fn read_exact<R: Read>(source: &mut R, buf: &mut [u8]) -> Result<(), IsobarError> {
    source.read_exact(buf).map_err(|_| IsobarError::Truncated)
}

impl<R: Read> Read for IsobarReader<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pending_pos == self.pending.len() {
            if self.done {
                return Ok(0);
            }
            self.refill().map_err(io_err)?;
        }
        let n = out.len().min(self.pending.len() - self.pending_pos);
        out[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
        self.pending_pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eupa::EupaSelector;
    use crate::pipeline::IsobarCompressor;
    use crate::Preference;

    fn test_options() -> IsobarOptions {
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 5_000,
            eupa: EupaSelector {
                sample_elements: 1024,
                sample_blocks: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn demo_data(n: usize) -> Vec<u8> {
        let mut state = 0xFEEDu64;
        (0..n)
            .flat_map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((i as u64 / 64) << 32) | (state >> 32)).to_le_bytes()
            })
            .collect()
    }

    #[test]
    fn stream_round_trips_multi_chunk_data() {
        let data = demo_data(23_456); // several chunks + ragged tail
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        // Feed in odd-sized pieces to exercise buffering.
        for piece in data.chunks(777) {
            writer.write_all(piece).unwrap();
        }
        let stream = writer.finish().unwrap();

        let reader = IsobarReader::new(&stream[..]).unwrap();
        assert_eq!(reader.read_to_vec().unwrap(), data);
    }

    #[test]
    fn stream_compresses_like_the_batch_pipeline() {
        let data = demo_data(40_000);
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        writer.write_all(&data).unwrap();
        let stream = writer.finish().unwrap();

        let batch = IsobarCompressor::new(test_options())
            .compress(&data, 8)
            .unwrap();
        // Same chunking, same solver work: sizes within a few percent.
        let diff = (stream.len() as f64 - batch.len() as f64).abs();
        let rel = diff / batch.len() as f64;
        assert!(
            rel < 0.05,
            "stream {} vs batch {}",
            stream.len(),
            batch.len()
        );
        assert!(stream.len() < data.len());
    }

    #[test]
    fn empty_stream_round_trips() {
        let writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        let stream = writer.finish().unwrap();
        let reader = IsobarReader::new(&stream[..]).unwrap();
        assert_eq!(reader.read_to_vec().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn misaligned_tail_is_rejected_at_finish() {
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        writer.write_all(&[1, 2, 3]).unwrap();
        assert!(writer.finish().is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let data = demo_data(12_000);
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        writer.write_all(&data).unwrap();
        let stream = writer.finish().unwrap();
        for cut in [0, 5, 9, stream.len() / 2, stream.len() - 1] {
            match IsobarReader::new(&stream[..cut]) {
                Err(_) => {}
                Ok(reader) => assert!(reader.read_to_vec().is_err(), "cut {cut}"),
            }
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let data = demo_data(12_000);
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        writer.write_all(&data).unwrap();
        let mut stream = writer.finish().unwrap();
        let mid = stream.len() / 2;
        stream[mid] ^= 0x08;
        let result = IsobarReader::new(&stream[..]).and_then(|r| r.read_to_vec());
        match result {
            Err(_) => {}
            Ok(out) => assert_eq!(out, data, "silent corruption"),
        }
    }

    #[test]
    fn overrides_fix_the_decision_without_sampling() {
        let data = demo_data(10_000);
        let mut options = test_options();
        options.codec_override = Some(CodecId::Bzip2Like);
        options.linearization_override = Some(Linearization::Column);
        let mut writer = IsobarWriter::new(Vec::new(), 8, options).unwrap();
        writer.write_all(&data).unwrap();
        let stream = writer.finish().unwrap();
        // Header carries the forced decision.
        assert_eq!(stream[6], CodecId::Bzip2Like as u8);
        assert_eq!(stream[8], Linearization::Column as u8);
        let reader = IsobarReader::new(&stream[..]).unwrap();
        assert_eq!(reader.read_to_vec().unwrap(), data);
    }

    #[test]
    fn reader_supports_small_incremental_reads() {
        let data = demo_data(9_000);
        let mut writer = IsobarWriter::new(Vec::new(), 8, test_options()).unwrap();
        writer.write_all(&data).unwrap();
        let stream = writer.finish().unwrap();

        let mut reader = IsobarReader::new(&stream[..]).unwrap();
        let mut out = Vec::new();
        let mut small = [0u8; 97];
        loop {
            let n = reader.read(&mut small).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&small[..n]);
        }
        assert_eq!(out, data);
    }
}
