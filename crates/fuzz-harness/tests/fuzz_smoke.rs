//! Reduced-count fuzz pass for `cargo test`: every layer must survive
//! structure-aware fault injection with zero panics and bounded
//! allocation. The full 10k-per-layer run is the fuzz binary
//! (`cargo run -p isobar-fuzz-harness --release`), which CI executes.
//!
//! This file installs the counting allocator as the global allocator,
//! so it must stay the only integration test in this binary (cargo
//! builds each top-level test file into its own executable).

use isobar_fuzz_harness::{all_layers, alloc_track::PeakAlloc, DEFAULT_SEED};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

#[test]
fn every_layer_survives_fault_injection() {
    for layer in all_layers() {
        let outcome = layer
            .run(DEFAULT_SEED, 400)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(outcome.iterations, 400);
        // A layer where no mutation is ever rejected would mean the
        // mutator is not reaching the decoder (RLE1 is the exception:
        // its decode is total, every input is a valid encoding).
        if layer.name() != "raw-rle1" {
            assert!(
                outcome.rejected > 0,
                "{}: no mutated input was ever rejected",
                layer.name()
            );
        }
    }
}
