//! Table V — performance comparison across all 24 datasets.
//!
//! Standalone zlib and bzlib2 (CR + compression throughput), the
//! analyzer's own throughput TP_A, and the full ISOBAR pipeline under
//! both preferences. Non-improvable datasets print NI in the ISOBAR
//! columns, as in the paper.

use isobar::{Analyzer, Preference};
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

fn main() {
    banner("Table V: performance comparison");
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "", "zlib", "", "bzlib2", "", "TP_A", "ISO-CR", "", "ISO-Sp", ""
    );
    println!(
        "{:<15} | {:>6} {:>8} | {:>6} {:>8} | {:>8} | {:>6} {:>8} | {:>6} {:>8}",
        "Dataset", "CR", "TPc", "CR", "TPc", "MB/s", "CR", "TPc", "CR", "TPc"
    );

    let analyzer = Analyzer::default();
    for spec in catalog::all() {
        let ds = generate(&spec);
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);
        let (_, analysis_secs) = time(|| {
            analyzer
                .analyze(&ds.bytes, ds.width())
                .expect("aligned data")
        });
        let tp_a = mbps(ds.bytes.len(), analysis_secs);

        let cr_run = run_isobar(&ds.bytes, ds.width(), Preference::Ratio);
        let sp_run = run_isobar(&ds.bytes, ds.width(), Preference::Speed);

        if cr_run.report.improvable() {
            println!(
                "{:<15} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2} | {:>8.1} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2}",
                spec.name,
                zlib.ratio,
                zlib.comp_mbps,
                bzip2.ratio,
                bzip2.comp_mbps,
                tp_a,
                cr_run.ratio,
                cr_run.comp_mbps,
                sp_run.ratio,
                sp_run.comp_mbps,
            );
        } else {
            println!(
                "{:<15} | {:>6.3} {:>8.2} | {:>6.3} {:>8.2} | {:>8.1} | {:>6} {:>8} | {:>6} {:>8}",
                spec.name,
                zlib.ratio,
                zlib.comp_mbps,
                bzip2.ratio,
                bzip2.comp_mbps,
                tp_a,
                "NI",
                "NI",
                "NI",
                "NI",
            );
        }
    }
    println!();
    println!("NI: not identified as improvable (paper convention). Paper shapes to");
    println!("check: ISOBAR-CR > max(zlib, bzlib2) CR on improvable rows; ISOBAR-Sp");
    println!("TPc well above both standalone compressors; TP_A in the hundreds of MB/s.");
}
