//! Figure 8 — compression ratio versus chunk size.
//!
//! Sweeps the chunk size over five datasets and reports the ISOBAR
//! compression ratio at each size. The paper's finding: ratios settle
//! once chunks reach ≈ 375 000 doubles (3 MB); smaller chunks destabilize
//! the analyzer's frequency statistics.

use isobar::{EupaSelector, IsobarOptions, Preference};
use isobar_bench::*;
use isobar_datasets::catalog;

const DATASETS: [&str; 5] = [
    "gts_chkp_zion",
    "flash_velx",
    "msg_lu",
    "num_brain",
    "obs_temp",
];

const CHUNK_SIZES: [usize; 8] = [
    1_000, 5_000, 10_000, 50_000, 100_000, 200_000, 375_000, 750_000,
];

fn main() {
    banner("Figure 8: chunking size for settled compression ratios");
    print!("{:<15}", "chunk elems:");
    for c in CHUNK_SIZES {
        print!("{c:>10}");
    }
    println!();

    for name in DATASETS {
        let spec = catalog::spec(name).expect("catalog entry");
        // Need enough elements to fill several of the largest chunks.
        let n = spec.scaled_elements(scale()).max(1_500_000);
        let ds = spec.generate(n, SEED);
        print!("{name:<15}");
        for chunk_elements in CHUNK_SIZES {
            let run = run_isobar_with(
                &ds.bytes,
                ds.width(),
                IsobarOptions {
                    preference: Preference::Speed,
                    chunk_elements,
                    eupa: EupaSelector::default(),
                    ..Default::default()
                },
            );
            print!("{:>10.4}", run.ratio);
        }
        println!();
    }
    println!();
    println!("paper shape: ratios rise then flatten; the curve is stable from");
    println!("≈ 375 000 elements (3 MB of doubles) onward.");
}
