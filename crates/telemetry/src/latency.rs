//! HDR-style log-linear latency histogram for always-on request
//! timing.
//!
//! The serve daemon records every request's wall time into one of
//! these per op (and per tenant). Recording is a handful of integer
//! operations on a fixed array — no allocation, no locks, no floating
//! point — so the histograms can stay on even in production soaks.
//! Buckets are log-linear ([`SUB_BITS`] sub-buckets per power of two),
//! bounding the relative quantile error at `2^-SUB_BITS` (6.25%)
//! while covering nanoseconds to ~34 seconds in [`LATENCY_BUCKETS`]
//! slots.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 4;

/// Total bucket count. With [`SUB_BITS`] = 4 this covers values up to
/// `2^35` ns (~34 s); larger values clamp into the last bucket.
pub const LATENCY_BUCKETS: usize = 512;

const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Coarse upper bounds (seconds) used when rendering a histogram as
/// Prometheus `le` buckets. Fixed and few, so scrape cardinality stays
/// bounded no matter how many ops/tenants are exported.
pub const PROMETHEUS_LE_SECONDS: [f64; 10] = [
    0.000_01, 0.000_1, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
];

#[inline]
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_COUNT {
        return nanos as usize;
    }
    let msb = 63 - u64::from(nanos.leading_zeros());
    let idx = ((msb - u64::from(SUB_BITS) + 1) << SUB_BITS)
        | ((nanos >> (msb - u64::from(SUB_BITS))) & (SUB_COUNT - 1));
    (idx as usize).min(LATENCY_BUCKETS - 1)
}

/// Exclusive upper bound (nanoseconds) of bucket `idx`.
#[inline]
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB_COUNT as usize {
        return idx as u64 + 1;
    }
    let octave = (idx >> SUB_BITS) as u64; // msb - SUB_BITS + 1
    let sub = (idx as u64) & (SUB_COUNT - 1);
    let msb = octave + u64::from(SUB_BITS) - 1;
    let width = 1u64 << (msb - u64::from(SUB_BITS));
    (1u64 << msb) + sub * width + width
}

/// Fixed-size log-linear latency histogram (see module docs).
///
/// Plain data: record into a thread-local or per-request instance and
/// [`LatencyHistogram::merge`] at a join, exactly like
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; LATENCY_BUCKETS],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let idx = bucket_index(nanos);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Largest recorded duration, nanoseconds (0 when empty).
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean duration, nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another histogram into this one. Commutative; all
    /// additions saturate.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Nearest-rank percentile in nanoseconds: the upper bound of the
    /// bucket holding the `ceil(p · count)`-th smallest sample (so the
    /// true value is at most 6.25% below the answer), clamped to the
    /// observed maximum. Returns 0 for an empty histogram; `p` is
    /// clamped to `(0, 1]`.
    pub fn percentile_nanos(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = if p.is_nan() { 1.0 } else { p.clamp(0.0, 1.0) };
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper_bound(idx).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Append this histogram to `out` as one Prometheus histogram
    /// family sample set (`_bucket` lines over
    /// [`PROMETHEUS_LE_SECONDS`], `_sum`, `_count`). `labels` is the
    /// rendered label list *without* braces (e.g. `op="put"`), empty
    /// for none; the caller emits the `# HELP`/`# TYPE` header once
    /// per family. Output is byte-stable for a given histogram.
    pub fn render_prometheus(&self, out: &mut String, family: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut bucket = 0usize;
        let mut cumulative = 0u64;
        for le in PROMETHEUS_LE_SECONDS {
            let le_nanos = (le * 1e9) as u64;
            while bucket < LATENCY_BUCKETS && bucket_upper_bound(bucket) <= le_nanos {
                cumulative = cumulative.saturating_add(self.counts[bucket]);
                bucket += 1;
            }
            out.push_str(&format!(
                "{family}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{family}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
            self.count
        ));
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!(
            "{family}_sum{braces} {:.9}\n{family}_count{braces} {}\n",
            self.sum_nanos as f64 / 1e9,
            self.count
        ));
    }

    /// Append this histogram to `out` as a JSON object:
    /// `{"count": N, "sum_nanos": N, "max_nanos": N, "mean_nanos": N,
    /// "p50_nanos": N, "p90_nanos": N, "p99_nanos": N}` — the
    /// `/debug/stats` shape.
    pub fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\": {}, \"sum_nanos\": {}, \"max_nanos\": {}, \"mean_nanos\": {}, \
             \"p50_nanos\": {}, \"p90_nanos\": {}, \"p99_nanos\": {}}}",
            self.count,
            self.sum_nanos,
            self.max_nanos,
            self.mean_nanos(),
            self.percentile_nanos(0.50),
            self.percentile_nanos(0.90),
            self.percentile_nanos(0.99),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_continuous() {
        // Exact in the linear region.
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Adjacent values never skip a bucket, including across every
        // octave boundary.
        for shift in 4..36 {
            let edge = 1u64 << shift;
            for v in [edge - 1, edge, edge + 1] {
                let a = bucket_index(v);
                let b = bucket_index(v + 1);
                assert!(b >= a, "index went backwards at {v}");
                assert!(b - a <= 1, "index skipped at {v}: {a} -> {b}");
            }
        }
        // Bucket bounds tile: each bucket starts where the last ended.
        for idx in 16..LATENCY_BUCKETS - 1 {
            assert_eq!(
                bucket_index(bucket_upper_bound(idx)),
                idx + 1,
                "bucket {idx} upper bound not the next bucket's start"
            );
        }
        // Huge values clamp instead of indexing out of range.
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_tight() {
        // Every value past the linear region lands in a bucket whose
        // upper bound is within 6.25% above it (the log-linear error
        // guarantee; below 16 ns buckets are exact to 1 ns).
        for &v in &[16u64, 17, 100, 999, 12_345, 1_000_000, 5_000_000_000] {
            let idx = bucket_index(v);
            let upper = bucket_upper_bound(idx);
            assert!(upper > v, "upper {upper} not above {v}");
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 0.0626, "error {err} too large for {v}");
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 100 samples: 1..=100 microseconds.
        for i in 1..=100u64 {
            h.record(i * 1_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean_nanos(), 50_500);
        let p50 = h.percentile_nanos(0.50);
        let p99 = h.percentile_nanos(0.99);
        // Within the 6.25% bucket error of the true values.
        assert!((46_000..=54_000).contains(&p50), "p50 {p50}");
        assert!((93_000..=106_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile_nanos(1.0), 100_000);
        // Empty histogram answers zero, no panic.
        assert_eq!(LatencyHistogram::new().percentile_nanos(0.99), 0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..50u64 {
            a.record(i * 97);
            whole.record(i * 97);
        }
        for i in 0..70u64 {
            b.record(i * 13 + 5);
            whole.record(i * 13 + 5);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_labeled() {
        let mut h = LatencyHistogram::new();
        h.record(500); // 0.5 us
        h.record(2_000_000); // 2 ms
        h.record(700_000_000); // 0.7 s
        let mut out = String::new();
        h.render_prometheus(&mut out, "isobar_serve_request_seconds", "op=\"put\"");
        assert!(out.contains("isobar_serve_request_seconds_bucket{op=\"put\",le=\"0.00001\"} 1"));
        assert!(out.contains("isobar_serve_request_seconds_bucket{op=\"put\",le=\"0.005\"} 2"));
        assert!(out.contains("isobar_serve_request_seconds_bucket{op=\"put\",le=\"1\"} 3"));
        assert!(out.contains("isobar_serve_request_seconds_bucket{op=\"put\",le=\"+Inf\"} 3"));
        assert!(out.contains("isobar_serve_request_seconds_count{op=\"put\"} 3"));
        // Unlabeled rendering has no stray comma or braces.
        let mut bare = String::new();
        h.render_prometheus(&mut bare, "f", "");
        assert!(bare.contains("f_bucket{le=\"+Inf\"} 3"));
        assert!(bare.contains("f_count 3"));
    }

    #[test]
    fn json_shape_has_percentile_fields() {
        let mut h = LatencyHistogram::new();
        h.record(1_000);
        let mut out = String::new();
        h.write_json(&mut out);
        for key in [
            "\"count\"",
            "\"sum_nanos\"",
            "\"max_nanos\"",
            "\"mean_nanos\"",
            "\"p50_nanos\"",
            "\"p90_nanos\"",
            "\"p99_nanos\"",
        ] {
            assert!(out.contains(key), "missing {key} in {out}");
        }
    }
}
