//! Figure 10 — compression speed-up under different linearizations.
//!
//! Companion to Figure 9: the compression speed-up (Eq. 2, ISOBAR vs
//! standalone zlib) for original, Hilbert, and random element orders.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{deflate::Deflate, Codec};
use isobar_datasets::catalog;
use isobar_linearize::{apply_permutation, hilbert_order, random_permutation};

const DATASETS: [&str; 6] = [
    "gts_chkp_zion",
    "xgc_iphase",
    "flash_velx",
    "msg_sweep3d",
    "num_brain",
    "obs_temp",
];

fn main() {
    banner("Figure 10: compression speed-up under original / Hilbert / random order");
    println!(
        "{:<15} {:>10} {:>10} {:>10}",
        "Dataset", "original", "Hilbert", "random"
    );
    for name in DATASETS {
        let ds = generate(&catalog::spec(name).expect("catalog entry"));
        let n = ds.element_count();
        let orders: [Vec<u8>; 3] = [
            ds.bytes.clone(),
            apply_permutation(&ds.bytes, ds.width(), &hilbert_order(n)),
            apply_permutation(&ds.bytes, ds.width(), &random_permutation(n, SEED)),
        ];
        print!("{name:<15}");
        for data in &orders {
            let zlib = Deflate::default();
            let (_, zlib_secs) = time(|| zlib.compress(data));
            let isobar = run_isobar(data, ds.width(), Preference::Speed);
            print!(
                "{:>10.2}",
                speedup(isobar.comp_mbps, mbps(data.len(), zlib_secs))
            );
        }
        println!();
    }
    println!();
    println!("paper shape: speed-ups are consistent across the three orderings.");
}
