//! Per-tenant write-ahead journal behind the serve daemon's
//! "acked means durable" contract.
//!
//! A put is appended to its tenant's journal file and fsynced *before*
//! the daemon writes [`Status::Ok`](crate::protocol::Status::Ok), so a
//! `kill -9` between generation commits can no longer lose an
//! acknowledged write: on the next startup the daemon replays every
//! leftover journal record into the overlay (and from there into the
//! next generation commit). The journal truncates after each
//! successful generation commit — at that point every journaled put is
//! durable in the store's manifest-committed segments and the records
//! are dead weight.
//!
//! # File layout
//!
//! One journal file per tenant, named `wal-<xxh64(tenant):016x>.waj`
//! in the store directory (the hash keeps arbitrary tenant bytes out
//! of file names; records carry the full tenant string, so a hash
//! collision merely shares a file and is still correct). Each file is:
//!
//! ```text
//! "ISWJ" version=01 reserved[3]          8-byte file header
//! record*                                append-only records
//! ```
//!
//! and each record is length-prefixed and XXH64-framed:
//!
//! ```text
//! "ISWR"            4  anchor magic (resync point)
//! body_len          4  u32 LE
//! body              …  step u32 | width u8 | tenant_len u16 | tenant
//!                      | name_len u16 | name | payload_len u32 | payload
//! checksum          8  u64 LE, xxh64(body, WAL_RECORD_SEED)
//! ```
//!
//! # Torn tails
//!
//! A crash can tear the last record (the kernel flushed a prefix of
//! the dying write). Replay walks records sequentially and, at the
//! first length or checksum mismatch, scans forward for the next
//! `ISWR` anchor whose record verifies — the same checksum-anchor
//! resync idiom the salvage walkers use for containers and stores.
//! A torn tail therefore costs exactly the unacked record being
//! written at crash time, never an acked one (acked records were
//! fsynced first).
//!
//! All I/O goes through the [`StoreFs`] VFS so the crash-injection
//! harness can kill the daemon at every journal operation boundary
//! and prove the no-acked-loss claim (`--serve-crash-sweep`).

use isobar_codecs::xxhash::xxh64;
use isobar_store::{StoreFile, StoreFs};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Journal file magic.
pub const WAL_MAGIC: [u8; 4] = *b"ISWJ";

/// Journal format version.
pub const WAL_VERSION: u8 = 1;

/// Record anchor magic, the resync point for torn-tail recovery.
pub const WAL_RECORD_MAGIC: [u8; 4] = *b"ISWR";

/// Journal file header length.
pub const WAL_HEADER_LEN: usize = 8;

/// Fixed seed for record checksums (distinct from the container and
/// store seeds so a misfiled frame never verifies).
pub const WAL_RECORD_SEED: u64 = 0x1507_BA86_0A11_ED01;

/// Seed for the tenant-to-file-name hash.
const WAL_NAME_SEED: u64 = 0x7E4A_17;

/// Journal file name prefix.
pub const WAL_FILE_PREFIX: &str = "wal-";

/// Journal file name suffix.
pub const WAL_FILE_SUFFIX: &str = ".waj";

/// Upper bound on a record body accepted during replay; larger length
/// fields are treated as corruption (bounded-allocation discipline,
/// matching the protocol decoder). Generous next to the daemon's
/// 64 MiB default payload cap.
pub const MAX_WAL_BODY: u32 = 1 << 28;

/// Journal file name for a tenant.
pub fn wal_file_name(tenant: &str) -> String {
    format!(
        "{WAL_FILE_PREFIX}{:016x}{WAL_FILE_SUFFIX}",
        xxh64(tenant.as_bytes(), WAL_NAME_SEED)
    )
}

/// Whether a file name looks like a journal file.
pub fn is_wal_file_name(name: &str) -> bool {
    name.starts_with(WAL_FILE_PREFIX) && name.ends_with(WAL_FILE_SUFFIX)
}

/// One journaled put.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Tenant namespace (empty for the default tenant).
    pub tenant: String,
    /// Checkpoint step.
    pub step: u32,
    /// Variable name within the tenant.
    pub name: String,
    /// Element width in bytes.
    pub width: u8,
    /// Raw payload exactly as the client sent it.
    pub payload: Vec<u8>,
}

impl WalRecord {
    /// Encoded frame size of this record.
    pub fn encoded_len(&self) -> usize {
        4 + 4 + self.body_len() + 8
    }

    fn body_len(&self) -> usize {
        4 + 1 + 2 + self.tenant.len() + 2 + self.name.len() + 4 + self.payload.len()
    }
}

/// Encode one record as a framed journal entry.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    debug_assert!(rec.tenant.len() <= u16::MAX as usize);
    debug_assert!(rec.name.len() <= u16::MAX as usize);
    debug_assert!(rec.payload.len() <= u32::MAX as usize);
    let body_len = rec.body_len();
    let mut out = Vec::with_capacity(4 + 4 + body_len + 8);
    out.extend_from_slice(&WAL_RECORD_MAGIC);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len();
    out.extend_from_slice(&rec.step.to_le_bytes());
    out.push(rec.width);
    out.extend_from_slice(&(rec.tenant.len() as u16).to_le_bytes());
    out.extend_from_slice(rec.tenant.as_bytes());
    out.extend_from_slice(&(rec.name.len() as u16).to_le_bytes());
    out.extend_from_slice(rec.name.as_bytes());
    out.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&rec.payload);
    let checksum = xxh64(&out[body_start..], WAL_RECORD_SEED);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Parse one record body (everything between the length prefix and the
/// checksum). `None` means the body is internally inconsistent.
fn parse_body(body: &[u8]) -> Option<WalRecord> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let out = body.get(*at..*at + n)?;
        *at += n;
        Some(out)
    };
    let step = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?);
    let width = take(&mut at, 1)?[0];
    let tenant_len = u16::from_le_bytes(take(&mut at, 2)?.try_into().ok()?) as usize;
    let tenant = std::str::from_utf8(take(&mut at, tenant_len)?).ok()?;
    let name_len = u16::from_le_bytes(take(&mut at, 2)?.try_into().ok()?) as usize;
    let name = std::str::from_utf8(take(&mut at, name_len)?).ok()?;
    let payload_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let payload = take(&mut at, payload_len)?;
    if at != body.len() {
        return None;
    }
    Some(WalRecord {
        tenant: tenant.to_string(),
        step,
        name: name.to_string(),
        width,
        payload: payload.to_vec(),
    })
}

/// What salvaging one journal file produced.
#[derive(Debug, Default)]
pub struct WalSalvage {
    /// Records that verified, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes skipped by the anchor resync (torn tail or corruption).
    pub skipped_bytes: u64,
}

/// Try to decode one record frame at `bytes[at..]`. Returns the record
/// and the offset just past it.
fn try_record_at(bytes: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    let frame = bytes.get(at..)?;
    if frame.len() < 4 + 4 + 8 || frame[..4] != WAL_RECORD_MAGIC {
        return None;
    }
    let body_len = u32::from_le_bytes(frame[4..8].try_into().ok()?);
    if body_len > MAX_WAL_BODY {
        return None;
    }
    let body_len = body_len as usize;
    let body = frame.get(8..8 + body_len)?;
    let stored = frame.get(8 + body_len..8 + body_len + 8)?;
    let stored = u64::from_le_bytes(stored.try_into().ok()?);
    if xxh64(body, WAL_RECORD_SEED) != stored {
        return None;
    }
    Some((parse_body(body)?, at + 8 + body_len + 8))
}

/// Salvage-parse one journal file's bytes: sequential decode with
/// checksum-anchor resync past anything that does not verify. Never
/// fails — a journal that is all garbage simply yields no records.
pub fn parse_wal(bytes: &[u8]) -> WalSalvage {
    let mut out = WalSalvage::default();
    // Tolerate a missing or torn file header by starting the scan at 0;
    // a well-formed file simply has no anchor inside its header.
    let mut at = if bytes.len() >= WAL_HEADER_LEN
        && bytes[..4] == WAL_MAGIC
        && bytes[4] == WAL_VERSION
    {
        WAL_HEADER_LEN
    } else {
        out.skipped_bytes += bytes.len().min(WAL_HEADER_LEN) as u64;
        0
    };
    while at < bytes.len() {
        match try_record_at(bytes, at) {
            Some((rec, next)) => {
                out.records.push(rec);
                at = next;
            }
            None => {
                // Resync: scan forward for the next anchor that yields
                // a verifying record.
                let mut found = None;
                let mut probe = at + 1;
                while probe + 4 <= bytes.len() {
                    if bytes[probe..probe + 4] == WAL_RECORD_MAGIC {
                        if let Some(hit) = try_record_at(bytes, probe) {
                            found = Some((probe, hit));
                            break;
                        }
                    }
                    probe += 1;
                }
                match found {
                    Some((probe, (rec, next))) => {
                        out.skipped_bytes += (probe - at) as u64;
                        out.records.push(rec);
                        at = next;
                    }
                    None => {
                        out.skipped_bytes += (bytes.len() - at) as u64;
                        break;
                    }
                }
            }
        }
    }
    out
}

/// What replaying a directory's journals found, returned from
/// [`WalSet::open`].
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every salvaged record across all journal files, file-name order
    /// then append order.
    pub records: Vec<WalRecord>,
    /// Journal files found on startup.
    pub files: u64,
    /// Bytes dropped by torn-tail / corruption resync.
    pub skipped_bytes: u64,
}

/// The open journal set for one daemon: per-tenant files with live
/// append handles, over any [`StoreFs`].
pub struct WalSet<F: StoreFs> {
    fs: F,
    dir: PathBuf,
    /// Open append handles, keyed by journal file name.
    open: BTreeMap<String, F::File>,
}

impl<F: StoreFs> WalSet<F> {
    /// Open the journal set for `dir`: salvage every leftover journal
    /// file, rewrite each as a compacted journal (dropping torn
    /// tails and regaining an append handle — the VFS has no
    /// open-for-append), and return the records to replay.
    pub fn open(fs: F, dir: &Path) -> io::Result<(Self, WalReplay)> {
        let mut replay = WalReplay::default();
        let mut set = WalSet {
            fs,
            dir: dir.to_path_buf(),
            open: BTreeMap::new(),
        };
        let mut names: Vec<(String, PathBuf)> = match set.fs.list_dir(dir) {
            Ok(paths) => paths
                .into_iter()
                .filter_map(|p| {
                    let name = p.file_name()?.to_str()?.to_string();
                    is_wal_file_name(&name).then_some((name, p))
                })
                .collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        names.sort();
        let mut dirty = false;
        for (name, path) in names {
            replay.files += 1;
            let salvage = parse_wal(&set.fs.read_file(&path)?);
            replay.skipped_bytes += salvage.skipped_bytes;
            if salvage.records.is_empty() {
                set.fs.remove_file(&path)?;
                dirty = true;
                continue;
            }
            // Rewrite through a .wip so a crash mid-rewrite leaves
            // either the old journal or the new one, never a torn mix.
            let wip = path.with_extension("waj.wip");
            let mut file = set.fs.create(&wip)?;
            file.write_all(&file_header())?;
            for rec in &salvage.records {
                file.write_all(&encode_record(rec))?;
            }
            file.sync_data()?;
            set.fs.rename(&wip, &path)?;
            dirty = true;
            set.open.insert(name, file);
            replay.records.extend(salvage.records);
        }
        if dirty {
            set.fs.sync_dir(dir)?;
        }
        Ok((set, replay))
    }

    /// Append one record to its tenant's journal and fsync it. On
    /// return the record is durable: the daemon may ack. Returns the
    /// encoded frame length.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<usize> {
        let name = wal_file_name(&rec.tenant);
        let frame = encode_record(rec);
        match self.open.get_mut(&name) {
            Some(file) => {
                file.write_all(&frame)?;
                file.sync_data()?;
            }
            None => {
                let path = self.dir.join(&name);
                let mut file = self.fs.create(&path)?;
                file.write_all(&file_header())?;
                file.write_all(&frame)?;
                file.sync_data()?;
                // Commit the new file's directory entry; without this
                // a crash could drop the whole journal file, acked
                // records and all.
                self.fs.sync_dir(&self.dir)?;
                self.open.insert(name, file);
            }
        }
        Ok(frame.len())
    }

    /// Retire every journal file. Called after a generation commit is
    /// durable — each journaled put now lives in manifest-committed
    /// segments. Returns how many files were removed.
    pub fn truncate(&mut self) -> io::Result<u64> {
        let names: Vec<String> = self.open.keys().cloned().collect();
        if names.is_empty() {
            return Ok(0);
        }
        // Drop handles first so nothing buffers into an unlinked file.
        self.open.clear();
        let mut removed = 0u64;
        for name in names {
            match self.fs.remove_file(&self.dir.join(&name)) {
                Ok(()) => removed += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.fs.sync_dir(&self.dir)?;
        Ok(removed)
    }

    /// Journal files currently open for append.
    pub fn open_files(&self) -> usize {
        self.open.len()
    }
}

fn file_header() -> [u8; WAL_HEADER_LEN] {
    let mut header = [0u8; WAL_HEADER_LEN];
    header[..4].copy_from_slice(&WAL_MAGIC);
    header[4] = WAL_VERSION;
    header
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tenant: &str, step: u32, name: &str, payload: &[u8]) -> WalRecord {
        WalRecord {
            tenant: tenant.to_string(),
            step,
            name: name.to_string(),
            width: 8,
            payload: payload.to_vec(),
        }
    }

    fn journal(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = file_header().to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_record(r));
        }
        bytes
    }

    #[test]
    fn record_round_trips() {
        let r = rec("acme", 7, "density", b"payload bytes");
        let bytes = journal(&[r.clone()]);
        let salvage = parse_wal(&bytes);
        assert_eq!(salvage.records, vec![r]);
        assert_eq!(salvage.skipped_bytes, 0);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let r = rec("", 0, "v", b"x");
        assert_eq!(encode_record(&r).len(), r.encoded_len());
    }

    #[test]
    fn torn_tail_drops_only_the_last_record() {
        let a = rec("t", 1, "a", &[1; 100]);
        let b = rec("t", 2, "b", &[2; 100]);
        let full = journal(&[a.clone(), b.clone()]);
        // Every truncation point inside the second record keeps the
        // first and drops the second.
        let second_start = WAL_HEADER_LEN + a.encoded_len();
        for cut in second_start + 1..full.len() {
            let salvage = parse_wal(&full[..cut]);
            assert_eq!(salvage.records, vec![a.clone()], "cut at {cut}");
            assert!(salvage.skipped_bytes > 0, "cut at {cut}");
        }
        // Truncation inside the first record loses everything: the
        // torn record never verifies and no later anchor survives the
        // cut. (That record was unacked — its fsync never returned.)
        let salvage = parse_wal(&full[..second_start - 1]);
        assert!(salvage.records.is_empty(), "tail byte of record 1 cut");
    }

    #[test]
    fn corrupt_middle_resyncs_to_the_next_anchor() {
        let a = rec("t", 1, "a", &[1; 64]);
        let b = rec("t", 2, "b", &[2; 64]);
        let c = rec("t", 3, "c", &[3; 64]);
        let mut bytes = journal(&[a.clone(), b, c.clone()]);
        // Flip one payload byte in the middle record.
        let b_start = WAL_HEADER_LEN + a.encoded_len();
        bytes[b_start + 20] ^= 0xff;
        let salvage = parse_wal(&bytes);
        assert_eq!(salvage.records, vec![a, c]);
        assert!(salvage.skipped_bytes > 0);
    }

    #[test]
    fn garbage_and_truncated_headers_parse_to_nothing() {
        assert!(parse_wal(&[]).records.is_empty());
        assert!(parse_wal(b"IS").records.is_empty());
        assert!(parse_wal(&[0xAA; 300]).records.is_empty());
        // A bogus giant length field must not allocate; the record is
        // skipped via resync.
        let mut bytes = file_header().to_vec();
        bytes.extend_from_slice(&WAL_RECORD_MAGIC);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 64]);
        assert!(parse_wal(&bytes).records.is_empty());
    }

    #[test]
    fn file_names_are_stable_and_recognizable() {
        assert_eq!(wal_file_name("acme"), wal_file_name("acme"));
        assert_ne!(wal_file_name("acme"), wal_file_name("zeta"));
        assert!(is_wal_file_name(&wal_file_name("")));
        assert!(!is_wal_file_name("MANIFEST"));
        assert!(!is_wal_file_name("wal-0.tmp"));
    }

    #[test]
    fn wal_set_appends_replays_and_truncates_on_real_fs() {
        use isobar_store::RealFs;
        let dir = std::env::temp_dir().join(format!("isobar-wal-set-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let (mut set, replay) = WalSet::open(RealFs, &dir).unwrap();
        assert_eq!(replay.records.len(), 0);
        set.append(&rec("", 0, "a", b"one")).unwrap();
        set.append(&rec("acme", 1, "b", b"two")).unwrap();
        set.append(&rec("acme", 2, "b", b"three")).unwrap();
        assert_eq!(set.open_files(), 2);
        drop(set);

        // "Restart": everything acked comes back, in deterministic
        // order, and the files survive the compaction rewrite.
        let (mut set, replay) = WalSet::open(RealFs, &dir).unwrap();
        assert_eq!(replay.files, 2);
        assert_eq!(replay.records.len(), 3);
        let steps: Vec<u32> = replay.records.iter().map(|r| r.step).collect();
        assert!(steps.contains(&0) && steps.contains(&1) && steps.contains(&2));

        // A torn tail on one journal costs exactly the torn record.
        let torn_path = dir.join(wal_file_name("acme"));
        let bytes = std::fs::read(&torn_path).unwrap();
        std::fs::write(&torn_path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, replay) = WalSet::open(RealFs, &dir).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.skipped_bytes > 0);

        assert_eq!(set.truncate().unwrap(), 2);
        let (_, replay) = WalSet::open(RealFs, &dir).unwrap();
        assert_eq!(replay.files, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
