//! Table III — statistical information about the test datasets.
//!
//! Measured columns (size, elements, unique %, Shannon entropy,
//! randomness %) next to the paper's values. Sizes are scaled by
//! ISOBAR_SCALE; the distributional statistics should track the
//! paper's classes (high/mid/low uniqueness and randomness).

use isobar_bench::*;
use isobar_datasets::{catalog, stats};

fn main() {
    banner("Table III: statistical information about test datasets");
    println!(
        "{:<15} {:<15} {:>8} {:>9} {:>8} {:>8} {:>8}   (paper: uniq, H, rand)",
        "Dataset", "Type", "MB", "Elems(k)", "Uniq%", "H(bits)", "Rand%"
    );
    for spec in catalog::all() {
        let ds = generate(&spec);
        let st = stats::dataset_stats(&ds);
        println!(
            "{:<15} {:<15} {:>8.1} {:>9.0} {:>8.1} {:>8.2} {:>8.1}   ({:>5.1}, {:>5.2}, {:>5.1})",
            spec.name,
            spec.element.name(),
            st.size_bytes as f64 / 1e6,
            st.elements as f64 / 1e3,
            st.unique_pct,
            st.entropy_bits,
            st.randomness_pct,
            spec.paper_unique_pct,
            spec.paper_entropy,
            spec.paper_randomness_pct,
        );
    }
    println!();
    println!("note: measured Shannon entropy scales with log2(elements), so at");
    println!("reduced scale it sits below the paper's absolute values; the");
    println!("randomness % (entropy relative to an all-unique set, Eq. 6) is the");
    println!("scale-free comparison. Near-unique datasets (uniq ≥ 85%) are");
    println!("generated fully unique — see DESIGN.md, substitutions.");
}
