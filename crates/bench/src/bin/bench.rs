//! Benchmark result tooling: regression gating, trace validation, and
//! the serve soak driver.
//!
//! ```text
//! bench diff OLD.json NEW.json [--max-regress PCT]
//! bench trace-check TRACE.json
//! bench serve-soak [--clients N] [--iters N] [--payload BYTES] [--dir PATH]
//!                  [--chaos] [--chaos-seed N]
//! ```
//!
//! `diff` compares the `results_mbps` sections of two
//! `bench_pipeline` JSON files and exits nonzero when any shared
//! result regressed by more than the threshold (default 5%). It is the
//! CI gate that keeps the pipeline's measured throughput from drifting
//! down unnoticed.
//!
//! `trace-check` validates a Chrome trace-event JSON file produced by
//! `--trace`: a top-level array whose begin/end events are balanced and
//! properly nested per thread, with monotonically non-decreasing
//! timestamps per thread. It is the CI smoke test for the span
//! pipeline.
//!
//! `serve-soak` starts an in-process `isobar serve` daemon and drives
//! it with concurrent mixed put/get clients (see
//! [`isobar_bench::soak`]). It exits nonzero on any client-observed
//! error or any server-side protocol error, so CI can use a short run
//! as a daemon smoke test. Unless `--no-flight` is given, the soak
//! also runs the daemon's flight recorder (slow threshold `--slow-ms`,
//! default 0 so every request lands in `slow.jsonl`) and asserts that
//! every logged request attributes at least 95% of its wall time to
//! named phases — the end-to-end check that the phase instrumentation
//! has no blind spots. With `--chaos` every client connection runs
//! through a fault-injecting transport (delays, fragmentation, resets,
//! stalls) and a retrying client; the soak then doubles as an
//! end-to-end proof that hostile networks cannot corrupt data or hang
//! the daemon.

use isobar::telemetry::json::{self, JsonValue};
use isobar_bench::soak::{run_soak, SoakConfig};
use isobar_server::ServePhase;
use std::process::ExitCode;

const USAGE: &str = "usage: bench diff OLD NEW [--max-regress PCT] \
     | bench trace-check FILE \
     | bench serve-soak [--clients N] [--iters N] [--payload BYTES] [--dir PATH] \
       [--slow-ms N] [--no-flight] [--chaos] [--chaos-seed N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("diff") => diff(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        Some("serve-soak") => serve_soak(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a `--max-regress` value: `5`, `5%`, and `5.0` all mean 5%.
fn parse_percent(text: &str) -> Result<f64, String> {
    let trimmed = text.strip_suffix('%').unwrap_or(text);
    let pct: f64 = trimmed.parse().map_err(|e| format!("--max-regress: {e}"))?;
    if !(0.0..=100.0).contains(&pct) {
        return Err(format!("--max-regress must be in 0..=100, got {pct}"));
    }
    Ok(pct)
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The `results_mbps` object of a bench file, as `(name, mbps)` pairs.
fn results_mbps(doc: &JsonValue, path: &str) -> Result<Vec<(String, f64)>, String> {
    let JsonValue::Object(members) = doc
        .get("results_mbps")
        .ok_or(format!("{path}: no results_mbps section"))?
    else {
        return Err(format!("{path}: results_mbps is not an object"));
    };
    members
        .iter()
        .map(|(name, value)| {
            value
                .as_f64()
                .map(|mbps| (name.clone(), mbps))
                .ok_or(format!("{path}: results_mbps.{name} is not a number"))
        })
        .collect()
}

fn diff(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut max_regress_pct = 5.0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress" => {
                max_regress_pct =
                    parse_percent(it.next().ok_or("--max-regress requires a value")?)?;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path]: [&String; 2] = paths
        .try_into()
        .map_err(|_| "diff requires exactly OLD and NEW paths".to_string())?;

    let old = results_mbps(&load(old_path)?, old_path)?;
    let new = results_mbps(&load(new_path)?, new_path)?;

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (name, old_mbps) in &old {
        let Some((_, new_mbps)) = new.iter().find(|(n, _)| n == name) else {
            eprintln!("{name:<28} only in {old_path}, skipped");
            continue;
        };
        compared += 1;
        let delta_pct = (new_mbps / old_mbps - 1.0) * 100.0;
        let verdict = if delta_pct < -max_regress_pct {
            regressions += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{name:<28} {old_mbps:>9.1} -> {new_mbps:>9.1} MB/s  {delta_pct:>+7.1}%  {verdict}"
        );
    }
    for (name, _) in &new {
        if !old.iter().any(|(n, _)| n == name) {
            eprintln!("{name:<28} only in {new_path}, skipped");
        }
    }
    if compared == 0 {
        return Err("no shared results to compare".to_string());
    }
    if regressions > 0 {
        return Err(format!(
            "{regressions} of {compared} results regressed beyond {max_regress_pct}%"
        ));
    }
    println!("all {compared} shared results within {max_regress_pct}% of {old_path}");
    Ok(())
}

fn parse_count(flag: &str, text: &str) -> Result<usize, String> {
    let n: usize = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be positive"));
    }
    Ok(n)
}

fn serve_soak(args: &[String]) -> Result<(), String> {
    let mut config = SoakConfig::default();
    let mut dir: Option<std::path::PathBuf> = None;
    let mut slow_ms = 0u64;
    let mut flight = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--clients" => config.clients = parse_count("--clients", value("--clients")?)?,
            "--iters" => config.iters = parse_count("--iters", value("--iters")?)?,
            "--payload" => {
                config.payload_bytes = parse_count("--payload", value("--payload")?)?;
                if config.payload_bytes % 8 != 0 {
                    return Err("--payload must be a multiple of 8 (width-8 elements)".to_string());
                }
            }
            "--dir" => dir = Some(std::path::PathBuf::from(value("--dir")?)),
            "--slow-ms" => {
                slow_ms = value("--slow-ms")?
                    .parse()
                    .map_err(|e| format!("--slow-ms: {e}"))?
            }
            "--no-flight" => flight = false,
            "--chaos" => {
                config.chaos = Some(isobar_server::ChaosConfig::standard(
                    config.chaos.map_or(1, |c| c.seed),
                ))
            }
            "--chaos-seed" => {
                let seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|e| format!("--chaos-seed: {e}"))?;
                let base = config
                    .chaos
                    .unwrap_or_else(|| isobar_server::ChaosConfig::standard(seed));
                config.chaos = Some(isobar_server::ChaosConfig { seed, ..base });
            }
            other => return Err(format!("unknown serve-soak argument '{other}'")),
        }
    }

    // Default to a scratch store that is removed afterwards; an
    // explicit --dir is the caller's to keep and inspect.
    let scratch = dir.is_none();
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("isobar-serve-soak-{}", std::process::id()))
    });
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    let flight_dir = dir.join("flight");
    if flight {
        config.server.slow_ms = Some(slow_ms);
        config.server.flight_recorder = Some(flight_dir.clone());
    }

    println!(
        "serve-soak: {} clients x {} iters x {} KiB payloads{} -> {}",
        config.clients,
        config.iters,
        config.payload_bytes / 1024,
        if config.chaos.is_some() {
            " under network chaos"
        } else {
            ""
        },
        dir.display()
    );
    let report = run_soak(&dir, &config)?;
    let attribution = if flight {
        Some(check_slow_log(&flight_dir)?)
    } else {
        None
    };
    if scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }

    println!("{:<22} {:>10.1} MB/s", "mixed put/get", report.mbps);
    println!(
        "{:<22} {:>10.2} MB",
        "payload moved",
        report.total_bytes as f64 / 1e6
    );
    println!("{:<22} {:>10.3} s", "wall time", report.wall_secs);
    println!("{:<22} {:>10}", "puts", report.puts);
    println!("{:<22} {:>10}", "gets (verified)", report.gets);
    println!("{:<22} {:>10}", "busy retries", report.busy_retries);
    if config.chaos.is_some() {
        println!("{:<22} {:>10}", "chaos reconnects", report.reconnects);
    }
    println!("{:<22} {:>10.3} ms", "p50 latency", report.p50_ms);
    println!("{:<22} {:>10.3} ms", "p99 latency", report.p99_ms);
    println!("{:<22} {:>10}", "server commits", report.server.commits);
    println!(
        "{:<22} {:>10}",
        "server protocol errs", report.server.protocol_errors
    );

    // Phase attribution: where the daemon's request time actually
    // went, with the store-lock convoy share called out (ROADMAP 1).
    let total = report.server.total_request_nanos.max(1);
    println!(
        "{:<22} {:>10.3} s",
        "server request time",
        report.server.total_request_nanos as f64 / 1e9
    );
    for phase in ServePhase::ALL {
        let nanos = report.server.phase_nanos[phase as usize];
        if nanos > 0 {
            println!(
                "  {:<20} {:>10.3} s  {:>5.1}%",
                phase.name(),
                nanos as f64 / 1e9,
                nanos as f64 / total as f64 * 100.0
            );
        }
    }
    println!(
        "{:<22} {:>9.1}%",
        "lock-wait share",
        report.server.lock_wait_share() * 100.0
    );
    if let Some((records, min_share)) = attribution {
        println!(
            "{:<22} {:>10}  (min attribution {:.1}%)",
            "slow log records", records, min_share * 100.0
        );
    }

    for error in &report.errors {
        eprintln!("soak error: {error}");
    }
    if !report.errors.is_empty() {
        return Err(format!("{} client-side errors", report.errors.len()));
    }
    if report.server.protocol_errors > 0 {
        return Err(format!(
            "{} server-side protocol errors",
            report.server.protocol_errors
        ));
    }
    println!("serve-soak: clean");
    Ok(())
}

/// Parse the soak's `slow.jsonl` and require every record to attribute
/// at least 95% of its wall time to named phases. Returns the record
/// count and the worst attribution share.
fn check_slow_log(flight_dir: &std::path::Path) -> Result<(usize, f64), String> {
    let path = flight_dir.join("slow.jsonl");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (flight recorder wrote no slow log)", path.display()))?;
    let mut records = 0usize;
    let mut min_share = f64::INFINITY;
    for (i, line) in text.lines().enumerate() {
        let doc = json::parse(line).map_err(|e| format!("slow.jsonl line {}: {e}", i + 1))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or(format!("slow.jsonl line {}: no \"{key}\"", i + 1))
        };
        let total = field("total_nanos")?;
        let attributed = field("attributed_nanos")?;
        // Phase spans sit inside the request's wall clock, so the
        // share tops out at ~1 (modulo timer granularity).
        let share = attributed as f64 / total.max(1) as f64;
        if share < 0.95 {
            return Err(format!(
                "slow.jsonl line {}: only {:.1}% of {} ns attributed to phases: {line}",
                i + 1,
                share * 100.0,
                total
            ));
        }
        min_share = min_share.min(share);
        records += 1;
    }
    if records == 0 {
        return Err("slow.jsonl is empty: the soak produced no slow records".to_string());
    }
    Ok((records, min_share))
}

/// One begin/end/instant event, reduced to what validation needs.
struct ChromeEvent {
    name: String,
    phase: char,
    ts: f64,
    tid: u64,
}

fn chrome_events(doc: &JsonValue, path: &str) -> Result<Vec<ChromeEvent>, String> {
    let items = doc
        .as_array()
        .ok_or(format!("{path}: top level is not an array"))?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let field = |key: &str| {
                item.get(key)
                    .ok_or(format!("{path}: event {i} has no \"{key}\""))
            };
            let phase = match field("ph")?.as_str() {
                Some(p) if p.len() == 1 => p.chars().next().expect("one char"),
                _ => return Err(format!("{path}: event {i} has a malformed \"ph\"")),
            };
            Ok(ChromeEvent {
                name: field("name")?
                    .as_str()
                    .ok_or(format!("{path}: event {i} \"name\" is not a string"))?
                    .to_string(),
                phase,
                ts: field("ts")?
                    .as_f64()
                    .ok_or(format!("{path}: event {i} \"ts\" is not a number"))?,
                tid: field("tid")?
                    .as_u64()
                    .ok_or(format!("{path}: event {i} \"tid\" is not an integer"))?,
            })
        })
        .collect()
}

fn trace_check(args: &[String]) -> Result<(), String> {
    let [path]: [&String; 1] = args
        .iter()
        .collect::<Vec<_>>()
        .try_into()
        .map_err(|_| "trace-check requires exactly one FILE".to_string())?;
    let events = chrome_events(&load(path)?, path)?;

    // Per-thread: timestamps non-decreasing, B/E balanced and nested
    // (every E closes the innermost open B of the same name).
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    let mut spans = 0usize;
    let mut instants = 0usize;
    for (i, event) in events.iter().enumerate() {
        if let Some(prev) = last_ts.insert(event.tid, event.ts) {
            if event.ts < prev {
                return Err(format!(
                    "{path}: event {i} ({}) goes back in time on tid {} ({} < {prev})",
                    event.name, event.tid, event.ts
                ));
            }
        }
        let stack = stacks.entry(event.tid).or_default();
        match event.phase {
            'B' => stack.push(event.name.clone()),
            'E' => match stack.pop() {
                Some(open) if open == event.name => spans += 1,
                Some(open) => {
                    return Err(format!(
                        "{path}: event {i} ends \"{}\" but \"{open}\" is open on tid {}",
                        event.name, event.tid
                    ))
                }
                None => {
                    return Err(format!(
                        "{path}: event {i} ends \"{}\" with nothing open on tid {}",
                        event.name, event.tid
                    ))
                }
            },
            'i' => instants += 1,
            other => return Err(format!("{path}: event {i} has unknown phase '{other}'")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("{path}: \"{open}\" never ends on tid {tid}"));
        }
    }
    println!(
        "{path}: valid Chrome trace ({spans} spans, {instants} instants, {} threads)",
        stacks.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_forms_parse() {
        assert_eq!(parse_percent("5").unwrap(), 5.0);
        assert_eq!(parse_percent("5%").unwrap(), 5.0);
        assert_eq!(parse_percent("2.5").unwrap(), 2.5);
        assert!(parse_percent("-1").is_err());
        assert!(parse_percent("abc").is_err());
    }

    fn bench_doc(entries: &[(&str, f64)]) -> JsonValue {
        JsonValue::Object(vec![(
            "results_mbps".to_string(),
            JsonValue::Object(
                entries
                    .iter()
                    .map(|(n, v)| (n.to_string(), JsonValue::Number(*v)))
                    .collect(),
            ),
        )])
    }

    #[test]
    fn results_extraction_reads_both_number_shapes() {
        let doc = json::parse(r#"{"results_mbps": {"a": 10, "b": 10.5}}"#).unwrap();
        let results = results_mbps(&doc, "x").unwrap();
        assert_eq!(results, vec![("a".into(), 10.0), ("b".into(), 10.5)]);
        assert!(results_mbps(&bench_doc(&[]), "x").unwrap().is_empty());
        assert!(results_mbps(&json::parse("{}").unwrap(), "x").is_err());
    }

    #[test]
    fn balanced_trace_validates() {
        let doc = json::parse(
            r#"[
                {"name": "outer", "cat": "isobar", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
                {"name": "inner", "cat": "isobar", "ph": "B", "ts": 2, "pid": 1, "tid": 1},
                {"name": "mark", "cat": "isobar", "ph": "i", "ts": 3, "pid": 1, "tid": 1, "s": "t"},
                {"name": "inner", "cat": "isobar", "ph": "E", "ts": 4, "pid": 1, "tid": 1},
                {"name": "outer", "cat": "isobar", "ph": "E", "ts": 5, "pid": 1, "tid": 1}
            ]"#,
        )
        .unwrap();
        let events = chrome_events(&doc, "x").unwrap();
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn unbalanced_or_disordered_traces_are_rejected() {
        // chrome_events accepts the shape; trace_check logic rejects.
        // Exercise through the stack walk by writing temp files.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("isobar-bench-trace-{}.json", std::process::id()));
        let cases = [
            // E without B.
            r#"[{"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 1}]"#,
            // B never closed.
            r#"[{"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1}]"#,
            // Mismatched nesting.
            r#"[
                {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
                {"name": "b", "ph": "B", "ts": 2, "pid": 1, "tid": 1},
                {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
                {"name": "b", "ph": "E", "ts": 4, "pid": 1, "tid": 1}
            ]"#,
            // Time goes backwards within a thread.
            r#"[
                {"name": "a", "ph": "B", "ts": 5, "pid": 1, "tid": 1},
                {"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 1}
            ]"#,
        ];
        for case in cases {
            std::fs::write(&path, case).unwrap();
            assert!(
                trace_check(&[path.display().to_string()]).is_err(),
                "accepted: {case}"
            );
        }
        // Interleaved threads are fine: stacks are per-tid.
        std::fs::write(
            &path,
            r#"[
                {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
                {"name": "b", "ph": "B", "ts": 1, "pid": 1, "tid": 2},
                {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 1},
                {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 2}
            ]"#,
        )
        .unwrap();
        trace_check(&[path.display().to_string()]).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn diff_gates_on_threshold() {
        let dir = std::env::temp_dir();
        let old = dir.join(format!("isobar-bench-old-{}.json", std::process::id()));
        let new = dir.join(format!("isobar-bench-new-{}.json", std::process::id()));
        std::fs::write(&old, r#"{"results_mbps": {"a": 100.0, "b": 50.0}}"#).unwrap();

        // b dropped 4%: inside the default 5% budget.
        std::fs::write(&new, r#"{"results_mbps": {"a": 100.0, "b": 48.0}}"#).unwrap();
        let paths = [old.display().to_string(), new.display().to_string()];
        diff(&paths).unwrap();

        // b dropped 10%: beyond 5%, but allowed at 15%.
        std::fs::write(&new, r#"{"results_mbps": {"a": 100.0, "b": 45.0}}"#).unwrap();
        assert!(diff(&paths).is_err());
        let relaxed = [
            paths[0].clone(),
            paths[1].clone(),
            "--max-regress".to_string(),
            "15%".to_string(),
        ];
        diff(&relaxed).unwrap();

        // Disjoint result sets cannot be gated.
        std::fs::write(&new, r#"{"results_mbps": {"c": 45.0}}"#).unwrap();
        assert!(diff(&paths).is_err());

        for p in [&old, &new] {
            let _ = std::fs::remove_file(p);
        }
    }
}
