//! Corrupt-input corpus: one hand-built specimen per documented defect
//! class of the batch container and the stream framing, each asserting
//! the *specific* typed error the format documentation promises (see
//! `docs/FORMAT.md`, "Error taxonomy & corruption handling").
//!
//! The fuzz harness (`isobar-fuzz-harness`) proves the blanket property
//! — no panic, bounded allocation, *some* `Err` — over random
//! mutations; this corpus pins down the contract for each known defect
//! so an error-path regression changes a named test, not a fuzz
//! statistic.

use isobar::telemetry::{Counter, ENABLED};
use isobar::{
    IsobarCompressor, IsobarError, IsobarOptions, IsobarReader, IsobarWriter, PipelineScratch,
    Preference, Recorder,
};
use std::io::Read;

/// Container header layout (all offsets from `container.rs`).
const HEADER_LEN: usize = 28;
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_WIDTH: usize = 5;
const OFF_CODEC: usize = 6;
const OFF_LEVEL: usize = 7;
const OFF_LINEARIZATION: usize = 8;
const OFF_CHUNK_ELEMENTS: usize = 12;
const OFF_TOTAL_LEN: usize = 16;
const OFF_CHECKSUM: usize = 24;

/// Chunk record layout (version 2), relative to the record's start.
const CHUNK_OFF_MODE: usize = 0;
const CHUNK_OFF_ELEMENTS: usize = 1;
const CHUNK_OFF_MASK: usize = 5;
const CHUNK_OFF_COMP_LEN: usize = 13;
const CHUNK_OFF_CHECKSUM: usize = 29;
const CHUNK_HEADER_LEN: usize = 37;

fn options() -> IsobarOptions {
    IsobarOptions {
        preference: Preference::Speed,
        chunk_elements: 256,
        ..Default::default()
    }
}

/// Mixed data: high columns predictable, low columns noisy, so chunks
/// come out Partitioned with a proper split mask.
fn mixed_data(elements: usize) -> Vec<u8> {
    (0..elements as u64)
        .flat_map(|i| (((i / 7) << 32) | (i.wrapping_mul(0x9E37_79B9) & 0xFFFF_FFFF)).to_le_bytes())
        .collect()
}

/// Pure noise: no column clears the analyzer threshold, so chunks come
/// out Passthrough (mask 0, no incompressible payload).
fn noise_data(elements: usize) -> Vec<u8> {
    // splitmix64: every output byte is high-entropy, so no column
    // clears the analyzer threshold.
    let mut state = 0x0123_4567_89AB_CDEFu64;
    (0..elements)
        .flat_map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)).to_le_bytes()
        })
        .collect()
}

/// A valid container whose first chunk is Partitioned.
fn partitioned_container() -> (Vec<u8>, Vec<u8>) {
    let data = mixed_data(1024);
    let container = IsobarCompressor::new(options())
        .compress(&data, 8)
        .expect("compress");
    assert_eq!(
        container[HEADER_LEN + CHUNK_OFF_MODE],
        1,
        "specimen must start with a Partitioned chunk"
    );
    (container, data)
}

/// A valid container whose first chunk is Passthrough.
fn passthrough_container() -> (Vec<u8>, Vec<u8>) {
    let data = noise_data(1024);
    let container = IsobarCompressor::new(options())
        .compress(&data, 8)
        .expect("compress");
    assert_eq!(
        container[HEADER_LEN + CHUNK_OFF_MODE],
        0,
        "specimen must start with a Passthrough chunk"
    );
    (container, data)
}

/// Decompress through the telemetry-recording entry point and return
/// the error alongside the corrupt-rejection count.
fn decompress_counted(container: &[u8]) -> (IsobarError, u64) {
    let mut recorder = Recorder::new();
    let err = IsobarCompressor::default()
        .decompress_recorded(container, &mut PipelineScratch::new(), &mut recorder)
        .expect_err("corrupt specimen must be rejected");
    (
        err,
        recorder
            .snapshot()
            .counter(Counter::ContainerCorruptRejected),
    )
}

/// Like [`decompress_counted`], but returns the checksum-mismatch
/// counter instead of the general rejection counter.
fn decompress_checksum_counted(container: &[u8]) -> (IsobarError, u64) {
    let mut recorder = Recorder::new();
    let err = IsobarCompressor::default()
        .decompress_recorded(container, &mut PipelineScratch::new(), &mut recorder)
        .expect_err("corrupt specimen must be rejected");
    (
        err,
        recorder.snapshot().counter(Counter::ChecksumMismatches),
    )
}

/// Decompress with integrity verification disabled — the path that
/// must fall through to the structural checks a checksum would
/// otherwise mask.
fn decompress_unverified(container: &[u8]) -> IsobarError {
    let opts = IsobarOptions {
        verify: false,
        ..Default::default()
    };
    IsobarCompressor::new(opts)
        .decompress_recorded(container, &mut PipelineScratch::new(), &mut Recorder::new())
        .expect_err("corrupt specimen must be rejected")
}

/// Strip `At` wrappers to reach the underlying defect.
fn unwrap_at(err: IsobarError) -> IsobarError {
    match err {
        IsobarError::At { source, .. } => *source,
        other => other,
    }
}

#[track_caller]
fn assert_corrupt(container: &[u8], expected: &str) {
    let (err, rejected) = decompress_counted(container);
    match unwrap_at(err) {
        IsobarError::Corrupt(what) => assert_eq!(what, expected),
        other => panic!("expected Corrupt({expected:?}), got {other:?}"),
    }
    if ENABLED {
        assert_eq!(rejected, 1, "rejection must bump the telemetry counter");
    }
}

// ---------------------------------------------------------------------
// Container header defects
// ---------------------------------------------------------------------

#[test]
fn container_bad_magic() {
    let (mut c, _) = partitioned_container();
    c[OFF_MAGIC] = b'X';
    assert_corrupt(&c, "bad magic");
}

#[test]
fn container_truncated_header() {
    let (c, _) = partitioned_container();
    let (err, rejected) = decompress_counted(&c[..HEADER_LEN - 1]);
    assert!(matches!(unwrap_at(err), IsobarError::Truncated));
    if ENABLED {
        assert_eq!(rejected, 1);
    }
}

#[test]
fn container_unsupported_version() {
    let (mut c, _) = partitioned_container();
    c[OFF_VERSION] = 99;
    assert_corrupt(&c, "unsupported version");
}

#[test]
fn container_bad_width() {
    let (mut c, _) = partitioned_container();
    c[OFF_WIDTH] = 0;
    assert_corrupt(&c, "bad element width");
    let (mut c, _) = partitioned_container();
    c[OFF_WIDTH] = 65;
    assert_corrupt(&c, "bad element width");
}

#[test]
fn container_unknown_codec() {
    let (mut c, _) = partitioned_container();
    c[OFF_CODEC] = 0xEE;
    let (err, _) = decompress_counted(&c);
    assert!(matches!(unwrap_at(err), IsobarError::Codec(_)));
}

#[test]
fn container_bad_level_byte() {
    let (mut c, _) = partitioned_container();
    c[OFF_LEVEL] = 9;
    assert_corrupt(&c, "bad level byte");
}

#[test]
fn container_bad_linearization() {
    let (mut c, _) = partitioned_container();
    c[OFF_LINEARIZATION] = 0xEE;
    assert_corrupt(&c, "bad linearization");
}

#[test]
fn container_zero_chunk_size() {
    let (mut c, _) = partitioned_container();
    c[OFF_CHUNK_ELEMENTS..OFF_CHUNK_ELEMENTS + 4].copy_from_slice(&0u32.to_le_bytes());
    assert_corrupt(&c, "zero chunk size");
}

#[test]
fn container_inflated_total_len_is_truncation() {
    // A total_len beyond what the chunk records reassemble makes the
    // parser expect more records than the buffer holds.
    let (mut c, _) = partitioned_container();
    c[OFF_TOTAL_LEN..OFF_TOTAL_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let (err, _) = decompress_counted(&c);
    assert!(matches!(unwrap_at(err), IsobarError::Truncated));
}

#[test]
fn container_shrunk_total_len_is_length_mismatch() {
    // A total_len short of the records' sum (but not on a chunk
    // boundary) survives record parsing and trips the reassembly check.
    let (mut c, _) = partitioned_container();
    c[OFF_TOTAL_LEN..OFF_TOTAL_LEN + 8].copy_from_slice(&7u64.to_le_bytes());
    assert_corrupt(&c, "reassembled length mismatch");
}

// ---------------------------------------------------------------------
// Chunk record defects (first record starts at HEADER_LEN; every error
// must carry that byte offset via `IsobarError::At`)
// ---------------------------------------------------------------------

#[test]
fn chunk_bad_mode_byte_reports_offset() {
    let (mut c, _) = partitioned_container();
    c[HEADER_LEN + CHUNK_OFF_MODE] = 7;
    let (err, _) = decompress_counted(&c);
    match err {
        IsobarError::At { offset, source } => {
            assert_eq!(offset, HEADER_LEN as u64);
            assert!(matches!(*source, IsobarError::Corrupt("bad chunk mode")));
        }
        other => panic!("expected At-wrapped error, got {other:?}"),
    }
    // The offset must survive into the rendered message.
    let (err, _) = decompress_counted(&c);
    assert!(err.to_string().contains("at byte offset 28"));
}

#[test]
fn chunk_oversized_element_count() {
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_ELEMENTS;
    c[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_corrupt(&c, "chunk exceeds header chunk size");
}

#[test]
fn chunk_mask_wider_than_element() {
    let (mut c, _) = partitioned_container();
    // Set mask bit 63; the container was written with width 8.
    c[HEADER_LEN + CHUNK_OFF_MASK + 7] |= 0x80;
    assert_corrupt(&c, "column mask wider than element");
}

#[test]
fn chunk_passthrough_with_column_mask() {
    // Flip a Partitioned record's mode byte to Passthrough; its mask
    // stays set, which no valid passthrough chunk carries.
    let (mut c, _) = partitioned_container();
    c[HEADER_LEN + CHUNK_OFF_MODE] = 0;
    assert_corrupt(&c, "passthrough chunk with column mask");
}

#[test]
fn chunk_incompressible_length_mismatch() {
    // Shrink the claimed element count: expected incompressible length
    // (elements × incompressible columns) no longer matches the field.
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_ELEMENTS;
    let claimed = u32::from_le_bytes(c[at..at + 4].try_into().unwrap());
    c[at..at + 4].copy_from_slice(&(claimed - 1).to_le_bytes());
    assert_corrupt(&c, "incompressible length mismatch");
}

#[test]
fn chunk_inflated_comp_len_is_truncation() {
    // comp_len far beyond the buffer: the record claims payload bytes
    // the container cannot back.
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_COMP_LEN;
    c[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let (err, _) = decompress_counted(&c);
    assert!(matches!(unwrap_at(err), IsobarError::Truncated));
}

#[test]
fn chunk_comp_len_overflow_is_rejected() {
    // comp_len + incomp_len overflowing usize must be caught before any
    // slicing arithmetic.
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_COMP_LEN;
    c[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let (err, _) = decompress_counted(&c);
    match unwrap_at(err) {
        IsobarError::Corrupt(what) => assert_eq!(what, "chunk length overflow"),
        IsobarError::Truncated => {} // 32-bit usize path saturates earlier
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn chunk_truncated_payload() {
    let (c, _) = partitioned_container();
    let (err, _) = decompress_counted(&c[..c.len() - 1]);
    assert!(matches!(unwrap_at(err), IsobarError::Truncated));
}

#[test]
fn chunk_empty_record_rejected() {
    // A Passthrough record with elements == 0 passes structural
    // validation (0 × anything incompressible bytes) but would make the
    // reassembly loop spin forever. With verification on, the chunk
    // checksum catches the tampered header first; with it off, the
    // pipeline must still reject the record by name.
    let (mut c, _) = passthrough_container();
    let at = HEADER_LEN + CHUNK_OFF_ELEMENTS;
    c[at..at + 4].copy_from_slice(&0u32.to_le_bytes());
    let (err, _) = decompress_counted(&c);
    assert!(err.is_checksum_mismatch());
    match unwrap_at(decompress_unverified(&c)) {
        IsobarError::Corrupt(what) => assert_eq!(what, "empty chunk record"),
        other => panic!("expected Corrupt(\"empty chunk record\"), got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Payload / checksum defects
// ---------------------------------------------------------------------

#[test]
fn corrupt_verbatim_payload_fails_chunk_checksum() {
    // Flipping a byte in the first chunk's *incompressible* (verbatim)
    // region decodes cleanly structurally; the per-chunk xxhash64
    // pinpoints the damaged chunk by its record offset.
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_COMP_LEN;
    let comp_len = u64::from_le_bytes(c[at..at + 8].try_into().unwrap()) as usize;
    let first_incomp = HEADER_LEN + CHUNK_HEADER_LEN + comp_len;
    c[first_incomp] ^= 0xFF;
    let (err, mismatches) = decompress_checksum_counted(&c);
    match err {
        IsobarError::ChecksumMismatch {
            offset,
            expected,
            actual,
        } => {
            assert_eq!(offset, HEADER_LEN as u64, "first record's offset");
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    if ENABLED {
        assert_eq!(mismatches, 1, "mismatch must bump its own counter");
    }
}

#[test]
fn corrupt_compressed_payload_fails_chunk_checksum() {
    // Same contract for the solver (compressed) payload region.
    let (mut c, _) = partitioned_container();
    c[HEADER_LEN + CHUNK_HEADER_LEN] ^= 0x01;
    let (err, mismatches) = decompress_checksum_counted(&c);
    match err {
        IsobarError::ChecksumMismatch { offset, .. } => {
            assert_eq!(offset, HEADER_LEN as u64);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    if ENABLED {
        assert_eq!(mismatches, 1);
    }
}

#[test]
fn corrupt_chunk_checksum_field_is_detected() {
    // Damage to the checksum *field itself* is indistinguishable from
    // payload damage and must be reported the same way.
    let (mut c, _) = partitioned_container();
    c[HEADER_LEN + CHUNK_OFF_CHECKSUM] ^= 0xFF;
    let (err, _) = decompress_checksum_counted(&c);
    assert!(matches!(
        err,
        IsobarError::ChecksumMismatch { offset: 28, .. }
    ));
}

#[test]
fn corrupt_container_checksum_field_is_detected() {
    // The whole-stream Adler-32 in the container header still guards
    // reassembly end-to-end; its mismatch points at the field itself.
    let (mut c, _) = partitioned_container();
    c[OFF_CHECKSUM] ^= 0xFF;
    let (err, _) = decompress_counted(&c);
    assert!(matches!(
        err,
        IsobarError::ChecksumMismatch {
            offset: 24, // OFF_CHECKSUM
            ..
        }
    ));
}

#[test]
fn verify_off_skips_payload_checksums() {
    // With verification disabled, a chunk whose payload bytes are
    // damaged but still structurally decodable is *not* rejected by
    // checksum — the knob exists so salvage and benchmarks can opt out.
    let (mut c, _) = partitioned_container();
    let at = HEADER_LEN + CHUNK_OFF_COMP_LEN;
    let comp_len = u64::from_le_bytes(c[at..at + 8].try_into().unwrap()) as usize;
    let first_incomp = HEADER_LEN + CHUNK_HEADER_LEN + comp_len;
    c[first_incomp] ^= 0xFF;
    let opts = IsobarOptions {
        verify: false,
        ..Default::default()
    };
    // Verbatim-region damage decodes without error once checksums are
    // off (the bytes are copied through, silently wrong) — exactly why
    // `verify` defaults to on.
    let out = IsobarCompressor::new(opts)
        .decompress(&c)
        .expect("verify-off must not reject on checksum");
    assert!(!out.is_empty());
}

#[test]
fn intact_specimens_round_trip() {
    // The corpus is only meaningful if the uncorrupted specimens are
    // actually valid.
    for (container, data) in [partitioned_container(), passthrough_container()] {
        let out = IsobarCompressor::default()
            .decompress(&container)
            .expect("pristine specimen decodes");
        assert_eq!(out, data);
    }
}

// ---------------------------------------------------------------------
// Stream framing defects
// ---------------------------------------------------------------------

const STREAM_HEADER_LEN: usize = 9;
const STREAM_TRAILER_LEN: usize = 13;

fn stream_bytes() -> (Vec<u8>, Vec<u8>) {
    let data = mixed_data(1024);
    let mut writer = IsobarWriter::new(Vec::new(), 8, options()).expect("writer");
    std::io::Write::write_all(&mut writer, &data).expect("write");
    let bytes = writer.finish().expect("finish");
    (bytes, data)
}

/// Drive a corrupt stream to its error and return it with the reader's
/// corrupt-rejection count at the moment of failure.
fn stream_error(bytes: &[u8]) -> (IsobarError, u64) {
    let mut reader = IsobarReader::new(bytes).expect("header must parse");
    let mut sink = Vec::new();
    let io_err = reader
        .read_to_end(&mut sink)
        .expect_err("corrupt stream must be rejected");
    let err = io_err
        .get_ref()
        .and_then(|r| r.downcast_ref::<IsobarError>())
        .expect("stream errors carry a typed IsobarError")
        .clone();
    (
        err,
        reader.telemetry().counter(Counter::StreamCorruptRejected),
    )
}

#[test]
fn stream_bad_magic() {
    let (mut s, _) = stream_bytes();
    s[0] = b'X';
    assert!(matches!(
        IsobarReader::new(&s[..]),
        Err(IsobarError::Corrupt("bad stream magic"))
    ));
}

#[test]
fn stream_unsupported_version() {
    let (mut s, _) = stream_bytes();
    s[4] = 42;
    assert!(matches!(
        IsobarReader::new(&s[..]),
        Err(IsobarError::Corrupt("unsupported stream version"))
    ));
}

#[test]
fn stream_bad_marker_reports_offset_and_counts() {
    let (mut s, _) = stream_bytes();
    s[STREAM_HEADER_LEN] = 0xEE; // first frame marker
    let (err, rejected) = stream_error(&s);
    match err {
        IsobarError::At { offset, source } => {
            assert_eq!(offset, STREAM_HEADER_LEN as u64);
            assert!(matches!(*source, IsobarError::Corrupt("bad stream marker")));
        }
        other => panic!("expected At-wrapped error, got {other:?}"),
    }
    if ENABLED {
        assert_eq!(rejected, 1);
    }
}

#[test]
fn stream_torn_trailer() {
    let (s, _) = stream_bytes();
    let torn = &s[..s.len() - STREAM_TRAILER_LEN + 3];
    let (err, rejected) = stream_error(torn);
    assert!(matches!(unwrap_at(err), IsobarError::Truncated));
    if ENABLED {
        assert_eq!(rejected, 1);
    }
}

#[test]
fn stream_trailer_length_mismatch() {
    let (mut s, _) = stream_bytes();
    let total_at = s.len() - STREAM_TRAILER_LEN + 1; // skip end marker
    let total = u64::from_le_bytes(s[total_at..total_at + 8].try_into().unwrap());
    s[total_at..total_at + 8].copy_from_slice(&(total + 1).to_le_bytes());
    let (err, _) = stream_error(&s);
    assert!(matches!(
        unwrap_at(err),
        IsobarError::Corrupt("stream length mismatch")
    ));
}

#[test]
fn stream_trailer_checksum_mismatch() {
    let (mut s, _) = stream_bytes();
    let last = s.len() - 1; // high byte of the trailer Adler-32
    s[last] ^= 0xFF;
    let (err, rejected) = stream_error(&s);
    assert!(matches!(
        unwrap_at(err),
        IsobarError::ChecksumMismatch { .. }
    ));
    if ENABLED {
        assert_eq!(rejected, 1);
    }
}

#[test]
fn stream_frame_payload_flip_fails_chunk_checksum() {
    // A bit flip inside the first frame's payload trips that frame's
    // chunk checksum; the error carries the record's stream offset
    // (header + 1 marker byte).
    let (mut s, _) = stream_bytes();
    let at = STREAM_HEADER_LEN + 1 + CHUNK_HEADER_LEN; // first payload byte
    s[at] ^= 0x01;
    let (err, rejected) = stream_error(&s);
    match unwrap_at(err) {
        IsobarError::ChecksumMismatch { offset, .. } => {
            assert_eq!(offset, (STREAM_HEADER_LEN + 1) as u64);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    if ENABLED {
        assert_eq!(rejected, 1);
    }
}

#[test]
fn intact_stream_round_trips() {
    let (s, data) = stream_bytes();
    let out = IsobarReader::new(&s[..])
        .expect("header")
        .read_to_vec()
        .expect("pristine stream decodes");
    assert_eq!(out, data);
}
