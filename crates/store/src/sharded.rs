//! Sharded concurrent store writer with overlapped codec and I/O.
//!
//! The single-file [`crate::StoreWriter`] serializes compression and
//! disk writes behind one cursor; in-situ checkpointing wants neither.
//! [`ShardedStoreWriter`] owns a version-3 store *directory*: each
//! shard is an independent segment file with its own two-stage
//! pipeline — a codec thread running the ISOBAR pipeline and an I/O
//! thread appending records — connected by a bounded (double-buffered)
//! queue, so shard `k`'s compression of variable `n+1` overlaps the
//! `write`/`fdatasync` of variable `n`, and different shards never
//! contend at all.
//!
//! # Two-phase commit protocol
//!
//! Segments are journaled as `<segment>.wip` shadow files, exactly
//! like the single-file writer; the manifest extends that protocol to
//! a directory:
//!
//! 1. every shard's records append to `g<gen>-s<shard>.seg.wip`. The
//!    I/O thread group-commits: whenever its queue drains (the codec
//!    stage is the bottleneck) it `fdatasync`s the backlog, hiding the
//!    flush behind compression of the next record;
//! 2. at close, each I/O thread seals its segment — trailer append,
//!    then a final `fdatasync` covering the residue — so every record
//!    a manifest could reference is durable before any manifest
//!    exists;
//! 3. **phase 1**: each sealed `.wip` is renamed to its final segment
//!    name and the directory is fsynced. Segment names embed the
//!    generation, so these renames can never clobber a committed file;
//! 4. **phase 2**: the new manifest (prior generation's segment table
//!    and index, plus this writer's) is written to `MANIFEST.wip`,
//!    fsynced, renamed over `MANIFEST`, and the directory is fsynced.
//!
//! The manifest rename is the single commit point. A crash before it
//! leaves the committed store untouched — at worst orphan segments or
//! `.wip` files that no manifest references, which fsck reports and
//! compaction sweeps. A crash after it leaves the new store fully
//! committed. The crash-injection harness in `isobar-fuzz-harness`
//! proves the old-or-new invariant at every fs-op boundary of this
//! protocol.
//!
//! # Append and supersede semantics
//!
//! Opening an existing version-3 directory appends a new generation:
//! committed segments are never rewritten, the new manifest simply
//! references them alongside the fresh ones. Unlike the single-file
//! writer, re-putting an existing `(step, variable)` is not an error —
//! the later entry supersedes the earlier one (readers resolve
//! last-wins) and compaction reclaims the dead bytes.

use crate::error::StoreError;
use crate::format::{
    encode_record_header, entry_checksum, segment_file_name, IndexEntry, MANIFEST_FILE,
    SEGMENT_HEADER_LEN,
};
use crate::manifest::{
    encode_segment_header, encode_segment_trailer, Manifest, ManifestEntry, SegmentMeta,
};
use crate::vfs::{RealFs, StoreFile, StoreFs};
use crate::writer::wip_path;
use isobar::telemetry::Counter;
use isobar::{IsobarCompressor, IsobarOptions, PipelineScratch, Recorder, TelemetrySnapshot};
use isobar_codecs::xxhash::xxh64;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::thread::JoinHandle;

/// Concurrency knobs for a [`ShardedStoreWriter`]. See `docs/STORE.md`
/// for tuning guidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedOptions {
    /// Number of independent segment writers. Each shard costs two
    /// threads (codec + I/O) and one open file.
    pub shards: u16,
    /// Bounded depth of each shard's producer→codec and codec→I/O
    /// queues. 1 is a classic double buffer (compress `n+1` while
    /// writing `n`); deeper queues absorb burstier producers.
    pub queue_depth: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 4,
            queue_depth: 2,
        }
    }
}

/// What a committed generation looks like, returned by
/// [`ShardedStoreWriter::close`].
#[derive(Debug, Clone)]
pub struct ShardedCommitReport {
    /// Generation number the manifest now carries.
    pub generation: u64,
    /// Segment files newly committed by this writer (empty shards are
    /// discarded, not committed).
    pub segments_committed: usize,
    /// Entries this writer appended, in put order (offsets are
    /// segment-relative).
    pub new_entries: Vec<IndexEntry>,
    /// Total entries in the committed manifest, including prior
    /// generations and superseded ones.
    pub total_entries: usize,
    /// Entries in the committed manifest shadowed by a later put of
    /// the same `(step, variable)`.
    pub superseded_entries: usize,
    /// Merged telemetry from every shard plus the commit itself.
    pub telemetry: TelemetrySnapshot,
}

enum ShardJob {
    Compress {
        seq: u64,
        step: u32,
        name: String,
        data: Vec<u8>,
        width: usize,
    },
    Raw {
        seq: u64,
        step: u32,
        name: String,
        width: u8,
        container: Vec<u8>,
        raw_len: u64,
    },
}

struct Prepared {
    seq: u64,
    step: u32,
    name: String,
    width: u8,
    container: Vec<u8>,
    raw_len: u64,
}

struct SealedSegment {
    /// Offset at which the trailer begins (header + records).
    data_len: u64,
    record_count: u32,
    entries: Vec<(u64, IndexEntry)>,
}

struct ShardPipe {
    tx: Option<SyncSender<ShardJob>>,
    codec: Option<JoinHandle<Result<TelemetrySnapshot, StoreError>>>,
    io: Option<JoinHandle<Result<SealedSegment, StoreError>>>,
    wip: PathBuf,
    final_name: String,
}

/// Concurrent multi-writer checkpoint store over a version-3 sharded
/// directory. See the module docs for the commit protocol.
///
/// `put` takes `&self`, so one writer can be shared across producer
/// threads; every put routes to a shard by `(step, variable)` hash and
/// flows through that shard's codec→I/O pipeline.
///
/// # Example
///
/// ```no_run
/// use isobar_store::{ShardedOptions, ShardedStoreWriter, StoreReader};
/// use isobar::IsobarOptions;
///
/// # fn demo(density: &[u8]) -> Result<(), isobar_store::StoreError> {
/// let writer = ShardedStoreWriter::create(
///     "run.isst.d",
///     IsobarOptions::default(),
///     ShardedOptions { shards: 4, queue_depth: 2 },
/// )?;
/// writer.put(0, "density", density.to_vec(), 8)?;
/// let report = writer.close()?;
/// assert_eq!(report.new_entries.len(), 1);
///
/// let reader = StoreReader::open("run.isst.d")?;
/// assert_eq!(reader.get(0, "density")?, density);
/// # Ok(()) }
/// ```
pub struct ShardedStoreWriter<F: StoreFs = RealFs>
where
    F::File: 'static,
{
    fs: F,
    dir: PathBuf,
    generation: u64,
    prior: Manifest,
    pipes: Vec<ShardPipe>,
    seq: AtomicU64,
    committed: bool,
}

impl ShardedStoreWriter<RealFs> {
    /// Create (or append a new generation to) the version-3 store
    /// directory at `dir`; the generation commits on
    /// [`ShardedStoreWriter::close`].
    pub fn create(
        dir: impl AsRef<Path>,
        options: IsobarOptions,
        sharded: ShardedOptions,
    ) -> Result<Self, StoreError> {
        Self::create_in(RealFs, dir, options, sharded)
    }
}

impl<F: StoreFs> ShardedStoreWriter<F>
where
    F::File: 'static,
{
    /// [`ShardedStoreWriter::create`] on an explicit filesystem.
    pub fn create_in(
        fs: F,
        dir: impl AsRef<Path>,
        options: IsobarOptions,
        sharded: ShardedOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        let (prior, generation) = match fs.read_file(&dir.join(MANIFEST_FILE)) {
            Ok(bytes) => {
                let prior = Manifest::decode(&bytes, true)?;
                let generation = prior
                    .generation
                    .checked_add(1)
                    .ok_or(StoreError::Corrupt("store generation overflow"))?;
                (prior, generation)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Manifest::default(), 0),
            Err(e) => return Err(e.into()),
        };

        let shards = sharded.shards.max(1);
        let queue_depth = sharded.queue_depth.max(1);
        let mut pipes = Vec::with_capacity(shards as usize);
        for shard in 0..shards {
            let final_name = segment_file_name(generation, shard);
            let wip = wip_path(&dir.join(&final_name));
            let mut file = fs.create(&wip)?;
            file.write_all(&encode_segment_header(shard))?;

            let (tx, codec_rx) = sync_channel::<ShardJob>(queue_depth);
            let (io_tx, io_rx) = sync_channel::<Prepared>(queue_depth);
            let codec_options = options;
            let codec = std::thread::spawn(move || {
                let result = codec_loop(codec_rx, io_tx, codec_options, shard);
                isobar::trace::flush_thread();
                result
            });
            let io = std::thread::spawn(move || {
                let result = io_loop(io_rx, file, shard);
                isobar::trace::flush_thread();
                result
            });
            pipes.push(ShardPipe {
                tx: Some(tx),
                codec: Some(codec),
                io: Some(io),
                wip,
                final_name,
            });
        }
        Ok(ShardedStoreWriter {
            fs,
            dir,
            generation,
            prior,
            pipes,
            seq: AtomicU64::new(0),
            committed: false,
        })
    }

    /// The generation this writer will commit.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of shards (segment pipelines) this writer runs.
    pub fn shards(&self) -> usize {
        self.pipes.len()
    }

    fn route(&self, step: u32, name: &str) -> usize {
        (xxh64(name.as_bytes(), step as u64) % self.pipes.len() as u64) as usize
    }

    fn send(&self, shard: usize, job: ShardJob) -> Result<(), StoreError> {
        self.pipes[shard]
            .tx
            .as_ref()
            .expect("writer open until close")
            .send(job)
            .map_err(|_| StoreError::Corrupt("store shard worker terminated early"))
    }

    /// Queue one variable for compression and storage on its shard.
    /// Takes ownership of `data` so the producer can immediately reuse
    /// its own buffers; blocks only when the shard's bounded queues are
    /// full (back-pressure).
    ///
    /// Re-putting an existing `(step, name)` supersedes the earlier
    /// entry rather than failing. Errors from the shard pipeline
    /// surface at [`ShardedStoreWriter::close`]; a put after a shard
    /// died reports `Corrupt` rather than hanging.
    pub fn put(
        &self,
        step: u32,
        name: &str,
        data: Vec<u8>,
        width: usize,
    ) -> Result<(), StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::NameTooLong(name.len()));
        }
        let shard = self.route(step, name);
        self.send(
            shard,
            ShardJob::Compress {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                step,
                name: name.to_string(),
                data,
                width,
            },
        )
    }

    /// Append an already-compressed container as one record, bypassing
    /// the codec stage. Compaction, migration, and salvage use this to
    /// move records between stores without a decompress/recompress
    /// round trip. The container bytes are trusted as-is — pair with
    /// [`StoreReader::get_container`](crate::StoreReader::get_container)
    /// on a verifying reader.
    pub fn put_container(
        &self,
        step: u32,
        name: &str,
        width: u8,
        container: Vec<u8>,
        raw_len: u64,
    ) -> Result<(), StoreError> {
        if name.len() > u16::MAX as usize {
            return Err(StoreError::NameTooLong(name.len()));
        }
        let shard = self.route(step, name);
        self.send(
            shard,
            ShardJob::Raw {
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
                step,
                name: name.to_string(),
                width,
                container,
                raw_len,
            },
        )
    }

    /// Drain every shard, seal the segments, and run the two-phase
    /// manifest commit (see the module docs). Returns what was
    /// committed.
    ///
    /// A worker thread that *panicked* (rather than returning an
    /// error) is reported as [`StoreError::Corrupt`], and the
    /// generation is not committed — callers never see a propagated
    /// panic or a torn manifest. The `worker_panic` integration test
    /// injects a panicking filesystem to hold both join paths (and the
    /// equivalent swallow-and-sweep behavior of `Drop`) to this.
    pub fn close(mut self) -> Result<ShardedCommitReport, StoreError> {
        // Disconnect the producers; each codec thread drains and hands
        // off to its I/O thread, which seals (trailer + fdatasync).
        for pipe in &mut self.pipes {
            drop(pipe.tx.take());
        }
        let mut telemetry = TelemetrySnapshot::default();
        let mut first_err: Option<StoreError> = None;
        let mut sealed: Vec<Option<SealedSegment>> = Vec::with_capacity(self.pipes.len());
        for pipe in &mut self.pipes {
            match pipe.codec.take().expect("close called once").join() {
                Ok(Ok(snapshot)) => telemetry.merge(&snapshot),
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(StoreError::Corrupt("store shard codec panicked")))
                }
            }
            match pipe.io.take().expect("close called once").join() {
                Ok(Ok(segment)) => sealed.push(Some(segment)),
                Ok(Err(e)) => {
                    first_err = first_err.or(Some(e));
                    sealed.push(None);
                }
                Err(_) => {
                    first_err = first_err.or(Some(StoreError::Corrupt("store shard I/O panicked")));
                    sealed.push(None);
                }
            }
        }
        if let Some(e) = first_err {
            // Drop cleans up the .wip segments.
            return Err(e);
        }

        let _span = isobar::trace::span(
            isobar::trace::TraceTag::StoreManifestCommit,
            isobar::trace::NO_CHUNK,
        );

        // Phase 1: give every non-empty sealed segment its final name;
        // empty shards are discarded. One directory fsync makes the
        // renames durable before any manifest references them.
        let mut manifest = Manifest {
            generation: self.generation,
            segments: self.prior.segments.clone(),
            entries: self.prior.entries.clone(),
        };
        let mut new_entries: Vec<(u64, u16, IndexEntry)> = Vec::new();
        for (pipe, segment) in self.pipes.iter().zip(&mut sealed) {
            let segment = segment.take().expect("errors returned above");
            if segment.record_count == 0 {
                self.fs.remove_file(&pipe.wip)?;
                continue;
            }
            self.fs
                .rename(&pipe.wip, &self.dir.join(&pipe.final_name))?;
            let ordinal = manifest.segments.len() as u16;
            manifest.segments.push(SegmentMeta {
                file_name: pipe.final_name.clone(),
                data_len: segment.data_len,
                record_count: segment.record_count,
            });
            for (seq, entry) in segment.entries {
                new_entries.push((seq, ordinal, entry));
            }
        }
        self.fs.sync_dir(&self.dir)?;
        let segments_committed = manifest.segments.len() - self.prior.segments.len();

        // The merged index is ordered by put sequence so last-wins
        // supersede semantics match producer order deterministically.
        new_entries.sort_by_key(|(seq, _, _)| *seq);
        let report_entries: Vec<IndexEntry> =
            new_entries.iter().map(|(_, _, e)| e.clone()).collect();
        manifest.entries.extend(
            new_entries
                .into_iter()
                .map(|(_, segment, entry)| ManifestEntry { segment, entry }),
        );

        // Phase 2: shadow-write the manifest and atomically swap it in.
        // This rename is the commit point for the whole generation.
        let encoded = manifest.encode();
        let manifest_path = self.dir.join(MANIFEST_FILE);
        let manifest_wip = wip_path(&manifest_path);
        {
            let mut file = self.fs.create(&manifest_wip)?;
            file.write_all(&encoded)?;
            file.sync_data()?;
        }
        self.fs.rename(&manifest_wip, &manifest_path)?;
        self.fs.sync_dir(&self.dir)?;
        self.committed = true;

        let superseded = superseded_count(&manifest.entries);
        let mut recorder = Recorder::new();
        recorder.add(Counter::StoreSegmentsCommitted, segments_committed as u64);
        recorder.add(Counter::StoreManifestBytes, encoded.len() as u64);
        recorder.add(Counter::StoreSupersededEntries, superseded as u64);
        telemetry.merge(&recorder.snapshot());

        Ok(ShardedCommitReport {
            generation: self.generation,
            segments_committed,
            new_entries: report_entries,
            total_entries: manifest.entries.len(),
            superseded_entries: superseded,
            telemetry,
        })
    }
}

/// Entries shadowed by a later entry for the same `(step, name)`.
pub(crate) fn superseded_count(entries: &[ManifestEntry]) -> usize {
    let mut seen = std::collections::HashSet::new();
    entries
        .iter()
        .rev()
        .filter(|me| !seen.insert((me.entry.step, me.entry.name.clone())))
        .count()
}

fn codec_loop(
    rx: Receiver<ShardJob>,
    io_tx: SyncSender<Prepared>,
    options: IsobarOptions,
    shard: u16,
) -> Result<TelemetrySnapshot, StoreError> {
    let compressor = IsobarCompressor::new(options);
    let mut scratch = PipelineScratch::new();
    let mut recorder = Recorder::new();
    for job in rx {
        let prepared = match job {
            ShardJob::Compress {
                seq,
                step,
                name,
                data,
                width,
            } => {
                let _span =
                    isobar::trace::span(isobar::trace::TraceTag::StoreShardCompress, shard as u32);
                let container =
                    compressor.compress_recorded(&data, width, &mut scratch, &mut recorder)?;
                recorder.incr(Counter::StorePuts);
                recorder.add(Counter::StoreRawBytes, data.len() as u64);
                recorder.add(Counter::StoreContainerBytes, container.len() as u64);
                Prepared {
                    seq,
                    step,
                    name,
                    width: width as u8,
                    container,
                    raw_len: data.len() as u64,
                }
            }
            ShardJob::Raw {
                seq,
                step,
                name,
                width,
                container,
                raw_len,
            } => Prepared {
                seq,
                step,
                name,
                width,
                container,
                raw_len,
            },
        };
        if io_tx.send(prepared).is_err() {
            return Err(StoreError::Corrupt("store shard I/O thread terminated"));
        }
    }
    Ok(recorder.snapshot())
}

fn io_loop<File: StoreFile>(
    rx: Receiver<Prepared>,
    mut file: File,
    shard: u16,
) -> Result<SealedSegment, StoreError> {
    let mut offset = SEGMENT_HEADER_LEN as u64;
    let mut record_count = 0u32;
    let mut entries = Vec::new();
    let mut unsynced = false;
    loop {
        let next = match rx.try_recv() {
            Ok(p) => Some(p),
            Err(TryRecvError::Empty) => {
                // The codec stage is still compressing the next record
                // — exactly the window in which an fdatasync costs no
                // wall time. Group-commit the backlog now instead of
                // in one serialized flush at seal time. When records
                // arrive faster than the disk (try_recv keeps
                // succeeding), writes batch and the sync waits.
                // (No need to clear `unsynced`: every path that loops
                // again writes a record and re-arms it.)
                if unsynced {
                    file.sync_data()?;
                }
                rx.recv().ok()
            }
            Err(TryRecvError::Disconnected) => None,
        };
        let Some(p) = next else { break };
        let _span = isobar::trace::span(isobar::trace::TraceTag::StoreShardAppend, shard as u32);
        let header = encode_record_header(&p.name, p.step, p.width, p.container.len() as u64);
        file.write_all(&header)?;
        file.write_all(&p.container)?;
        unsynced = true;
        let container_offset = offset + header.len() as u64;
        offset = container_offset + p.container.len() as u64;
        record_count += 1;
        entries.push((
            p.seq,
            IndexEntry {
                name: p.name,
                step: p.step,
                width: p.width,
                offset: container_offset,
                container_len: p.container.len() as u64,
                raw_len: p.raw_len,
                checksum: entry_checksum(&p.container),
            },
        ));
    }
    // Seal: the trailer makes the segment self-describing, and the
    // fdatasync makes every record durable before close() lets any
    // manifest reference this segment.
    file.write_all(&encode_segment_trailer(offset, record_count))?;
    file.sync_data()?;
    Ok(SealedSegment {
        data_len: offset,
        record_count,
        entries,
    })
}

impl<F: StoreFs> Drop for ShardedStoreWriter<F>
where
    F::File: 'static,
{
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // Disconnect and let the shard threads finish so no file is
        // mid-write, then sweep every journal file. Errors are
        // swallowed — drop runs on error paths where some files may
        // never have existed.
        for pipe in &mut self.pipes {
            drop(pipe.tx.take());
        }
        for pipe in &mut self.pipes {
            if let Some(codec) = pipe.codec.take() {
                let _ = codec.join();
            }
            if let Some(io) = pipe.io.take() {
                let _ = io.join();
            }
            let _ = self.fs.remove_file(&pipe.wip);
        }
        let _ = self
            .fs
            .remove_file(&wip_path(&self.dir.join(MANIFEST_FILE)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;
    use isobar::Preference;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("isobar-sharded-{}-{name}", std::process::id()))
    }

    fn options() -> IsobarOptions {
        IsobarOptions {
            preference: Preference::Speed,
            chunk_elements: 10_000,
            ..Default::default()
        }
    }

    fn payload(len: usize, phase: u64) -> Vec<u8> {
        (0..len)
            .map(|i| (((i as u64).wrapping_mul(2654435761) >> (phase % 13)) & 0xFF) as u8)
            .collect()
    }

    #[test]
    fn sharded_round_trip_across_shards() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let writer = ShardedStoreWriter::create(
            &dir,
            options(),
            ShardedOptions {
                shards: 3,
                queue_depth: 2,
            },
        )
        .unwrap();
        let vars: Vec<(u32, String, Vec<u8>)> = (0..12u32)
            .map(|i| (i / 4, format!("var{}", i % 4), payload(16 * 1024, i as u64)))
            .collect();
        for (step, name, data) in &vars {
            writer.put(*step, name, data.clone(), 8).unwrap();
        }
        let report = writer.close().unwrap();
        assert_eq!(report.generation, 0);
        assert_eq!(report.new_entries.len(), 12);
        assert_eq!(report.total_entries, 12);
        assert_eq!(report.superseded_entries, 0);
        assert!(report.segments_committed >= 1);

        let reader = StoreReader::open(&dir).unwrap();
        assert_eq!(reader.version(), crate::format::V3_VERSION);
        for (step, name, data) in &vars {
            assert_eq!(&reader.get(*step, name).unwrap(), data);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_generation_appends_and_supersedes() {
        let dir = tmp("generations");
        let _ = std::fs::remove_dir_all(&dir);
        let first = payload(8 * 1024, 1);
        let second = payload(8 * 1024, 9);

        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        writer.put(0, "density", first.clone(), 8).unwrap();
        writer.put(0, "potential", payload(8 * 1024, 3), 8).unwrap();
        assert_eq!(writer.close().unwrap().generation, 0);

        // New generation: supersede density, add a new step.
        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        assert_eq!(writer.generation(), 1);
        writer.put(0, "density", second.clone(), 8).unwrap();
        writer.put(1, "density", payload(8 * 1024, 5), 8).unwrap();
        let report = writer.close().unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.total_entries, 4);
        assert_eq!(report.superseded_entries, 1);

        let reader = StoreReader::open(&dir).unwrap();
        assert_eq!(reader.get(0, "density").unwrap(), second, "last put wins");
        assert_eq!(reader.steps(), vec![0, 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_producers_share_one_writer() {
        let dir = tmp("concurrent");
        let _ = std::fs::remove_dir_all(&dir);
        let writer = ShardedStoreWriter::create(
            &dir,
            options(),
            ShardedOptions {
                shards: 4,
                queue_depth: 2,
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            for producer in 0..4u32 {
                let writer = &writer;
                scope.spawn(move || {
                    for step in 0..3u32 {
                        writer
                            .put(
                                step,
                                &format!("p{producer}"),
                                payload(8 * 1024, (producer * 3 + step) as u64),
                                8,
                            )
                            .unwrap();
                    }
                });
            }
        });
        let report = writer.close().unwrap();
        assert_eq!(report.new_entries.len(), 12);
        let reader = StoreReader::open(&dir).unwrap();
        for producer in 0..4u32 {
            for step in 0..3u32 {
                assert_eq!(
                    reader.get(step, &format!("p{producer}")).unwrap(),
                    payload(8 * 1024, (producer * 3 + step) as u64)
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_writer_leaves_no_wip_droppings() {
        let dir = tmp("dropped");
        let _ = std::fs::remove_dir_all(&dir);
        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        writer.put(0, "x", payload(4 * 1024, 2), 8).unwrap();
        drop(writer);
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "found {leftovers:?}");
        assert!(StoreReader::open(&dir).is_err(), "nothing was committed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_reports_commit_and_puts() {
        let dir = tmp("telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        writer.put(0, "a", payload(8 * 1024, 1), 8).unwrap();
        writer.put(0, "a", payload(8 * 1024, 2), 8).unwrap();
        let report = writer.close().unwrap();
        if isobar::telemetry::ENABLED {
            assert_eq!(report.telemetry.counter(Counter::StorePuts), 2);
            assert_eq!(report.telemetry.counter(Counter::StoreSupersededEntries), 1);
            assert!(report.telemetry.counter(Counter::StoreManifestBytes) > 0);
            assert!(report.telemetry.counter(Counter::StoreSegmentsCommitted) >= 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_names_are_rejected_up_front() {
        let dir = tmp("longname");
        let _ = std::fs::remove_dir_all(&dir);
        let writer =
            ShardedStoreWriter::create(&dir, options(), ShardedOptions::default()).unwrap();
        let long = "x".repeat(u16::MAX as usize + 1);
        assert!(matches!(
            writer.put(0, &long, vec![0u8; 8], 8),
            Err(StoreError::NameTooLong(_))
        ));
        drop(writer);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
