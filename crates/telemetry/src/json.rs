//! Minimal JSON reader/writer for telemetry snapshots.
//!
//! The workspace deliberately vendors no serialization framework, so
//! snapshots are written with a few formatting helpers and read back
//! with a small recursive-descent parser. The dialect is the subset
//! snapshots need — objects, arrays, strings, and unsigned integers —
//! plus `true`/`false`/`null` and signed/float numbers, which parse
//! but only integers convert via [`JsonValue::as_u64`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Object, as declaration-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
    /// Array.
    Array(Vec<JsonValue>),
    /// String (escapes decoded).
    String(String),
    /// Any number, kept as f64 (telemetry only ever writes u64s that
    /// fit f64's 53-bit mantissa in practice; exact u64s round-trip via
    /// the raw text, see [`JsonValue::as_u64`]).
    Number(f64),
    /// Exact unsigned integer (the common case for telemetry).
    Unsigned(u64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl JsonValue {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The elements of an array; `None` on anything else.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Unsigned(v) => Some(*v),
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (any JSON number qualifies; exact u64s
    /// beyond f64's 53-bit mantissa round).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            JsonValue::Unsigned(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} of JSON input",
            ch as char, *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, *pos)),
        None => Err("unexpected end of JSON input".to_string()),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy continuation bytes through.
                let start = *pos - 1;
                let len = utf8_len(c);
                let end = start + len;
                let slice = bytes
                    .get(start..end)
                    .ok_or_else(|| "truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(slice).map_err(|_| "invalid UTF-8")?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number")?;
    if let Ok(v) = text.parse::<u64>() {
        return Ok(JsonValue::Unsigned(v));
    }
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number '{text}'"))
}

/// Append `  "name": value` at `indent` levels (two spaces each), with
/// a trailing comma when `comma` is set.
pub fn field_u64(out: &mut String, indent: usize, name: &str, value: u64, comma: bool) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push('"');
    out.push_str(name);
    out.push_str("\": ");
    out.push_str(&value.to_string());
    if comma {
        out.push(',');
    }
    out.push('\n');
}

/// Append a compact `[1, 2, 3]` array.
pub fn array_u64(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": {"b": [1, 2, {"c": 3}]}, "d": "x\ny"}"#).unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("b"))
                .and_then(JsonValue::as_array)
                .map(|arr| arr.len()),
            Some(3)
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_str), Some("x\ny"));
    }

    #[test]
    fn exact_u64_values_survive() {
        let v = parse(&format!("{{\"big\": {}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("big").and_then(JsonValue::as_u64), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn floats_and_keywords_parse() {
        let v = parse(r#"{"f": -1.5e2, "t": true, "n": null}"#).unwrap();
        assert_eq!(v.get("f"), Some(&JsonValue::Number(-150.0)));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("f").and_then(JsonValue::as_u64), None);
    }

    #[test]
    fn as_f64_accepts_both_number_shapes() {
        let v = parse(r#"{"f": 2.5, "u": 40, "s": "nope"}"#).unwrap();
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("u").and_then(JsonValue::as_f64), Some(40.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_f64), None);
    }
}
