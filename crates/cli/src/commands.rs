//! Command implementations for the `isobar` CLI.

use crate::args::{Command, CompressOptions, StatsFormat};
use isobar::container::Header;
use isobar::{Analyzer, IsobarCompressor, IsobarOptions, Recorder, TelemetrySnapshot};
use std::fs;
use std::path::Path;

/// Run a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Compress {
            input,
            output,
            width,
            options,
            stream: false,
            quiet,
            stats,
            trace,
        } => traced(trace.as_deref(), || {
            compress(&input, &output, width, options, quiet, stats)
        }),
        Command::Compress {
            input,
            output,
            width,
            options,
            stream: true,
            quiet,
            stats,
            trace,
        } => traced(trace.as_deref(), || {
            compress_stream(&input, &output, width, options, quiet, stats)
        }),
        Command::Decompress {
            input,
            output,
            stream: false,
            stats,
            trace,
        } => traced(trace.as_deref(), || decompress(&input, &output, stats)),
        Command::Decompress {
            input,
            output,
            stream: true,
            stats,
            trace,
        } => traced(trace.as_deref(), || {
            decompress_stream(&input, &output, stats)
        }),
        Command::Analyze {
            input,
            width,
            tau,
            bits,
        } => analyze(&input, width, tau, bits),
        Command::Info { input } => info(&input),
    }
}

fn read(path: &Path) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    fs::write(path, bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Print a telemetry snapshot in the requested format. JSON and
/// Prometheus exposition go to stdout (they are the machine-readable
/// artifacts); the table goes to stderr alongside the human summary.
fn print_stats(snapshot: &TelemetrySnapshot, format: StatsFormat) {
    if !isobar::telemetry::ENABLED {
        eprintln!("note: this binary was built without telemetry; all stats are zero");
    }
    match format {
        StatsFormat::Json => println!("{}", snapshot.to_json()),
        StatsFormat::Table => eprintln!("{}", snapshot.render_table()),
        StatsFormat::Prometheus => print!("{}", snapshot.to_prometheus()),
    }
}

/// Run `body` with tracing active, then drain every thread's span
/// buffer and write the run's Chrome trace-event timeline to `path`.
/// With no `--trace` flag this is a plain passthrough. The trace file
/// is still written when `body` fails: a timeline of a failed run is
/// exactly what a debugging session wants.
fn traced(path: Option<&Path>, body: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    let Some(path) = path else {
        return body();
    };
    if !isobar::trace::ENABLED {
        eprintln!("note: this binary was built without tracing; the trace will be empty");
    }
    isobar::trace::reset();
    isobar::trace::set_active(true);
    let result = body();
    isobar::trace::set_active(false);
    let trace = isobar::trace::drain();
    write(path, trace.to_chrome_json().as_bytes())?;
    if trace.dropped_count() > 0 {
        eprintln!(
            "trace: ring buffers overflowed; {} oldest events dropped",
            trace.dropped_count()
        );
    }
    eprintln!(
        "trace: {} events -> {}",
        trace.event_count(),
        path.display()
    );
    result
}

fn compress(
    input: &Path,
    output: &Path,
    width: usize,
    options: CompressOptions,
    quiet: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    let data = read(input)?;
    let isobar = IsobarCompressor::new(options_from(&options));
    let (packed, report) = isobar
        .compress_with_report(&data, width)
        .map_err(|e| e.to_string())?;
    write(output, &packed)?;
    if let Some(format) = stats {
        print_stats(&report.telemetry, format);
    }
    if !quiet {
        eprintln!(
            "{} -> {}: {} -> {} bytes (CR {:.3}, {:.1} MB/s)",
            input.display(),
            output.display(),
            data.len(),
            packed.len(),
            report.ratio(),
            report.throughput_mbps(),
        );
        eprintln!(
            "solver {} + {} linearization; {:.1}% of bytes classified noise; improvable: {}",
            report.codec.name(),
            report.linearization,
            report.htc_pct(),
            report.improvable(),
        );
    }
    Ok(())
}

fn decompress(input: &Path, output: &Path, stats: Option<StatsFormat>) -> Result<(), String> {
    let packed = read(input)?;
    let mut recorder = Recorder::new();
    let mut scratch = isobar::PipelineScratch::new();
    let restored = IsobarCompressor::default()
        .decompress_recorded(&packed, &mut scratch, &mut recorder)
        .map_err(|e| format!("{}: {e}", input.display()))?;
    write(output, &restored)?;
    if let Some(format) = stats {
        print_stats(&recorder.snapshot(), format);
    }
    Ok(())
}

fn options_from(options: &CompressOptions) -> IsobarOptions {
    IsobarOptions {
        preference: options.preference,
        level: options.level,
        tau: options.tau,
        chunk_elements: options.chunk_elements,
        codec_override: options.codec,
        linearization_override: options.linearization,
        parallel: options.parallel,
        ..Default::default()
    }
}

/// Constant-memory compression: one chunk in flight, streamed framing.
fn compress_stream(
    input: &Path,
    output: &Path,
    width: usize,
    options: CompressOptions,
    quiet: bool,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    use std::io::{BufReader, BufWriter, Read, Write};
    let src = fs::File::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
    let dst = fs::File::create(output).map_err(|e| format!("{}: {e}", output.display()))?;
    let mut writer = isobar::IsobarWriter::new(BufWriter::new(dst), width, options_from(&options))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(src);
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = reader.read(&mut buf).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        writer.write_all(&buf[..n]).map_err(|e| e.to_string())?;
    }
    let total_in = writer.bytes_written();
    let (_, telemetry) = writer.finish_with_telemetry().map_err(|e| e.to_string())?;
    if let Some(format) = stats {
        print_stats(&telemetry, format);
    }
    if !quiet {
        let out_len = fs::metadata(output).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "{} -> {} (streamed): {} -> {} bytes (CR {:.3})",
            input.display(),
            output.display(),
            total_in,
            out_len,
            total_in as f64 / out_len.max(1) as f64,
        );
    }
    Ok(())
}

/// Constant-memory decompression of the streamed framing.
fn decompress_stream(
    input: &Path,
    output: &Path,
    stats: Option<StatsFormat>,
) -> Result<(), String> {
    use std::io::{BufReader, BufWriter, Read, Write};
    let src = fs::File::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
    let dst = fs::File::create(output).map_err(|e| format!("{}: {e}", output.display()))?;
    let mut reader = isobar::IsobarReader::new(BufReader::new(src))
        .map_err(|e| format!("{}: {e}", input.display()))?;
    let mut writer = BufWriter::new(dst);
    let mut buf = vec![0u8; 1 << 20];
    loop {
        let n = reader
            .read(&mut buf)
            .map_err(|e| format!("{}: {e}", input.display()))?;
        if n == 0 {
            break;
        }
        writer.write_all(&buf[..n]).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())?;
    if let Some(format) = stats {
        print_stats(&reader.telemetry(), format);
    }
    Ok(())
}

fn analyze(input: &Path, width: usize, tau: f64, bits: bool) -> Result<(), String> {
    let data = read(input)?;
    let (selection, elapsed) = Analyzer::with_tau(tau)
        .analyze_timed(&data, width)
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} bytes, {} elements of width {width}",
        input.display(),
        data.len(),
        data.len() / width
    );
    println!(
        "analysis: {:.1} MB/s; tolerance factor τ = {tau}",
        data.len() as f64 / 1e6 / elapsed.as_secs_f64().max(1e-9)
    );
    for (col, &compressible) in selection.bits().iter().enumerate() {
        println!(
            "  byte-column {col}: {}",
            if compressible {
                "compressible (signal)"
            } else {
                "incompressible (noise)"
            }
        );
    }
    println!(
        "hard-to-compress bytes: {:.1}%; improvable: {}",
        selection.htc_pct(),
        selection.is_improvable()
    );
    if bits {
        // Fig.-1-style per-bit-position profile (big-endian bit order).
        let freqs = isobar_datasets::bitfreq::bit_frequencies(&data, width);
        println!("bit profile (bit 1 = MSB of the element):");
        for (i, chunk) in freqs.chunks(16).enumerate() {
            let row: Vec<String> = chunk.iter().map(|p| format!("{p:.3}")).collect();
            println!(
                "  bits {:>2}-{:>2}: {}",
                i * 16 + 1,
                i * 16 + chunk.len(),
                row.join(" ")
            );
        }
        let noisy = isobar_datasets::bitfreq::noise_bit_fraction(&data, width, 0.02);
        println!(
            "coin-flip bits (within 0.02 of p = 0.5): {:.1}%",
            noisy * 100.0
        );
    }
    Ok(())
}

fn info(input: &Path) -> Result<(), String> {
    let packed = read(input)?;
    let header = Header::read(&packed).map_err(|e| e.to_string())?;
    println!("{}: ISOBAR container v1", input.display());
    println!("  element width:   {} bytes", header.width);
    println!("  solver:          {}", header.codec.name());
    println!("  linearization:   {}", header.linearization);
    println!("  chunk size:      {} elements", header.chunk_elements);
    println!("  original size:   {} bytes", header.total_len);
    println!("  container size:  {} bytes", packed.len());
    println!(
        "  overall ratio:   {:.3}",
        header.total_len as f64 / packed.len() as f64
    );
    println!("  checksum:        {:#010x} (Adler-32)", header.checksum);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::CompressOptions;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("isobar-cli-test-{}-{name}", std::process::id()));
        dir
    }

    #[test]
    fn compress_decompress_files_round_trip() {
        let input = tmp("in.bin");
        let packed = tmp("out.isbr");
        let restored = tmp("restored.bin");

        let ds = isobar_datasets::catalog::spec("gts_phi_l")
            .unwrap()
            .generate(30_000, 1);
        fs::write(&input, &ds.bytes).unwrap();

        compress(
            &input,
            &packed,
            8,
            CompressOptions {
                chunk_elements: 30_000,
                ..Default::default()
            },
            true,
            None,
        )
        .unwrap();
        decompress(&packed, &restored, None).unwrap();
        assert_eq!(fs::read(&restored).unwrap(), ds.bytes);

        for p in [&input, &packed, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn info_reports_header_fields() {
        let input = tmp("info-in.bin");
        let packed = tmp("info-out.isbr");
        fs::write(&input, vec![7u8; 800]).unwrap();
        compress(&input, &packed, 8, CompressOptions::default(), true, None).unwrap();
        info(&packed).unwrap();
        for p in [&input, &packed] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn stream_mode_round_trips_files() {
        let input = tmp("stream-in.bin");
        let packed = tmp("stream-out.isbs");
        let restored = tmp("stream-restored.bin");

        let ds = isobar_datasets::catalog::spec("flash_velx")
            .unwrap()
            .generate(30_000, 4);
        fs::write(&input, &ds.bytes).unwrap();

        compress_stream(
            &input,
            &packed,
            8,
            CompressOptions {
                chunk_elements: 10_000,
                ..Default::default()
            },
            true,
            None,
        )
        .unwrap();
        decompress_stream(&packed, &restored, None).unwrap();
        assert_eq!(fs::read(&restored).unwrap(), ds.bytes);

        // The batch decompressor must not accept the stream framing.
        assert!(decompress(&packed, &tmp("never"), None).is_err());

        for p in [&input, &packed, &restored] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn traced_compress_writes_chrome_json() {
        let input = tmp("trace-in.bin");
        let packed = tmp("trace-out.isbr");
        let trace_path = tmp("trace.json");
        fs::write(&input, vec![7u8; 1600]).unwrap();

        traced(Some(trace_path.as_path()), || {
            compress(&input, &packed, 8, CompressOptions::default(), true, None)
        })
        .unwrap();

        let json = fs::read_to_string(&trace_path).unwrap();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        if isobar::trace::ENABLED {
            // The compress pipeline must have left spans behind.
            assert!(json.contains("chunk_compress"), "no spans in {json}");
        }

        for p in [&input, &packed, &trace_path] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn missing_files_produce_errors_not_panics() {
        assert!(read(Path::new("/no/such/isobar/file")).is_err());
        assert!(decompress(Path::new("/no/such/file"), Path::new("/tmp/x"), None).is_err());
    }

    #[test]
    fn decompress_rejects_non_containers() {
        let input = tmp("garbage.bin");
        fs::write(&input, b"this is not a container").unwrap();
        assert!(decompress(&input, &tmp("never-written"), None).is_err());
        let _ = fs::remove_file(&input);
    }
}
