#![warn(missing_docs)]

//! Synthetic scientific datasets for the ISOBAR reproduction.
//!
//! The paper evaluates on 24 datasets from 7 HPC applications (GTS,
//! XGC, S3D, FLASH, MSG, NUM, OBS — Tables I/III/IV). Those files are
//! proprietary simulation outputs, so this crate generates synthetic
//! equivalents that reproduce the *byte-level statistical signature*
//! each dataset exposes to ISOBAR:
//!
//! * element type and width (f64, f32, i64),
//! * which byte-columns are noise-like (uniform) vs. predictable —
//!   ISOBAR's "hard-to-compress byte %" of Table IV,
//! * unique-value fraction and entropy/randomness class (Table III),
//! * temporal run structure (for the repetitive MSG/NUM/OBS sets).
//!
//! ISOBAR's analyzer sees only per-byte-column frequency histograms, so
//! matching these statistics preserves its classification decisions and
//! the relative compression behaviour of the solvers — which is what
//! the reproduction needs (absolute ratios on the authors' files are
//! unknowable without the files).
//!
//! # Example
//!
//! ```
//! use isobar_datasets::catalog;
//!
//! let spec = catalog::spec("gts_phi_l").unwrap();
//! let ds = spec.generate(10_000, 42);
//! assert_eq!(ds.bytes.len(), 10_000 * 8);
//! let stats = isobar_datasets::stats::dataset_stats(&ds);
//! assert!(stats.unique_pct > 99.0); // GTS potential values are unique
//! ```

pub mod bitfreq;
pub mod catalog;
pub mod gen;
pub mod stats;

pub use catalog::{Dataset, DatasetSpec, ElementType};
