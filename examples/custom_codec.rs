//! Bring your own solver: drive the ISOBAR primitives with a custom
//! compressor.
//!
//! Run with: `cargo run --release --example custom_codec`
//!
//! The paper positions ISOBAR as a preconditioner for *any*
//! general-purpose lossless compressor ("a user can specify a
//! preference in compressor with little to no change"). The high-level
//! [`isobar::IsobarCompressor`] ships with the two built-in solvers,
//! but the analyzer/partitioner/linearizer primitives are public, so a
//! custom pipeline takes a page of code. Here the "solver" is the FPC
//! floating-point compressor from `isobar-float-codecs` — a codec the
//! container format knows nothing about.

use isobar::analyzer::Analyzer;
use isobar::partitioner::{partition, reassemble, Partitioned};
use isobar_datasets::catalog;
use isobar_float_codecs::fpc::Fpc;
use isobar_linearize::Linearization;

fn main() {
    let ds = catalog::spec("flash_velx")
        .expect("catalog entry")
        .generate(200_000, 9);
    let width = ds.width();

    // 1. Analyze: which byte-columns are worth compressing?
    let selection = Analyzer::default()
        .analyze(&ds.bytes, width)
        .expect("aligned data");
    println!(
        "analyzer: {:?} (HTC {:.1}%, improvable: {})",
        selection.bits(),
        selection.htc_pct(),
        selection.is_improvable()
    );

    // 2. Partition: signal columns to the solver, noise stored raw.
    // Column linearization keeps each byte-column contiguous, which
    // suits FPC's stride-free model — but FPC wants whole doubles, so
    // pad the gathered signal bytes to a multiple of 8.
    let parts = partition(&ds.bytes, width, &selection, Linearization::Column);
    let mut signal = parts.compressible.clone();
    let pad = (8 - signal.len() % 8) % 8;
    signal.extend(std::iter::repeat_n(0u8, pad));

    // 3. Solve with the custom codec.
    let fpc = Fpc::default();
    let compressed = fpc.compress(&signal);

    let custom_total = compressed.len() + parts.incompressible.len();
    println!(
        "custom pipeline: {} signal + {} noise = {} bytes (CR {:.3})",
        compressed.len(),
        parts.incompressible.len(),
        custom_total,
        ds.bytes.len() as f64 / custom_total as f64
    );

    // Baseline: FPC over the raw, unpreconditioned stream.
    let baseline = fpc.compress(&ds.bytes).len();
    println!(
        "FPC alone:       {} bytes (CR {:.3})",
        baseline,
        ds.bytes.len() as f64 / baseline as f64
    );

    // 4. Invert everything and verify losslessness.
    let mut restored_signal = fpc.decompress(&compressed).expect("fpc stream");
    restored_signal.truncate(parts.compressible.len());
    let restored = reassemble(
        &Partitioned {
            compressible: restored_signal,
            incompressible: parts.incompressible.clone(),
        },
        width,
        &selection,
        Linearization::Column,
    );
    assert_eq!(restored, ds.bytes);
    println!("round trip: exact ({} bytes verified)", restored.len());
}
