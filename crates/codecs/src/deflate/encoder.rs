//! DEFLATE encoder: token blocks → bit stream (RFC 1951).
//!
//! The encode path is built around [`DeflateScratch`]: the LZ77 hash
//! tables, the per-block token buffer, the Huffman construction lists,
//! and the dynamic-header workspace all live there and are reused from
//! chunk to chunk. Tokens stream straight out of the matcher into a
//! fixed-capacity block buffer while the literal/length and distance
//! histograms accumulate in the same pass, so no whole-input token
//! vector ever exists and nothing on this path allocates once the
//! scratch is warm.

use crate::bitio::LsbBitWriter;
use crate::codec::CompressionLevel;
use crate::huffman::{HuffmanEncoder, PackageMergeScratch};
use crate::lz77::{Matcher, MatcherScratch, Token};

use super::tables::*;

/// Tokens per emitted block. Each block gets its own Huffman codes, so
/// this bounds how stale the statistics can get on heterogeneous input.
const BLOCK_TOKENS: usize = 1 << 16;

/// Reusable working memory for the DEFLATE encode path.
///
/// Owned by the caller and threaded through [`deflate_raw_into`]; every
/// buffer reaches its steady-state capacity during the first chunk and
/// is only cleared, never reallocated, afterwards.
#[derive(Default)]
pub struct DeflateScratch {
    matcher: MatcherScratch,
    /// Current block's tokens (≤ [`BLOCK_TOKENS`]).
    tokens: Vec<Token>,
    block: BlockScratch,
}

impl DeflateScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-block encoder state: Huffman tables and header workspace.
#[derive(Default)]
struct BlockScratch {
    pm: PackageMergeScratch,
    dyn_lit: HuffmanEncoder,
    dyn_dist: HuffmanEncoder,
    /// Fixed-code encoders, built once on first use (their lengths are
    /// constants from RFC 1951 §3.2.6).
    fixed_lit: HuffmanEncoder,
    fixed_dist: HuffmanEncoder,
    header: DynamicHeader,
}

/// Compress `data` into a raw DEFLATE stream (no zlib wrapper).
pub fn deflate_raw(data: &[u8], level: CompressionLevel) -> Vec<u8> {
    let mut w = LsbBitWriter::new();
    deflate_raw_into(data, level, &mut DeflateScratch::default(), &mut w);
    w.finish()
}

/// Compress `data` into `w` as a raw DEFLATE stream, borrowing all
/// working memory from `scratch`.
pub fn deflate_raw_into(
    data: &[u8],
    level: CompressionLevel,
    scratch: &mut DeflateScratch,
    w: &mut LsbBitWriter,
) {
    let DeflateScratch {
        matcher: matcher_scratch,
        tokens,
        block,
    } = scratch;
    let mut matcher = Matcher::new(data, level, matcher_scratch);

    let mut byte_start = 0usize;
    loop {
        // Fill one block's worth of tokens, fusing frequency counting
        // and cost bookkeeping into the same pass.
        tokens.clear();
        let mut freqs = BlockFreqs::new();
        let mut byte_len = 0usize;
        let mut extra_bits = 0u64;
        while tokens.len() < BLOCK_TOKENS {
            let Some(token) = matcher.next_token() else {
                break;
            };
            tokens.push(token);
            match token {
                Token::Literal(b) => {
                    freqs.litlen[b as usize] += 1;
                    byte_len += 1;
                }
                Token::Match { len, dist } => {
                    freqs.litlen[257 + length_code(len).0] += 1;
                    freqs.dist[dist_code(dist).0] += 1;
                    extra_bits += length_code(len).1 as u64 + dist_code(dist).1 as u64;
                    byte_len += len as usize;
                }
            }
        }
        if tokens.is_empty() {
            // Zero-length input still needs one final block.
            debug_assert!(byte_start == 0 && data.is_empty());
            write_stored_blocks(w, data, true);
            return;
        }
        freqs.litlen[EOB] += 1;

        // Every next_token() call emits exactly one token, so an
        // exhausted matcher here means this block holds the last one.
        let is_final = matcher.is_done();
        write_block(
            w,
            tokens,
            &freqs,
            extra_bits,
            &data[byte_start..byte_start + byte_len],
            is_final,
            block,
        );
        byte_start += byte_len;
        if is_final {
            return;
        }
    }
}

/// Histogram of literal/length and distance symbols for one block.
struct BlockFreqs {
    litlen: [u64; NUM_LITLEN],
    dist: [u64; NUM_DIST],
}

impl BlockFreqs {
    fn new() -> Self {
        BlockFreqs {
            litlen: [0; NUM_LITLEN],
            dist: [0; NUM_DIST],
        }
    }
}

/// Pick the cheapest representation (stored / fixed / dynamic) and emit
/// the block. `freqs` already includes the end-of-block symbol;
/// `extra_bits` is the total extra-bit payload of the block's matches.
fn write_block(
    w: &mut LsbBitWriter,
    block: &[Token],
    freqs: &BlockFreqs,
    extra_bits: u64,
    raw: &[u8],
    is_final: bool,
    s: &mut BlockScratch,
) {
    // Dynamic codes. Guarantee at least one distance code so the header
    // never encodes an empty alphabet.
    let mut dist_freqs = freqs.dist;
    if dist_freqs.iter().all(|&f| f == 0) {
        dist_freqs[0] = 1;
    }
    s.dyn_lit
        .rebuild_from_freqs(&freqs.litlen, MAX_CODE_LEN, &mut s.pm);
    s.dyn_dist
        .rebuild_from_freqs(&dist_freqs, MAX_CODE_LEN, &mut s.pm);
    s.header
        .build(s.dyn_lit.lengths(), s.dyn_dist.lengths(), &mut s.pm);

    let dyn_cost = 3
        + s.header.cost_bits
        + s.dyn_lit.cost_bits(&freqs.litlen)
        + s.dyn_dist.cost_bits(&freqs.dist)
        + extra_bits;

    if s.fixed_lit.lengths().is_empty() {
        s.fixed_lit.rebuild_from_lengths(&fixed_litlen_lengths());
        s.fixed_dist.rebuild_from_lengths(&fixed_dist_lengths());
    }
    let fixed_cost =
        3 + s.fixed_lit.cost_bits(&freqs.litlen) + s.fixed_dist.cost_bits(&freqs.dist) + extra_bits;

    // Stored cost: alignment + 4-byte length header per 65535-byte piece.
    let stored_pieces = raw.len().div_ceil(65535).max(1) as u64;
    let stored_cost = stored_pieces * (4 * 8) + raw.len() as u64 * 8 + 7;

    if stored_cost < dyn_cost && stored_cost < fixed_cost {
        write_stored_blocks(w, raw, is_final);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b01, 2);
        write_tokens(w, block, &s.fixed_lit, &s.fixed_dist);
    } else {
        w.write_bits(is_final as u32, 1);
        w.write_bits(0b10, 2);
        s.header.write(w);
        write_tokens(w, block, &s.dyn_lit, &s.dyn_dist);
    }
}

/// Emit `raw` as one or more stored blocks (type 00).
fn write_stored_blocks(w: &mut LsbBitWriter, raw: &[u8], is_final: bool) {
    let pieces = raw.len().div_ceil(65535).max(1);
    for i in 0..pieces {
        let piece = &raw[i * 65535..raw.len().min((i + 1) * 65535)];
        w.write_bits((is_final && i + 1 == pieces) as u32, 1);
        w.write_bits(0b00, 2);
        w.align_to_byte();
        let len = piece.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(piece);
    }
}

fn write_tokens(
    w: &mut LsbBitWriter,
    block: &[Token],
    lit: &HuffmanEncoder,
    dist: &HuffmanEncoder,
) {
    for token in block {
        match *token {
            Token::Literal(b) => lit.write_lsb(w, b as usize),
            Token::Match { len, dist: d } => {
                // Fuse each Huffman code with its extra bits into one
                // write: LSB-first concatenation makes
                // `code | extra << code_len` bit-identical to two calls.
                let (lc, lextra, lval) = length_code(len);
                let (code, nbits) = lit.code_lsb(257 + lc);
                w.write_bits(code | (lval as u32) << nbits, nbits + lextra as u32);
                let (dc, dextra, dval) = dist_code(d);
                let (code, nbits) = dist.code_lsb(dc);
                w.write_bits(code | (dval as u32) << nbits, nbits + dextra as u32);
            }
        }
    }
    lit.write_lsb(w, EOB);
}

/// A dynamic block header: the RLE-compressed code lengths plus the
/// code-length code that describes them (RFC 1951 §3.2.7).
///
/// Reusable: [`DynamicHeader::build`] refills the same buffers for each
/// block instead of constructing a fresh header.
#[derive(Default)]
struct DynamicHeader {
    hlit: usize,
    hdist: usize,
    hclen: usize,
    cl_encoder: HuffmanEncoder,
    /// Concatenated (trimmed) literal + distance lengths.
    all: Vec<u8>,
    /// RLE symbols: (code-length symbol 0..=18, extra value, extra bits).
    rle: Vec<(u8, u16, u8)>,
    cost_bits: u64,
}

impl DynamicHeader {
    fn build(&mut self, lit_lengths: &[u8], dist_lengths: &[u8], pm: &mut PackageMergeScratch) {
        self.hlit = trimmed_len(lit_lengths, 257);
        self.hdist = trimmed_len(dist_lengths, 1);

        self.all.clear();
        self.all.extend_from_slice(&lit_lengths[..self.hlit]);
        self.all.extend_from_slice(&dist_lengths[..self.hdist]);
        rle_code_lengths_into(&self.all, &mut self.rle);

        let mut cl_freqs = [0u64; NUM_CODELEN];
        for &(sym, _, _) in &self.rle {
            cl_freqs[sym as usize] += 1;
        }
        self.cl_encoder
            .rebuild_from_freqs(&cl_freqs, MAX_CODELEN_LEN, pm);

        self.hclen = CODELEN_ORDER
            .iter()
            .rposition(|&sym| self.cl_encoder.len(sym) > 0)
            .map_or(4, |i| (i + 1).max(4));

        let body_bits: u64 = self
            .rle
            .iter()
            .map(|&(sym, _, extra)| self.cl_encoder.len(sym as usize) as u64 + extra as u64)
            .sum();
        self.cost_bits = 5 + 5 + 4 + self.hclen as u64 * 3 + body_bits;
    }

    fn write(&self, w: &mut LsbBitWriter) {
        w.write_bits((self.hlit - 257) as u32, 5);
        w.write_bits((self.hdist - 1) as u32, 5);
        w.write_bits((self.hclen - 4) as u32, 4);
        for &sym in CODELEN_ORDER.iter().take(self.hclen) {
            w.write_bits(self.cl_encoder.len(sym) as u32, 3);
        }
        for &(sym, value, extra) in &self.rle {
            self.cl_encoder.write_lsb(w, sym as usize);
            if extra > 0 {
                w.write_bits(value as u32, extra as u32);
            }
        }
    }
}

/// Number of leading lengths to transmit: trailing zeros are implied,
/// but at least `min` entries must be sent.
fn trimmed_len(lengths: &[u8], min: usize) -> usize {
    lengths
        .iter()
        .rposition(|&l| l > 0)
        .map_or(min, |i| (i + 1).max(min))
}

/// RLE-compress a code-length sequence using symbols 16 (repeat previous
/// 3–6 times), 17 (3–10 zeros) and 18 (11–138 zeros).
fn rle_code_lengths_into(lengths: &[u8], out: &mut Vec<(u8, u16, u8)>) {
    out.clear();
    let mut i = 0usize;
    while i < lengths.len() {
        let len = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == len {
            run += 1;
        }
        if len == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push((18, (take - 11) as u16, 7));
                left -= take;
            }
            if left >= 3 {
                out.push((17, (left - 3) as u16, 3));
                left = 0;
            }
            for _ in 0..left {
                out.push((0, 0, 0));
            }
        } else {
            // First occurrence is literal; the rest can use symbol 16.
            out.push((len, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push((16, (take - 3) as u16, 2));
                left -= take;
            }
            for _ in 0..left {
                out.push((len, 0, 0));
            }
        }
        i += run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rle_code_lengths(lengths: &[u8]) -> Vec<(u8, u16, u8)> {
        let mut out = Vec::new();
        rle_code_lengths_into(lengths, &mut out);
        out
    }

    fn expand_rle(rle: &[(u8, u16, u8)]) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::new();
        for &(sym, value, _) in rle {
            match sym {
                0..=15 => out.push(sym),
                16 => {
                    let prev = *out.last().expect("16 with no previous");
                    out.extend(std::iter::repeat_n(prev, value as usize + 3));
                }
                17 => out.extend(std::iter::repeat_n(0, value as usize + 3)),
                18 => out.extend(std::iter::repeat_n(0, value as usize + 11)),
                _ => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn rle_round_trips_assorted_length_sequences() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![5],
            vec![0; 200],
            vec![8; 144],
            vec![1, 2, 3, 4, 5],
            vec![7, 7, 7, 7, 7, 7, 7, 7, 0, 0, 0, 0, 9, 9],
            {
                let mut v = vec![0; 138];
                v.extend([3; 7]);
                v.extend([0; 11]);
                v.push(15);
                v
            },
        ];
        for case in cases {
            let rle = rle_code_lengths(&case);
            assert_eq!(expand_rle(&rle), case, "case {case:?}");
            // Every extra-bit field must fit its width.
            for &(sym, value, extra) in &rle {
                assert!(sym <= 18);
                if extra > 0 {
                    assert!(value < (1 << extra));
                }
            }
        }
    }

    #[test]
    fn trimmed_len_honours_minimum_and_trailing_zeros() {
        assert_eq!(trimmed_len(&[0; 30], 1), 1);
        assert_eq!(trimmed_len(&[0, 0, 5, 0, 0], 1), 3);
        let mut lit = [0u8; 288];
        lit[256] = 7;
        assert_eq!(trimmed_len(&lit, 257), 257);
        lit[285] = 4;
        assert_eq!(trimmed_len(&lit, 257), 286);
    }

    #[test]
    fn header_cost_accounts_for_all_bits() {
        let mut lit = [0u8; NUM_LITLEN];
        lit[..257].iter_mut().for_each(|l| *l = 9);
        lit[256] = 9;
        let dist = [5u8; NUM_DIST];
        let mut header = DynamicHeader::default();
        header.build(&lit, &dist, &mut PackageMergeScratch::new());
        let mut w = LsbBitWriter::new();
        header.write(&mut w);
        assert_eq!(w.bit_len(), header.cost_bits);
    }

    #[test]
    fn empty_input_produces_valid_stream() {
        let out = deflate_raw(&[], CompressionLevel::Default);
        assert!(!out.is_empty());
    }

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_encode() {
        // The same scratch driven across dissimilar inputs must emit
        // exactly the bytes a fresh encode does.
        let inputs: Vec<Vec<u8>> = vec![
            b"abcabcabcabcabcabc".repeat(100),
            vec![0x11; 100_000],
            (0..150_000u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
                .collect(),
            Vec::new(),
            b"tail".to_vec(),
        ];
        for level in CompressionLevel::ALL {
            let mut scratch = DeflateScratch::new();
            for data in &inputs {
                let mut w = LsbBitWriter::new();
                deflate_raw_into(data, level, &mut scratch, &mut w);
                assert_eq!(
                    w.finish(),
                    deflate_raw(data, level),
                    "level {level:?}, len {}",
                    data.len()
                );
            }
        }
    }
}
