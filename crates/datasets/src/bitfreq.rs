//! Per-bit-position probability profiles (Figure 1 of the paper).
//!
//! For each of the ω·8 bit positions of an element, compute the
//! probability of the *more common* bit value at that position — 1.0
//! means the bit is perfectly predictable, 0.5 means it is a fair coin.
//! The paper uses these profiles to show why hard-to-compress datasets
//! are hard: their mantissa bits sit at 0.5.

/// Probability of the dominant bit value at each bit position.
///
/// Bit positions are numbered 1..=ω·8 as in Fig. 1: position 1 is the
/// most significant bit of the element interpreted as a big-endian
/// number (sign bit for IEEE floats), matching the paper's reading
/// order.
pub fn bit_frequencies(bytes: &[u8], width: usize) -> Vec<f64> {
    assert!(width > 0 && bytes.len().is_multiple_of(width));
    let n = bytes.len() / width;
    let mut ones = vec![0u64; width * 8];
    for element in bytes.chunks_exact(width) {
        // Big-endian bit order over the element: byte width-1 first
        // (little-endian storage puts the sign/exponent byte last).
        for (pos, slot) in ones.iter_mut().enumerate() {
            let byte = element[width - 1 - pos / 8];
            let bit = (byte >> (7 - pos % 8)) & 1;
            *slot += bit as u64;
        }
    }
    ones.iter()
        .map(|&count| {
            if n == 0 {
                1.0
            } else {
                let p = count as f64 / n as f64;
                p.max(1.0 - p)
            }
        })
        .collect()
}

/// Fraction of bit positions that are coin-flips (within `epsilon` of
/// probability 0.5) — a scalar summary of Fig. 1 used by tests.
pub fn noise_bit_fraction(bytes: &[u8], width: usize, epsilon: f64) -> f64 {
    let freqs = bit_frequencies(bytes, width);
    let noisy = freqs.iter().filter(|&&p| p <= 0.5 + epsilon).count();
    noisy as f64 / freqs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn constant_data_is_fully_predictable() {
        let bytes = vec![0xA5u8; 800];
        let freqs = bit_frequencies(&bytes, 8);
        assert_eq!(freqs.len(), 64);
        assert!(freqs.iter().all(|&p| p == 1.0));
    }

    #[test]
    fn alternating_bit_is_a_coin_flip() {
        // Element value alternates between 0 and 1 → the LSB (position
        // 64 in Fig. 1 numbering) has probability exactly 0.5.
        let mut bytes = Vec::new();
        for i in 0..1000u64 {
            bytes.extend_from_slice(&(i % 2).to_le_bytes());
        }
        let freqs = bit_frequencies(&bytes, 8);
        assert_eq!(freqs[63], 0.5);
        assert!(freqs[..63].iter().all(|&p| p == 1.0));
    }

    #[test]
    fn bit_order_is_big_endian_like_figure_1() {
        // Set only the sign bit (MSB of the big-endian view) on half
        // the elements: position 1 must be the 0.5 one.
        let mut bytes = Vec::new();
        for i in 0..1000u64 {
            let v = if i % 2 == 0 { 0u64 } else { 1 << 63 };
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let freqs = bit_frequencies(&bytes, 8);
        assert_eq!(freqs[0], 0.5);
        assert!(freqs[1..].iter().all(|&p| p == 1.0));
    }

    #[test]
    fn hard_datasets_have_many_noise_bits_and_sppm_few() {
        // The qualitative content of Fig. 1: gts/xgc/flash have large
        // 0.5-probability regions, msg_sppm does not.
        let n = 30_000;
        let gts = catalog::spec("gts_chkp_zeon").unwrap().generate(n, 1);
        let sppm = catalog::spec("msg_sppm").unwrap().generate(n, 1);
        let gts_noise = noise_bit_fraction(&gts.bytes, 8, 0.02);
        let sppm_noise = noise_bit_fraction(&sppm.bytes, 8, 0.02);
        assert!(gts_noise > 0.6, "gts noise fraction {gts_noise}");
        assert!(sppm_noise < 0.2, "sppm noise fraction {sppm_noise}");
    }

    #[test]
    fn empty_input_yields_unit_probabilities() {
        let freqs = bit_frequencies(&[], 8);
        assert!(freqs.iter().all(|&p| p == 1.0));
    }
}
