//! Table IX — decompression throughput comparison.
//!
//! For the 19 improvable datasets: standalone zlib and bzlib2
//! decompression throughput, ISOBAR (speed preference) decompression
//! throughput, and the speed-up against the faster standard
//! alternative.

use isobar::Preference;
use isobar_bench::*;
use isobar_codecs::{bwt::Bzip2Like, deflate::Deflate};
use isobar_datasets::catalog;

fn main() {
    banner("Table IX: decompression throughput comparison");
    println!(
        "{:<15} {:>10} {:>12} {:>12} {:>6}",
        "Dataset", "zlib MB/s", "bzlib2 MB/s", "ISOBAR MB/s", "Sp"
    );
    let mut speedups = Vec::new();
    for spec in catalog::all().into_iter().filter(|s| s.paper_improvable) {
        let ds = generate(&spec);
        let zlib = run_codec(&Deflate::default(), &ds.bytes);
        let bzip2 = run_codec(&Bzip2Like::default(), &ds.bytes);
        let isobar = run_isobar(&ds.bytes, ds.width(), Preference::Speed);
        let fastest = zlib.decomp_mbps.max(bzip2.decomp_mbps);
        let sp = speedup(isobar.decomp_mbps, fastest);
        speedups.push(sp);
        println!(
            "{:<15} {:>10.2} {:>12.2} {:>12.2} {:>6.1}",
            spec.name, zlib.decomp_mbps, bzip2.decomp_mbps, isobar.decomp_mbps, sp,
        );
    }
    println!();
    let above3 = speedups.iter().filter(|&&s| s > 3.0).count();
    println!(
        "speed-up > 3.0 on {}/{} datasets (paper: 15 of 19); all > 1.0: {}",
        above3,
        speedups.len(),
        speedups.iter().all(|&s| s > 1.0),
    );
}
