//! The merged output container (§II.D, Fig. 7).
//!
//! The merger concatenates: a file header carrying the EUPA decision
//! and chunking parameters, then per chunk its analyzer metadata, the
//! solver-compressed bytes C′, and the verbatim incompressible bytes I.
//! Everything is little-endian and self-describing so decompression
//! needs no out-of-band information; a whole-stream Adler-32 of the
//! original data guards reassembly.
//!
//! Version 2 additionally embeds an XXH64 checksum in every chunk
//! header, covering the other fixed fields and both payloads. Decoders
//! verify it before touching the payloads (behind the pipeline's
//! default-on `verify` knob) and salvage mode uses intact checksums as
//! resync anchors. Version-1 containers — which carry no per-chunk
//! checksum — are still read.

use crate::analyzer::ColumnSelection;
use crate::error::IsobarError;
use isobar_codecs::xxhash::Xxh64;
use isobar_codecs::{CodecId, CompressionLevel};
use isobar_linearize::Linearization;

/// Container magic: "ISBR".
pub const MAGIC: [u8; 4] = *b"ISBR";
/// Container format version written by this build.
pub const VERSION: u8 = 2;
/// The checksum-less format version this build still reads.
pub const LEGACY_VERSION: u8 = 1;
/// Fixed header size in bytes (same layout in both versions).
pub const HEADER_LEN: usize = 28;
/// Fixed per-chunk metadata size in bytes (version 2: the version-1
/// fields plus a 64-bit chunk checksum).
pub const CHUNK_HEADER_LEN: usize = 37;
/// Version-1 per-chunk metadata size (no checksum field).
pub const CHUNK_HEADER_V1_LEN: usize = 29;
/// Seed for every XXH64 checksum in the ISOBAR formats.
pub const CHECKSUM_SEED: u64 = 0;

/// Per-chunk metadata size for a given container version.
pub fn chunk_header_len(version: u8) -> usize {
    if version >= 2 {
        CHUNK_HEADER_LEN
    } else {
        CHUNK_HEADER_V1_LEN
    }
}

/// The v2 chunk checksum: XXH64 over the non-checksum header fields
/// (the first [`CHUNK_HEADER_V1_LEN`] bytes) followed by both payloads.
pub(crate) fn chunk_checksum(head: &[u8], compressed: &[u8], incompressible: &[u8]) -> u64 {
    let mut hasher = Xxh64::new(CHECKSUM_SEED);
    hasher.update(head);
    hasher.update(compressed);
    hasher.update(incompressible);
    hasher.digest()
}

/// File header fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Header {
    /// Format version ([`VERSION`] for containers written by this
    /// build; [`LEGACY_VERSION`] for checksum-less containers).
    pub version: u8,
    /// Element width ω in bytes.
    pub width: u8,
    /// EUPA-chosen solver.
    pub codec: CodecId,
    /// Solver effort level.
    pub level: CompressionLevel,
    /// EUPA-chosen linearization for compressible columns.
    pub linearization: Linearization,
    /// Preference byte (for provenance only; not needed to decode).
    pub preference: u8,
    /// Chunk size in elements.
    pub chunk_elements: u32,
    /// Original (uncompressed) length in bytes.
    pub total_len: u64,
    /// Adler-32 of the original bytes.
    pub checksum: u32,
}

impl Header {
    /// Serialize into the output buffer.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.width);
        out.push(self.codec as u8);
        out.push(level_to_u8(self.level));
        out.push(self.linearization as u8);
        out.push(self.preference);
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&self.chunk_elements.to_le_bytes());
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    /// Parse from the front of `data`.
    pub fn read(data: &[u8]) -> Result<Header, IsobarError> {
        if data.len() < HEADER_LEN {
            return Err(IsobarError::Truncated);
        }
        if data[..4] != MAGIC {
            return Err(IsobarError::Corrupt("bad magic"));
        }
        let version = data[4];
        if version != VERSION && version != LEGACY_VERSION {
            return Err(IsobarError::Corrupt("unsupported version"));
        }
        let width = data[5];
        if width == 0 || width as usize > 64 {
            return Err(IsobarError::Corrupt("bad element width"));
        }
        let codec = CodecId::from_u8(data[6]).map_err(IsobarError::Codec)?;
        let level = level_from_u8(data[7]).ok_or(IsobarError::Corrupt("bad level byte"))?;
        let linearization =
            Linearization::from_u8(data[8]).ok_or(IsobarError::Corrupt("bad linearization"))?;
        let preference = data[9];
        let chunk_elements = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes"));
        if chunk_elements == 0 {
            return Err(IsobarError::Corrupt("zero chunk size"));
        }
        let total_len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
        let checksum = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
        Ok(Header {
            version,
            width,
            codec,
            level,
            linearization,
            preference,
            chunk_elements,
            total_len,
            checksum,
        })
    }
}

/// How one chunk was encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ChunkMode {
    /// Undetermined chunk: the whole chunk went through the solver
    /// (Algorithm 1, lines 2–3).
    Passthrough = 0,
    /// Improvable chunk: compressible columns solved, incompressible
    /// stored (Algorithm 1, lines 5–7).
    Partitioned = 1,
    /// Raw chunk bytes stored unprocessed (version 2 only): the
    /// pipeline's graceful-degradation fallback when the solver
    /// panicked on this chunk. `compressed` holds the original
    /// `elements × width` bytes; the mask is 0 and there is no
    /// incompressible stream.
    Verbatim = 2,
}

/// Per-chunk record: metadata + payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Encoding mode.
    pub mode: ChunkMode,
    /// Elements in this chunk.
    pub elements: u32,
    /// Analyzer column mask (bit c set = column c compressible); 0 for
    /// passthrough chunks.
    pub mask: u64,
    /// Solver output C′.
    pub compressed: Vec<u8>,
    /// Verbatim incompressible bytes I (column-major).
    pub incompressible: Vec<u8>,
}

impl ChunkRecord {
    /// Exact serialized size of [`ChunkRecord::write`]'s output, so
    /// callers can reserve the full container up front.
    pub fn encoded_len(&self) -> usize {
        CHUNK_HEADER_LEN + self.compressed.len() + self.incompressible.len()
    }

    /// Serialize into the output buffer in the current ([`VERSION`])
    /// format, computing and embedding the chunk checksum.
    pub fn write(&self, out: &mut Vec<u8>) {
        let head_start = out.len();
        out.push(self.mode as u8);
        out.extend_from_slice(&self.elements.to_le_bytes());
        out.extend_from_slice(&self.mask.to_le_bytes());
        out.extend_from_slice(&(self.compressed.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.incompressible.len() as u64).to_le_bytes());
        let checksum = chunk_checksum(
            &out[head_start..head_start + CHUNK_HEADER_V1_LEN],
            &self.compressed,
            &self.incompressible,
        );
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&self.compressed);
        out.extend_from_slice(&self.incompressible);
    }

    /// Serialize in the [`LEGACY_VERSION`] (checksum-less) layout.
    /// Only meaningful for back-compat fixtures; [`ChunkMode::Verbatim`]
    /// does not exist in version 1.
    pub fn write_legacy(&self, out: &mut Vec<u8>) {
        debug_assert!(self.mode != ChunkMode::Verbatim, "verbatim is v2-only");
        out.push(self.mode as u8);
        out.extend_from_slice(&self.elements.to_le_bytes());
        out.extend_from_slice(&self.mask.to_le_bytes());
        out.extend_from_slice(&(self.compressed.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.incompressible.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.compressed);
        out.extend_from_slice(&self.incompressible);
    }

    /// Parse one current-version record from the front of `data`,
    /// verifying its checksum; returns the record and the number of
    /// bytes consumed.
    ///
    /// Equivalent to [`ChunkRecord::read_bounded`] with no element
    /// ceiling; callers that know the header's `chunk_elements` should
    /// prefer the bounded form.
    pub fn read(data: &[u8], width: usize) -> Result<(ChunkRecord, usize), IsobarError> {
        Self::read_bounded(data, width, u32::MAX, VERSION, true, 0)
    }

    /// Parse one record from the front of `data`, rejecting records
    /// that claim more than `max_elements` elements (a valid container
    /// never exceeds the header's `chunk_elements`); returns the record
    /// and the number of bytes consumed.
    ///
    /// `version` selects the chunk-header layout. When `verify` is set
    /// and the layout carries a checksum, the payload is verified
    /// before the record is returned; a mismatch reports
    /// [`IsobarError::ChecksumMismatch`] located at `base_offset` (the
    /// record's absolute offset in the container or stream).
    pub fn read_bounded(
        data: &[u8],
        width: usize,
        max_elements: u32,
        version: u8,
        verify: bool,
        base_offset: u64,
    ) -> Result<(ChunkRecord, usize), IsobarError> {
        let header = ChunkHeader::validate(data, width, max_elements, version)?;
        let header_len = chunk_header_len(version);
        let total = header_len
            .checked_add(header.comp_len)
            .and_then(|t| t.checked_add(header.incomp_len))
            .ok_or(IsobarError::Corrupt("chunk length overflow"))?;
        if data.len() < total {
            return Err(IsobarError::Truncated);
        }
        let compressed = &data[header_len..header_len + header.comp_len];
        let incompressible = &data[header_len + header.comp_len..total];
        if verify {
            if let Some(expected) = header.checksum {
                let actual =
                    chunk_checksum(&data[..CHUNK_HEADER_V1_LEN], compressed, incompressible);
                if actual != expected {
                    return Err(IsobarError::ChecksumMismatch {
                        offset: base_offset,
                        expected,
                        actual,
                    });
                }
            }
        }
        Ok((
            ChunkRecord {
                mode: header.mode,
                elements: header.elements,
                mask: header.mask,
                compressed: compressed.to_vec(),
                incompressible: incompressible.to_vec(),
            },
            total,
        ))
    }

    /// The analyzer selection this record encodes. Errors on widths
    /// > 64, which no valid header can carry.
    pub fn selection(&self, width: usize) -> Result<ColumnSelection, IsobarError> {
        ColumnSelection::from_mask(self.mask, width)
    }
}

/// The validated fixed part of a chunk record.
///
/// Produced by [`ChunkHeader::validate`], which performs every
/// structural check *before the caller allocates anything* — the
/// streaming reader uses it to vet the fixed bytes before deciding
/// how much payload to pull off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeader {
    /// Encoding mode.
    pub mode: ChunkMode,
    /// Elements in the chunk.
    pub elements: u32,
    /// Analyzer column mask.
    pub mask: u64,
    /// Solver payload length C′.
    pub comp_len: usize,
    /// Verbatim payload length I.
    pub incomp_len: usize,
    /// Embedded chunk checksum; `None` for version-1 headers, which
    /// carry none ("legacy, unverifiable").
    pub checksum: Option<u64>,
}

impl ChunkHeader {
    /// Parse and validate the fixed chunk header (29 bytes in version
    /// 1, 37 in version 2) at the front of `data`, without touching
    /// (or requiring) any payload bytes.
    ///
    /// Checks, in order: header completeness, mode byte, element count
    /// against `max_elements`, mask width, per-mode mask constraints,
    /// and the per-mode payload-length consistency equations.
    /// Allocation-free. The checksum is *read*, not verified — payload
    /// verification belongs to whoever holds the payload bytes
    /// ([`ChunkRecord::read_bounded`]).
    pub fn validate(
        data: &[u8],
        width: usize,
        max_elements: u32,
        version: u8,
    ) -> Result<ChunkHeader, IsobarError> {
        if data.len() < chunk_header_len(version) {
            return Err(IsobarError::Truncated);
        }
        let mode = match data[0] {
            0 => ChunkMode::Passthrough,
            1 => ChunkMode::Partitioned,
            2 if version >= 2 => ChunkMode::Verbatim,
            _ => return Err(IsobarError::Corrupt("bad chunk mode")),
        };
        let elements = u32::from_le_bytes(data[1..5].try_into().expect("4 bytes"));
        let mask = u64::from_le_bytes(data[5..13].try_into().expect("8 bytes"));
        let comp_len = u64::from_le_bytes(data[13..21].try_into().expect("8 bytes")) as usize;
        let incomp_len = u64::from_le_bytes(data[21..29].try_into().expect("8 bytes")) as usize;
        let checksum = if version >= 2 {
            Some(u64::from_le_bytes(
                data[29..37].try_into().expect("8 bytes"),
            ))
        } else {
            None
        };

        if elements > max_elements {
            return Err(IsobarError::Corrupt("chunk exceeds header chunk size"));
        }
        if mask >> width != 0 {
            return Err(IsobarError::Corrupt("column mask wider than element"));
        }
        if mode != ChunkMode::Partitioned && mask != 0 {
            return Err(IsobarError::Corrupt("passthrough chunk with column mask"));
        }
        let incompressible_cols = width - (mask & mask_low(width)).count_ones() as usize;
        let expected_incomp = match mode {
            ChunkMode::Passthrough | ChunkMode::Verbatim => 0,
            ChunkMode::Partitioned => elements as usize * incompressible_cols,
        };
        if incomp_len != expected_incomp {
            return Err(IsobarError::Corrupt("incompressible length mismatch"));
        }
        if mode == ChunkMode::Verbatim && comp_len != elements as usize * width {
            return Err(IsobarError::Corrupt("verbatim chunk length mismatch"));
        }
        Ok(ChunkHeader {
            mode,
            elements,
            mask,
            comp_len,
            incomp_len,
            checksum,
        })
    }
}

#[inline]
fn mask_low(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Map a compression level to its metadata byte.
pub fn level_to_u8(level: CompressionLevel) -> u8 {
    match level {
        CompressionLevel::Fast => 0,
        CompressionLevel::Default => 1,
        CompressionLevel::Best => 2,
    }
}

/// Inverse of [`level_to_u8`].
pub fn level_from_u8(raw: u8) -> Option<CompressionLevel> {
    match raw {
        0 => Some(CompressionLevel::Fast),
        1 => Some(CompressionLevel::Default),
        2 => Some(CompressionLevel::Best),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_header() -> Header {
        Header {
            version: VERSION,
            width: 8,
            codec: CodecId::Deflate,
            level: CompressionLevel::Default,
            linearization: Linearization::Row,
            preference: 1,
            chunk_elements: 375_000,
            total_len: 12345,
            checksum: 0xDEADBEEF,
        }
    }

    #[test]
    fn header_round_trips() {
        let mut buf = Vec::new();
        demo_header().write(&mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(Header::read(&buf).unwrap(), demo_header());
    }

    #[test]
    fn header_rejects_corruption() {
        let mut buf = Vec::new();
        demo_header().write(&mut buf);
        assert!(matches!(
            Header::read(&buf[..10]),
            Err(IsobarError::Truncated)
        ));

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[4] = 99; // version
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[6] = 77; // codec id
        assert!(Header::read(&bad).is_err());

        let mut bad = buf.clone();
        bad[7] = 9; // level
        assert!(Header::read(&bad).is_err());

        let mut bad = buf;
        bad[12..16].copy_from_slice(&0u32.to_le_bytes()); // chunk size 0
        assert!(Header::read(&bad).is_err());
    }

    #[test]
    fn chunk_record_round_trips() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 100,
            mask: 0b1100_0011, // 4 compressible columns of 8
            compressed: vec![1, 2, 3, 4, 5],
            incompressible: vec![9; 400],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        buf.extend_from_slice(&[0xFF; 7]); // trailing data must be left alone
        let (parsed, consumed) = ChunkRecord::read(&buf, 8).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len() - 7);
    }

    #[test]
    fn passthrough_record_round_trips() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 50,
            mask: 0,
            compressed: vec![7; 64],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        let (parsed, consumed) = ChunkRecord::read(&buf, 8).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn chunk_record_rejects_inconsistent_lengths() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 100,
            mask: 0b0000_1111,
            compressed: vec![],
            incompressible: vec![0; 400], // correct for 4 incompressible cols
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        // Claim a different element count → expected incompressible
        // length no longer matches.
        buf[1..5].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt(_))
        ));
    }

    #[test]
    fn chunk_record_rejects_wide_mask_and_truncation() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 10,
            mask: 0b1_0000_0000, // bit 8 set but width is 8
            compressed: vec![],
            incompressible: vec![0; 80],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        assert!(matches!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt(_))
        ));

        let ok = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 10,
            mask: 0,
            compressed: vec![5; 100],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        ok.write(&mut buf);
        assert!(matches!(
            ChunkRecord::read(&buf[..buf.len() - 1], 8),
            Err(IsobarError::Truncated)
        ));
    }

    #[test]
    fn passthrough_record_rejects_nonzero_mask() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 10,
            mask: 0,
            compressed: vec![5; 16],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        // A passthrough record must carry mask == 0; set a bit.
        buf[5] = 0b0000_0001;
        assert_eq!(
            ChunkRecord::read(&buf, 8),
            Err(IsobarError::Corrupt("passthrough chunk with column mask"))
        );
    }

    #[test]
    fn bounded_read_rejects_oversized_element_count() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 1000,
            mask: 0,
            compressed: vec![5; 16],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        assert!(ChunkRecord::read_bounded(&buf, 8, 1000, VERSION, true, 0).is_ok());
        assert_eq!(
            ChunkRecord::read_bounded(&buf, 8, 999, VERSION, true, 0),
            Err(IsobarError::Corrupt("chunk exceeds header chunk size"))
        );
    }

    #[test]
    fn legacy_header_version_still_reads() {
        let mut buf = Vec::new();
        Header {
            version: LEGACY_VERSION,
            ..demo_header()
        }
        .write(&mut buf);
        let parsed = Header::read(&buf).unwrap();
        assert_eq!(parsed.version, LEGACY_VERSION);
    }

    #[test]
    fn verbatim_record_round_trips() {
        let record = ChunkRecord {
            mode: ChunkMode::Verbatim,
            elements: 12,
            mask: 0,
            compressed: vec![0xAB; 96], // 12 elements × width 8
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        let (parsed, consumed) = ChunkRecord::read(&buf, 8).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len());

        // The raw length must match elements × width exactly.
        let mut bad = Vec::new();
        ChunkRecord {
            compressed: vec![0xAB; 95],
            ..record.clone()
        }
        .write(&mut bad);
        assert!(matches!(
            ChunkHeader::validate(&bad, 8, u32::MAX, VERSION),
            Err(IsobarError::Corrupt("verbatim chunk length mismatch"))
        ));

        // Version 1 has no verbatim mode.
        assert!(matches!(
            ChunkHeader::validate(&buf, 8, u32::MAX, LEGACY_VERSION),
            Err(IsobarError::Corrupt("bad chunk mode"))
        ));
    }

    #[test]
    fn checksum_mismatch_reports_offset_and_values() {
        let record = ChunkRecord {
            mode: ChunkMode::Passthrough,
            elements: 10,
            mask: 0,
            compressed: vec![7; 40],
            incompressible: vec![],
        };
        let mut buf = Vec::new();
        record.write(&mut buf);
        // Undamaged parses with or without verification.
        assert!(ChunkRecord::read_bounded(&buf, 8, u32::MAX, VERSION, true, 555).is_ok());

        // Flip one payload bit: only the checksum notices.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        match ChunkRecord::read_bounded(&bad, 8, u32::MAX, VERSION, true, 555) {
            Err(IsobarError::ChecksumMismatch {
                offset,
                expected,
                actual,
            }) => {
                assert_eq!(offset, 555);
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // verify=false skips the check and returns the damaged payload.
        let (parsed, _) =
            ChunkRecord::read_bounded(&bad, 8, u32::MAX, VERSION, false, 555).unwrap();
        assert_ne!(parsed.compressed, record.compressed);
    }

    #[test]
    fn legacy_chunk_record_reads_without_checksum() {
        let record = ChunkRecord {
            mode: ChunkMode::Partitioned,
            elements: 100,
            mask: 0b1100_0011,
            compressed: vec![1, 2, 3],
            incompressible: vec![9; 400],
        };
        let mut buf = Vec::new();
        record.write_legacy(&mut buf);
        assert_eq!(buf.len(), CHUNK_HEADER_V1_LEN + 3 + 400);
        let (parsed, consumed) =
            ChunkRecord::read_bounded(&buf, 8, u32::MAX, LEGACY_VERSION, true, 0).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(consumed, buf.len());
        let header = ChunkHeader::validate(&buf, 8, u32::MAX, LEGACY_VERSION).unwrap();
        assert_eq!(header.checksum, None);
    }

    #[test]
    fn level_bytes_round_trip() {
        for level in CompressionLevel::ALL {
            assert_eq!(level_from_u8(level_to_u8(level)), Some(level));
        }
        assert_eq!(level_from_u8(3), None);
    }
}
