//! From-scratch XXH64 checksum.
//!
//! ISOBAR containers, stream frames, and store entries carry a 64-bit
//! integrity checksum so decoders can distinguish "bitstream damaged in
//! transit/at rest" from "decoder bug" and so salvage mode can use intact
//! checksums as resync anchors. XXH64 is chosen because it is
//! hardware-friendly (wide multiplies + rotates, no tables), runs at
//! memory speed on one core, and has well-known published test vectors —
//! which the tests below pin so this implementation stays honest.
//!
//! Both a one-shot function ([`xxh64`]) and a streaming hasher
//! ([`Xxh64`]) are provided; the streaming form is what the store writer
//! uses while records pass through on their way to disk. Whole 32-byte
//! stripes are consumed in bulk by the `isobar-simd` 4-lane stripe
//! kernel (resolved once per hasher); only tails and finalization live
//! here.

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().unwrap())
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().unwrap())
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Finalize the tail (< 32 bytes) of a message into the running hash.
fn finalize(mut h: u64, tail: &[u8]) -> u64 {
    let mut i = 0;
    while i + 8 <= tail.len() {
        h ^= round(0, read_u64(tail, i));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= tail.len() {
        h ^= u64::from(read_u32(tail, i)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < tail.len() {
        h ^= u64::from(tail[i]).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        i += 1;
    }
    avalanche(h)
}

/// One-shot XXH64 of `data` with the given `seed`.
///
/// ```
/// use isobar_codecs::xxhash::xxh64;
/// assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
/// ```
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut h;
    if data.len() >= 32 {
        let mut v = [
            seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2),
            seed.wrapping_add(PRIME64_2),
            seed,
            seed.wrapping_sub(PRIME64_1),
        ];
        let i = isobar_simd::xxh64::consume_stripes(isobar_simd::active_tier(), &mut v, data);
        let [v1, v2, v3, v4] = v;
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
        h = h.wrapping_add(len);
        finalize(h, &data[i..])
    } else {
        h = seed.wrapping_add(PRIME64_5).wrapping_add(len);
        finalize(h, data)
    }
}

/// Streaming XXH64 hasher.
///
/// Feed bytes with [`Xxh64::update`] in any split and read the digest with
/// [`Xxh64::digest`]; the result is identical to [`xxh64`] over the
/// concatenation.
#[derive(Clone)]
pub struct Xxh64 {
    v: [u64; 4],
    buf: [u8; 32],
    buf_len: usize,
    total: u64,
    seed: u64,
    /// Kernel tier, resolved once at construction.
    tier: isobar_simd::KernelTier,
}

impl Xxh64 {
    /// Create a hasher with the given seed.
    pub fn new(seed: u64) -> Self {
        Xxh64 {
            v: [
                seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2),
                seed.wrapping_add(PRIME64_2),
                seed,
                seed.wrapping_sub(PRIME64_1),
            ],
            buf: [0; 32],
            buf_len: 0,
            total: 0,
            seed,
            tier: isobar_simd::active_tier(),
        }
    }

    /// Absorb `data` into the running hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let want = 32 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 32 {
                let buf = self.buf;
                isobar_simd::xxh64::consume_stripes(self.tier, &mut self.v, &buf);
                self.buf_len = 0;
            } else {
                // Input exhausted without completing a stripe; the tail
                // copy below must not clobber the partial buffer.
                return;
            }
        }
        // Bulk path: all whole stripes straight from the input slice.
        let consumed = isobar_simd::xxh64::consume_stripes(self.tier, &mut self.v, data);
        let rest = &data[consumed..];
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finish and return the 64-bit digest. The hasher may keep absorbing
    /// afterwards; `digest` does not mutate state.
    pub fn digest(&self) -> u64 {
        let mut h = if self.total >= 32 {
            let [v1, v2, v3, v4] = self.v;
            let mut h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            h = merge_round(h, v4);
            h
        } else {
            self.seed.wrapping_add(PRIME64_5)
        };
        h = h.wrapping_add(self.total);
        finalize(h, &self.buf[..self.buf_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors from the reference xxHash implementation
    // (Cyan4973/xxHash, XSUM_XXH64 of standard test strings).
    #[test]
    fn known_answers_seed_zero() {
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(xxh64(b"message digest", 0), 0x066E_D728_FCEE_B3BE);
        assert_eq!(
            xxh64(b"abcdefghijklmnopqrstuvwxyz", 0),
            0xCFE1_F278_FA89_835C
        );
        assert_eq!(
            xxh64(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                0
            ),
            0xAAA4_6907_D304_7814
        );
        assert_eq!(
            xxh64(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                0
            ),
            0xE04A_477F_19EE_145D
        );
    }

    #[test]
    fn known_answers_nonzero_seed() {
        assert_eq!(xxh64(b"", 1), 0xD5AF_BA13_36A3_BE4B);
        assert_eq!(xxh64(b"abc", 1), 0xBEA9_CA81_9932_8908);
    }

    #[test]
    fn streaming_matches_one_shot_all_splits() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let want = xxh64(&data, 0x15_0BAD);
        for split in 0..=data.len() {
            let mut h = Xxh64::new(0x15_0BAD);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.digest(), want, "split at {split}");
        }
    }

    #[test]
    fn streaming_byte_at_a_time() {
        let data: Vec<u8> = (0..100u8).collect();
        let mut h = Xxh64::new(7);
        for &b in &data {
            h.update(&[b]);
        }
        assert_eq!(h.digest(), xxh64(&data, 7));
    }

    #[test]
    fn digest_is_idempotent_and_resumable() {
        let mut h = Xxh64::new(0);
        h.update(b"hello ");
        let mid = h.digest();
        assert_eq!(mid, h.digest());
        h.update(b"world");
        assert_eq!(h.digest(), xxh64(b"hello world", 0));
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = vec![0u8; 4096];
        let base = xxh64(&data, 0);
        for byte in [0usize, 1, 31, 32, 4095] {
            let mut flipped = data.clone();
            flipped[byte] ^= 1;
            assert_ne!(xxh64(&flipped, 0), base, "flip at byte {byte}");
        }
    }
}
