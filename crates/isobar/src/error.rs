//! Error type shared by the ISOBAR pipeline.

use isobar_codecs::CodecError;
use std::error::Error;
use std::fmt;

/// Errors produced while compressing or decompressing ISOBAR streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsobarError {
    /// Input length is not a multiple of the element width.
    MisalignedInput {
        /// Input length in bytes.
        len: usize,
        /// Element width in bytes.
        width: usize,
    },
    /// Element width outside the supported 1..=64 range.
    BadWidth(usize),
    /// The container is structurally invalid.
    Corrupt(&'static str),
    /// The container ended prematurely.
    Truncated,
    /// The embedded solver failed to decode its stream.
    Codec(CodecError),
    /// An embedded integrity checksum did not match the bytes it
    /// covers — a chunk, frame, or whole-stream check. The offset
    /// locates the damaged structure (or the checksum field itself for
    /// whole-stream checks) in the container or stream.
    ChecksumMismatch {
        /// Byte offset of the structure that failed verification.
        offset: u64,
        /// The checksum the container claims.
        expected: u64,
        /// The checksum computed over the actual bytes.
        actual: u64,
    },
    /// An underlying error, located at a byte offset in the input.
    At {
        /// Byte offset (from the start of the container or stream) of
        /// the structure that failed to parse.
        offset: u64,
        /// The underlying error.
        source: Box<IsobarError>,
    },
}

impl IsobarError {
    /// Attach a byte offset to this error. Errors that already carry an
    /// offset are returned unchanged — the innermost (first-attached)
    /// location is the most precise one.
    pub fn at(self, offset: u64) -> IsobarError {
        match self {
            e @ IsobarError::At { .. } => e,
            // Checksum mismatches are born with their own (more
            // precise) location.
            e @ IsobarError::ChecksumMismatch { .. } => e,
            e => IsobarError::At {
                offset,
                source: Box::new(e),
            },
        }
    }

    /// Whether this error (possibly behind [`IsobarError::At`]) is a
    /// checksum mismatch — the signal telemetry counts separately from
    /// structural corruption.
    pub fn is_checksum_mismatch(&self) -> bool {
        match self {
            IsobarError::ChecksumMismatch { .. } => true,
            IsobarError::At { source, .. } => source.is_checksum_mismatch(),
            _ => false,
        }
    }
}

impl fmt::Display for IsobarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsobarError::MisalignedInput { len, width } => {
                write!(
                    f,
                    "input of {len} bytes is not a multiple of element width {width}"
                )
            }
            IsobarError::BadWidth(w) => write!(f, "unsupported element width {w}"),
            IsobarError::Corrupt(what) => write!(f, "corrupt ISOBAR container: {what}"),
            IsobarError::Truncated => write!(f, "truncated ISOBAR container"),
            IsobarError::Codec(e) => write!(f, "solver error: {e}"),
            IsobarError::ChecksumMismatch {
                offset,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch at byte offset {offset}: \
                 stored {expected:#018x}, computed {actual:#018x}"
            ),
            IsobarError::At { offset, source } => {
                write!(f, "at byte offset {offset}: {source}")
            }
        }
    }
}

impl Error for IsobarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IsobarError::Codec(e) => Some(e),
            IsobarError::At { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<CodecError> for IsobarError {
    fn from(e: CodecError) -> Self {
        IsobarError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = IsobarError::MisalignedInput { len: 10, width: 8 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("8"));
        assert!(IsobarError::Truncated.to_string().contains("truncated"));
    }

    #[test]
    fn at_wraps_once_and_reports_offset() {
        let e = IsobarError::Truncated.at(28);
        assert!(e.to_string().contains("offset 28"));
        assert!(Error::source(&e).is_some());
        // Re-attaching keeps the innermost (most precise) offset.
        let e = e.at(999);
        assert!(e.to_string().contains("offset 28"));
    }

    #[test]
    fn checksum_mismatch_keeps_its_own_offset() {
        let e = IsobarError::ChecksumMismatch {
            offset: 42,
            expected: 1,
            actual: 2,
        };
        assert!(e.is_checksum_mismatch());
        // at() must not bury the precise location under a wrapper.
        let e = e.at(999);
        assert!(matches!(
            e,
            IsobarError::ChecksumMismatch { offset: 42, .. }
        ));
        // ...and detection sees through an At wrapper.
        let wrapped = IsobarError::At {
            offset: 7,
            source: Box::new(IsobarError::ChecksumMismatch {
                offset: 7,
                expected: 0,
                actual: 1,
            }),
        };
        assert!(wrapped.is_checksum_mismatch());
        assert!(!IsobarError::Truncated.is_checksum_mismatch());
    }

    #[test]
    fn codec_errors_are_wrapped_with_source() {
        let e: IsobarError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, IsobarError::Codec(_)));
        assert!(Error::source(&e).is_some());
    }
}
