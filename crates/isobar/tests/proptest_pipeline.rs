//! Property tests for the ISOBAR pipeline: exact round-trips under
//! arbitrary element shapes, selections, and configurations.

use isobar::container::{ChunkMode, ChunkRecord, Header};
use isobar::partitioner::{partition, reassemble};
use isobar::{
    Analyzer, CodecId, ColumnSelection, EupaSelector, IsobarCompressor, IsobarOptions,
    Linearization, Preference,
};
use isobar_codecs::CompressionLevel;
use proptest::prelude::*;

/// Element data with structured columns: some constant, some drawn
/// from a small alphabet, some uniform — plus arbitrary width.
fn element_data() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (1usize..10, 0usize..400).prop_flat_map(|(width, n)| {
        proptest::collection::vec(any::<u8>(), width * 2).prop_map(move |params| {
            let mut data = Vec::with_capacity(n * width);
            let mut state = 0x9E3779B97F4A7C15u64;
            for i in 0..n {
                for (c, chunk) in params.chunks(2).enumerate().take(width) {
                    let kind = chunk[0] % 3;
                    let byte = match kind {
                        0 => chunk[1],                             // constant column
                        1 => chunk[1].wrapping_add((i % 7) as u8), // small alphabet
                        _ => {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            (state >> 48) as u8 ^ c as u8
                        }
                    };
                    data.push(byte);
                }
            }
            (width, data)
        })
    })
}

fn options(
    pref_idx: usize,
    level_idx: usize,
    chunk_elements: usize,
    parallel: bool,
) -> IsobarOptions {
    let prefs = [
        Preference::Ratio,
        Preference::Speed,
        Preference::SpeedWithRatioFloor(1.05),
    ];
    IsobarOptions {
        preference: prefs[pref_idx % 3],
        level: CompressionLevel::ALL[level_idx % 3],
        chunk_elements,
        eupa: EupaSelector {
            sample_elements: 128,
            sample_blocks: 2,
            ..Default::default()
        },
        parallel,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_round_trips_everything(
        (width, data) in element_data(),
        pref in 0usize..3,
        level in 0usize..3,
        chunk in 1usize..200,
        parallel in any::<bool>(),
    ) {
        let isobar = IsobarCompressor::new(options(pref, level, chunk, parallel));
        let packed = isobar.compress(&data, width).unwrap();
        prop_assert_eq!(isobar.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn pipeline_with_forced_codec_and_linearization(
        (width, data) in element_data(),
        codec in 0usize..2,
        lin in 0usize..2,
    ) {
        let isobar = IsobarCompressor::new(IsobarOptions {
            codec_override: Some([CodecId::Deflate, CodecId::Bzip2Like][codec]),
            linearization_override: Some(Linearization::ALL[lin]),
            chunk_elements: 64,
            ..Default::default()
        });
        let packed = isobar.compress(&data, width).unwrap();
        prop_assert_eq!(isobar.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn partition_reassemble_round_trips_any_selection(
        (width, data) in element_data(),
        mask in any::<u16>(),
        lin in 0usize..2,
    ) {
        let selection = ColumnSelection::from_mask(mask as u64 & ((1 << width) - 1), width).unwrap();
        let lin = Linearization::ALL[lin];
        let parts = partition(&data, width, &selection, lin);
        prop_assert_eq!(reassemble(&parts, width, &selection, lin), data);
    }

    #[test]
    fn analyzer_is_deterministic_and_order_free(
        (width, data) in element_data(),
        seed in any::<u64>(),
    ) {
        // §III.G: byte-column statistics are invariant under element
        // permutation, so the analyzer's verdict must be too.
        let analyzer = Analyzer::default();
        let a = analyzer.analyze(&data, width).unwrap();
        let n = data.len() / width;
        let perm = isobar_linearize::random_permutation(n, seed);
        let shuffled = isobar_linearize::apply_permutation(&data, width, &perm);
        let b = analyzer.analyze(&shuffled, width).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn container_survives_arbitrary_mutations_without_panicking(
        (width, data) in element_data(),
        flip_at in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let isobar = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 64,
            codec_override: Some(CodecId::Deflate),
            linearization_override: Some(Linearization::Row),
            ..Default::default()
        });
        let mut packed = isobar.compress(&data, width).unwrap();
        let i = flip_at.index(packed.len());
        packed[i] ^= 1 << flip_bit;
        // Either an error or (if the flip hit dead space) the original
        // data — never a panic, never silently wrong data.
        if let Ok(out) = isobar.decompress(&packed) {
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn truncated_containers_error_cleanly(
        (width, data) in element_data(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let isobar = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 64,
            codec_override: Some(CodecId::Deflate),
            linearization_override: Some(Linearization::Row),
            ..Default::default()
        });
        let packed = isobar.compress(&data, width).unwrap();
        prop_assume!(!data.is_empty());
        let cut = cut.index(packed.len());
        prop_assert!(isobar.decompress(&packed[..cut]).is_err());
    }

    #[test]
    fn header_parses_only_what_it_wrote(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes must never panic the header parser.
        let _ = Header::read(&raw);
        let _ = ChunkRecord::read(&raw, 8);
    }

    #[test]
    fn chunk_modes_partition_the_dataset(
        (width, data) in element_data(),
    ) {
        let isobar = IsobarCompressor::new(IsobarOptions {
            chunk_elements: 50,
            codec_override: Some(CodecId::Deflate),
            linearization_override: Some(Linearization::Row),
            ..Default::default()
        });
        let (_, report) = isobar.compress_with_report(&data, width).unwrap();
        let total: usize = report.chunks.iter().map(|c| c.elements).sum();
        prop_assert_eq!(total, data.len() / width);
        for c in &report.chunks {
            match c.mode {
                ChunkMode::Passthrough => prop_assert_eq!(c.incompressible_len, 0),
                ChunkMode::Partitioned => {
                    prop_assert!(c.mask != 0);
                    prop_assert!(c.incompressible_len > 0 || c.htc_pct == 0.0);
                }
                // The solver-panic fallback: never produced by a
                // healthy pipeline run.
                ChunkMode::Verbatim => prop_assert!(false, "unexpected verbatim chunk"),
            }
        }
    }
}
