//! The DEFLATE solver: RFC 1951 compression in an RFC 1950 (zlib)
//! container — the reproduction's stand-in for the paper's "zlib".
//!
//! Pipeline: LZ77 hash-chain matching with lazy evaluation
//! ([`crate::lz77`]) → per-block canonical Huffman coding with
//! stored/fixed/dynamic block selection ([`encoder`]) → zlib framing
//! with an Adler-32 integrity checksum.

pub mod decoder;
pub mod encoder;
pub mod tables;

pub use decoder::{inflate_into, inflate_raw};
pub use encoder::{deflate_raw, deflate_raw_into, DeflateScratch};

use crate::bitio::{LsbBitReader, LsbBitWriter};
use crate::codec::{Codec, CodecError, CodecId, CodecScratch, CompressionLevel};

/// Compute the Adler-32 checksum of `data` (RFC 1950 §8.2).
pub fn adler32(data: &[u8]) -> u32 {
    let mut state = Adler32::new();
    state.update(data);
    state.finish()
}

/// Incremental Adler-32 state, for streaming consumers.
#[derive(Debug, Clone)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Fresh state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Adler32 { a: 1, b: 0 }
    }

    /// Fold `data` into the running checksum via the dispatched kernel
    /// (AVX2 `maddubs` folding, or the scalar recurrence that LLVM
    /// already auto-vectorizes to ~2.6 GB/s). One cached atomic load
    /// per call, amortized over the whole buffer.
    pub fn update(&mut self, data: &[u8]) {
        let (a, b) = isobar_simd::adler::fold(isobar_simd::active_tier(), self.a, self.b, data);
        self.a = a;
        self.b = b;
    }

    /// Current checksum value; the state stays usable.
    pub fn finish(&self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// DEFLATE in a zlib wrapper, as a [`Codec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Deflate {
    level: CompressionLevel,
}

impl Deflate {
    /// Create the codec at the given effort level.
    pub fn new(level: CompressionLevel) -> Self {
        Deflate { level }
    }

    /// The configured effort level.
    pub fn level(&self) -> CompressionLevel {
        self.level
    }
}

impl Codec for Deflate {
    fn id(&self) -> CodecId {
        CodecId::Deflate
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        // Delegate to the scratch path with one-shot scratch: the two
        // entry points are byte-identical by construction.
        let mut out = Vec::with_capacity(data.len() / 2 + 64);
        self.compress_into(data, &mut out, &mut CodecScratch::new());
        out
    }

    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>, scratch: &mut CodecScratch) {
        // zlib header: CMF = 0x78 (deflate, 32 KiB window); FLG chosen so
        // (CMF·256 + FLG) % 31 == 0 with FLEVEL matching our level.
        let cmf: u8 = 0x78;
        let flevel: u8 = match self.level {
            CompressionLevel::Fast => 0,
            CompressionLevel::Default => 2,
            CompressionLevel::Best => 3,
        };
        let mut flg = flevel << 6;
        let rem = (u16::from(cmf) * 256 + u16::from(flg)) % 31;
        if rem != 0 {
            flg += (31 - rem) as u8;
        }
        out.clear();
        out.push(cmf);
        out.push(flg);
        // The bit writer takes over the reused output buffer, so the
        // deflate body lands in place without an intermediate vector.
        let mut w = LsbBitWriter::with_prefix(std::mem::take(out));
        deflate_raw_into(data, self.level, &mut scratch.deflate, &mut w);
        *out = w.finish();
        out.extend_from_slice(&adler32(data).to_be_bytes());
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(data, &mut out, &mut CodecScratch::new())?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        data: &[u8],
        out: &mut Vec<u8>,
        _scratch: &mut CodecScratch,
    ) -> Result<(), CodecError> {
        if data.len() < 6 {
            return Err(CodecError::UnexpectedEof);
        }
        let (cmf, flg) = (data[0], data[1]);
        if cmf & 0x0f != 8 {
            return Err(CodecError::Corrupt("zlib header: not deflate"));
        }
        if (u16::from(cmf) * 256 + u16::from(flg)) % 31 != 0 {
            return Err(CodecError::Corrupt("zlib header check failed"));
        }
        if flg & 0x20 != 0 {
            return Err(CodecError::Corrupt("preset dictionaries unsupported"));
        }
        let mut r = LsbBitReader::new(&data[2..]);
        out.clear();
        inflate_into(&mut r, out)?;
        let trailer = r.remaining_bytes();
        if trailer.len() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let expected = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = adler32(out);
        if expected != actual {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler32_known_vectors() {
        // Reference values from the zlib implementation.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_chunking_is_transparent() {
        // The NMAX folding must not change results on long inputs.
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut a: u32 = 1;
        let mut b: u32 = 0;
        for &byte in &data {
            a = (a + byte as u32) % 65_521;
            b = (b + a) % 65_521;
        }
        assert_eq!(adler32(&data), (b << 16) | a);
    }

    #[test]
    fn incremental_adler_matches_one_shot_for_any_split() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        let want = adler32(&data);
        for split in [0usize, 1, 13, 5552, 5553, 9999, 10_000] {
            let mut state = Adler32::new();
            state.update(&data[..split]);
            state.update(&data[split..]);
            assert_eq!(state.finish(), want, "split {split}");
        }
        // Many tiny updates.
        let mut state = Adler32::new();
        for byte in &data {
            state.update(std::slice::from_ref(byte));
        }
        assert_eq!(state.finish(), want);
    }

    #[test]
    fn zlib_round_trip_all_levels() {
        let data = b"compressible compressible compressible data".repeat(500);
        for level in CompressionLevel::ALL {
            let codec = Deflate::new(level);
            let packed = codec.compress(&data);
            assert!(packed.len() < data.len());
            assert_eq!(codec.decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn zlib_header_is_standards_conformant() {
        let packed = Deflate::default().compress(b"x");
        assert_eq!(packed[0] & 0x0f, 8, "CM must be 8 (deflate)");
        assert_eq!(
            (u16::from(packed[0]) * 256 + u16::from(packed[1])) % 31,
            0,
            "FCHECK must make the header a multiple of 31"
        );
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let codec = Deflate::default();
        let data = b"some payload that is long enough to matter".repeat(30);
        let mut packed = codec.compress(&data);
        // Flip a bit inside the deflate payload (not the header).
        let mid = packed.len() / 2;
        packed[mid] ^= 0x10;
        assert!(codec.decompress(&packed).is_err());
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let codec = Deflate::default();
        let mut packed = codec.compress(b"data");
        packed[0] = 0x79; // CM becomes 9
        assert!(matches!(
            codec.decompress(&packed),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = Deflate::default();
        let packed = codec.compress(b"");
        assert_eq!(codec.decompress(&packed).unwrap(), b"");
    }
}
