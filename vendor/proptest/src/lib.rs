//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the strategy/runner surface its test suites use:
//! `proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`, `Just`,
//! `any`, ranges, tuples, `collection::vec`, `sample::Index`,
//! `prop_map`, and `prop_flat_map`.
//!
//! Semantics match upstream where it matters for these suites —
//! deterministic seeded generation and uniform draws — with one
//! deliberate simplification: failing cases are reported but **not
//! shrunk**. Per-test seeds are fixed (derived from the test name), so
//! any failing draw reproduces exactly on re-run, which is all the
//! tier-1 suites need.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// A source of structured random values.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<T: fmt::Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty as $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                <$u>::arbitrary(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Boxing helper used by `prop_oneof!` so each arm can have its own
/// concrete strategy type.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    use super::{fmt, Rng, StdRng, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Lengths acceptable to [`vec`]: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        fn pick<R: Rng>(&self, rng: &mut R) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick<R: Rng>(&self, _rng: &mut R) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick<R: Rng>(&self, rng: &mut R) -> usize {
            assert!(self.start < self.end, "empty size range");
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick<R: Rng>(&self, rng: &mut R) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    use super::{Arbitrary, RngCore, StdRng};

    /// An arbitrary index into a collection whose size is only known at
    /// use time: `idx.index(len)` maps the draw uniformly into
    /// `0..len`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod test_runner {
    /// Returned (via `?`-free early return) by `prop_assume!` when a
    /// drawn case does not satisfy the test's precondition; the runner
    /// discards the case and draws another.
    #[derive(Debug)]
    pub struct Reject;

    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Stable per-test seed so failures reproduce across runs.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy,
    };
}

#[doc(hidden)]
pub use rand as __rand;

/// Define property tests: each `fn` runs `cases` times over freshly
/// generated inputs. Failures are not shrunk, but the per-test seed is
/// fixed (derived from the test name), so a failing draw reproduces
/// exactly on re-run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        $crate::test_runner::seed_for(stringify!($name)),
                    );
                let mut accepted = 0u32;
                let mut drawn = 0u32;
                while accepted < config.cases {
                    drawn += 1;
                    assert!(
                        drawn <= config.cases.saturating_mul(20),
                        "prop_assume! rejected too many cases ({accepted}/{} accepted)",
                        config.cases
                    );
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Reject> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Discard the current case (draw another) when its precondition does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}
